"""JUBE-style steps: the execution DAG of a benchmark.

A JUBE benchmark consists of *steps* (compile, execute, verify,
analyse ...) with explicit dependencies; each step runs once per
workunit and can read the outputs of the steps it depends on.  Tasks are
Python callables here (the real JUBE runs shell snippets), receiving a
:class:`StepContext` with the resolved parameters, prior outputs and the
simulated machine handle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from graphlib import CycleError, TopologicalSorter
from typing import Any, Callable, Iterable


class StepError(RuntimeError):
    """A step failed or the step graph is malformed."""


@dataclass
class StepContext:
    """Everything a task can see while it runs."""

    #: resolved parameters of this workunit
    params: dict[str, Any]
    #: outputs of already-completed steps: ``ctx.results["execute"]["fom"]``
    results: dict[str, dict[str, Any]]
    #: active tags of the run
    tags: frozenset[str] = frozenset()
    #: arbitrary shared environment (machine handles, filesystems, ...)
    env: dict[str, Any] = field(default_factory=dict)

    def output(self, step: str, key: str, default: Any = None) -> Any:
        """Convenience lookup into a prior step's outputs."""
        return self.results.get(step, {}).get(key, default)


#: A task consumes the context and returns a dict of outputs (or None).
Task = Callable[[StepContext], "dict[str, Any] | None"]


@dataclass
class Step:
    """One named step with dependencies and an ordered task list.

    ``iterations`` repeats the tasks (JUBE uses this for statistical
    repetitions); outputs of the last iteration win, and per-iteration
    outputs are kept under ``iterations`` in the step result.
    """

    name: str
    tasks: list[Task] = field(default_factory=list)
    depends: tuple[str, ...] = ()
    iterations: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise StepError(f"step {self.name!r}: iterations must be >= 1")
        self.depends = tuple(self.depends)

    def run(self, ctx: StepContext) -> dict[str, Any]:
        """Execute the step's tasks; merge their output dicts."""
        history: list[dict[str, Any]] = []
        outputs: dict[str, Any] = {}
        for _ in range(self.iterations):
            iter_out: dict[str, Any] = {}
            for task in self.tasks:
                try:
                    out = task(ctx)
                except StepError:
                    raise
                except Exception as exc:
                    raise StepError(
                        f"step {self.name!r} task failed: "
                        f"{type(exc).__name__}: {exc}") from exc
                if out:
                    iter_out.update(out)
                    # Make intra-step outputs visible to subsequent tasks.
                    ctx.results.setdefault(self.name, {}).update(iter_out)
            history.append(iter_out)
            outputs = iter_out
        if self.iterations > 1:
            outputs = dict(outputs)
            outputs["iterations"] = history
        return outputs


def step_order(steps: Iterable[Step]) -> list[Step]:
    """Topological execution order of a step list.

    Raises :class:`StepError` on unknown dependencies or cycles.
    """
    by_name: dict[str, Step] = {}
    for s in steps:
        if s.name in by_name:
            raise StepError(f"duplicate step name {s.name!r}")
        by_name[s.name] = s
    for s in by_name.values():
        for dep in s.depends:
            if dep not in by_name:
                raise StepError(
                    f"step {s.name!r} depends on unknown step {dep!r}")
    # sorted predecessor lists keep static_order() (and thus the
    # returned step order) independent of PYTHONHASHSEED
    graph = {s.name: sorted(set(s.depends)) for s in by_name.values()}
    try:
        order = list(TopologicalSorter(graph).static_order())
    except CycleError as exc:
        raise StepError(f"step dependency cycle: {exc.args[1]}")
    return [by_name[name] for name in order]
