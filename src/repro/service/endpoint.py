"""Endpoints: where service envelopes actually execute.

An endpoint registers with the interchange, advertises its
:class:`Capabilities` (worker count, vmpi engine cores, an optional
benchmark whitelist) and holds a *heartbeat lease*: the interchange's
:class:`LeaseTable` tracks the last beat per endpoint on an injectable
clock, and an endpoint that misses ``heartbeat_threshold x
heartbeat_period`` seconds of beats is deterministically declared lost
(the funcx period/threshold idiom), at which point the interchange
requeues its in-flight envelopes.

:class:`LocalEndpoint` is the first worker type: the existing
:class:`~repro.exec.engine.ExecutionEngine` behind an envelope
interface.  Each assigned :class:`~repro.service.envelope.TaskEnvelope`
becomes one engine :class:`~repro.exec.engine.WorkItem` carrying the
envelope's exec-cache key, so service tasks memoise through the same
content-addressed cache, journal through the same run journal, and
span through the same tracer as direct runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..core.suite import decode_result, encode_result, load_suite
from ..core.variants import MemoryVariant
from ..exec.engine import ExecutionEngine, WorkItem
from .envelope import ResultEnvelope, TaskEnvelope


@dataclass(frozen=True)
class Capabilities:
    """What an endpoint advertises at registration time."""

    workers: int = 1
    backend: str = "thread"
    vmpi_modes: tuple[str, ...] = ("event", "step")
    #: benchmarks this endpoint accepts; empty = all of them
    benchmarks: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("capabilities need at least one worker")

    def accepts(self, envelope: TaskEnvelope) -> bool:
        return not self.benchmarks or \
            envelope.benchmark in self.benchmarks

    def to_dict(self) -> dict[str, Any]:
        return {"workers": self.workers, "backend": self.backend,
                "vmpi_modes": list(self.vmpi_modes),
                "benchmarks": list(self.benchmarks)}


class LeaseTable:
    """Heartbeat leases over an injectable clock.

    ``period`` is the advertised beat interval; an endpoint whose last
    beat is older than ``period * threshold`` at :meth:`expired` time
    has missed its whole tolerance window and is reported lost.  All
    arithmetic runs on the injected ``clock``, so lease expiry in tests
    is a pure function of how far the virtual clock was advanced.
    """

    def __init__(self, clock: Callable[[], float], *,
                 period: float = 5.0, threshold: int = 3):
        if period <= 0:
            raise ValueError("heartbeat period must be positive")
        if threshold < 1:
            raise ValueError("heartbeat threshold must be >= 1")
        self.clock = clock
        self.period = period
        self.threshold = threshold
        self._last: dict[str, float] = {}

    @property
    def window(self) -> float:
        """Seconds of missed beats that cost an endpoint its lease."""
        return self.period * self.threshold

    def register(self, endpoint_id: str) -> None:
        self._last[endpoint_id] = self.clock()

    def beat(self, endpoint_id: str) -> None:
        if endpoint_id in self._last:
            self._last[endpoint_id] = self.clock()

    def drop(self, endpoint_id: str) -> None:
        self._last.pop(endpoint_id, None)

    def deadline(self, endpoint_id: str) -> float:
        """Virtual time at which the endpoint's lease lapses."""
        return self._last[endpoint_id] + self.window

    def expired(self) -> list[str]:
        """Endpoints whose lease has lapsed, in registration order."""
        now = self.clock()
        return [eid for eid, last in self._last.items()
                if now - last > self.window]

    def holders(self) -> list[str]:
        return list(self._last)


def _run_kwargs(params: dict[str, Any]) -> dict[str, Any]:
    """Translate envelope params into ``suite.run`` keyword arguments."""
    variant = params.get("variant")
    return {"variant": MemoryVariant(variant) if variant else None,
            "scale": float(params.get("scale", 1.0)),
            "real": bool(params.get("real", False))}


class LocalEndpoint:
    """The :class:`ExecutionEngine` as one worker type behind the service.

    ``execute`` maps a batch of task envelopes onto engine work items
    (label, cache key, retries/timeout overrides, result codecs) and
    packs the outcomes back into result envelopes.  The engine's fault
    boundary does the heavy lifting: a task that exhausts its retries
    comes back as ``status="error"`` instead of unwinding the service.
    """

    def __init__(self, endpoint_id: str, *, suite: Any = None,
                 engine: ExecutionEngine | None = None,
                 capabilities: Capabilities | None = None):
        if not endpoint_id:
            raise ValueError("endpoint needs an id")
        self.endpoint_id = endpoint_id
        self.suite = suite if suite is not None else load_suite()
        caps = capabilities if capabilities is not None else Capabilities()
        self.caps = caps
        self.engine = engine if engine is not None else ExecutionEngine(
            workers=caps.workers, backend=caps.backend)

    def capabilities(self) -> Capabilities:
        return self.caps

    def execute(self,
                envelopes: list[TaskEnvelope]) -> list[ResultEnvelope]:
        """Run a batch of envelopes; one result envelope each, in
        assignment order."""
        if not envelopes:
            return []
        items = [WorkItem(fn=self.suite.run,
                          args=(env.benchmark, env.params.get("nodes")),
                          kwargs=_run_kwargs(env.params),
                          key=env.key, label=env.display(),
                          retries=env.retries, timeout=env.timeout,
                          encode=encode_result, decode=decode_result)
                 for env in envelopes]
        results = []
        for env, outcome in zip(envelopes, self.engine.map(items)):
            if outcome.ok:
                results.append(ResultEnvelope(
                    task_id=env.task_id, client=env.client,
                    benchmark=env.benchmark, key=env.key, status="ok",
                    value=encode_result(outcome.value),
                    endpoint=self.endpoint_id,
                    attempts=outcome.attempts, cache=outcome.cache))
            else:
                results.append(ResultEnvelope(
                    task_id=env.task_id, client=env.client,
                    benchmark=env.benchmark, key=env.key,
                    status="error", error=outcome.error,
                    endpoint=self.endpoint_id,
                    attempts=outcome.attempts, cache=outcome.cache))
        return results
