"""Benchmark-as-a-service control plane (``repro.service``).

The funcx-style service layer over :mod:`repro.exec`: versioned
content-addressed envelopes (:mod:`~repro.service.envelope`), endpoint
registration with heartbeat leases (:mod:`~repro.service.endpoint`),
a fair-share interchange with admission control
(:mod:`~repro.service.interchange`), a futures-based client
(:mod:`~repro.service.client`) and a durable result store with a
canonical byte-stable export (:mod:`~repro.service.store`).

Everything is deterministic on an injectable clock; the CLI wires the
loopback pair ``jubench serve`` / ``jubench submit`` on top.
"""

from .client import (
    CancelledError,
    RejectedError,
    ServiceClient,
    ServiceError,
    ServiceFuture,
    TaskFailedError,
)
from .endpoint import Capabilities, LeaseTable, LocalEndpoint
from .envelope import (
    RESULT_STATUSES,
    SERVICE_SCHEMA,
    SERVICE_VERSION,
    EnvelopeError,
    ResultEnvelope,
    TaskEnvelope,
)
from .interchange import BenchmarkService
from .store import ResultStore, execute_direct

__all__ = [
    "BenchmarkService",
    "Capabilities",
    "CancelledError",
    "EnvelopeError",
    "LeaseTable",
    "LocalEndpoint",
    "RESULT_STATUSES",
    "RejectedError",
    "ResultEnvelope",
    "ResultStore",
    "SERVICE_SCHEMA",
    "SERVICE_VERSION",
    "ServiceClient",
    "ServiceError",
    "ServiceFuture",
    "TaskEnvelope",
    "TaskFailedError",
    "execute_direct",
]
