"""The durable result store and the canonical result export.

Every result envelope the interchange completes is appended here --
in-memory always, and as crash-safe JSONL when the store was opened on
a path (one wire document per line, ``meta`` header first, the same
append-only discipline as :mod:`repro.history`).  The store is a
*journal*: a task that was first rejected and later accepted leaves
both records, and :meth:`ResultStore.final` resolves the last state
per task id.

:meth:`ResultStore.canonical_export` is the service-path determinism
artifact: the final ``ok``/``error`` outcome of every task, in
canonical envelope form (no endpoint ids, no attempt counts, no cache
temperature), sorted by content identity.  :func:`execute_direct`
produces the *same* export from a plain in-process run of the same
envelopes -- the differential suite and the CI ``service`` job compare
the two byte-for-byte.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from .envelope import (
    SERVICE_SCHEMA,
    SERVICE_VERSION,
    EnvelopeError,
    ResultEnvelope,
    TaskEnvelope,
)


def _meta_line() -> dict[str, Any]:
    return {"kind": "meta", "schema": SERVICE_SCHEMA,
            "version": SERVICE_VERSION}


class ResultStore:
    """Append-only record of completed result envelopes."""

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._records: list[ResultEnvelope] = []
        if self.path is not None and self.path.exists():
            self._records = list(self._read(self.path))

    @classmethod
    def open(cls, path: str | Path) -> "ResultStore":
        return cls(path)

    @staticmethod
    def _read(path: Path) -> Iterable[ResultEnvelope]:
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    wire = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise EnvelopeError(
                        f"{path}:{lineno}: not JSON: {exc}") from exc
                if wire.get("kind") == "meta":
                    continue
                try:
                    yield ResultEnvelope.from_wire(wire)
                except EnvelopeError as exc:
                    raise EnvelopeError(f"{path}:{lineno}: {exc}") from exc

    def append(self, envelope: ResultEnvelope) -> None:
        if self.path is not None:
            fresh = not self.path.exists() or not self._records
            with open(self.path, "a", encoding="utf-8") as fh:
                if fresh:
                    fh.write(json.dumps(_meta_line(), sort_keys=True,
                                        separators=(",", ":")) + "\n")
                fh.write(json.dumps(envelope.to_wire(), sort_keys=True,
                                    separators=(",", ":")) + "\n")
        self._records.append(envelope)

    @property
    def records(self) -> list[ResultEnvelope]:
        """Every appended envelope, in completion order."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def final(self) -> dict[str, ResultEnvelope]:
        """Last recorded state per task id (later records win)."""
        out: dict[str, ResultEnvelope] = {}
        for rec in self._records:
            out[rec.task_id] = rec
        return out

    def counts(self) -> dict[str, int]:
        """Final-state tally per status."""
        tally: dict[str, int] = {}
        for rec in self.final().values():
            tally[rec.status] = tally.get(rec.status, 0) + 1
        return tally

    def canonical_export(self) -> str:
        """Byte-stable JSON document of the final task outcomes.

        Sorted by ``(key, task_id)`` -- pure content identity -- and
        built from :meth:`ResultEnvelope.canonical`, so the bytes
        depend only on *what* was asked and *what* came out: identical
        across endpoint layouts, worker counts, cache temperature and
        replays, and identical to :func:`execute_direct` on the same
        envelopes.
        """
        finals = sorted(self.final().values(),
                        key=lambda r: (r.key, r.task_id))
        doc = {"schema": SERVICE_SCHEMA, "version": SERVICE_VERSION,
               "results": [r.canonical() for r in finals]}
        return json.dumps(doc, sort_keys=True, indent=1) + "\n"


def execute_direct(envelopes: Iterable[TaskEnvelope], *,
                   suite: Any = None,
                   store: ResultStore | None = None) -> ResultStore:
    """The reference path: run envelopes in-process, no service between.

    Uses the same suite facade and result encoding an endpoint would,
    but calls ``suite.run`` directly (or through ``suite.engine`` when
    one is attached, exactly like ``run_all``).  The returned store's
    :meth:`~ResultStore.canonical_export` is the byte-identity baseline
    the service path must reproduce.
    """
    from ..core.suite import encode_result, load_suite
    from .endpoint import _run_kwargs

    suite = suite if suite is not None else load_suite()
    out = store if store is not None else ResultStore()
    for env in envelopes:
        result = suite.run(env.benchmark, env.params.get("nodes"),
                           **_run_kwargs(env.params))
        out.append(ResultEnvelope(
            task_id=env.task_id, client=env.client,
            benchmark=env.benchmark, key=env.key, status="ok",
            value=encode_result(result), endpoint="direct", attempts=1))
    return out
