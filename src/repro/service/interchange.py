"""The interchange: routing envelopes from N clients across endpoints.

:class:`BenchmarkService` is the long-running control plane ROADMAP
item 1 asks for, shaped after the funcx interchange: clients submit
packed :class:`~repro.service.envelope.TaskEnvelope` documents, the
interchange queues them **per client**, and a deterministic scheduling
loop leases them out to registered endpoints.  Three invariants the
test tier pins down:

* **fair share** -- dispatch cycles round-robin over the client ids in
  sorted order, one envelope per client per cycle, resuming after the
  last-served client; a client submitting 100 tasks cannot starve a
  client submitting 1.
* **admission control** -- each client queue is bounded by
  ``max_backlog``; an over-budget submission resolves *immediately* to
  an explicit ``rejected`` result envelope (recorded in the store like
  any other outcome).  Nothing is ever silently dropped.
* **no lost, no duplicated envelopes** -- dispatch does not consult
  the fault plan (the interchange cannot see crashes, only missed
  heartbeats), so envelopes do land on endpoints that are already
  dead.  When the endpoint's lease lapses after
  ``heartbeat_threshold x heartbeat_period`` virtual seconds, its
  in-flight envelopes are requeued at the *front* of their owners'
  queues in original order, and
  :meth:`~repro.service.client.ServiceFuture.resolve` raises on any
  double completion.

Everything runs on the injected clock (a
:class:`~repro.telemetry.spans.ManualClock` by default), so the whole
schedule -- including lease expiry and crash recovery -- is a pure
function of the submissions, the endpoint layout and the fault plan.
:attr:`BenchmarkService.dispatch_log` records every scheduling
decision and is byte-reproducible across reruns.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_right
from collections import deque
from typing import Any

from ..exec.engine import _pause
from ..faults.plan import FaultPlan
from ..telemetry.metrics import MetricsRegistry, default_registry
from ..telemetry.spans import ManualClock, Tracer, current_tracer
from .client import ServiceError, ServiceFuture
from .endpoint import Capabilities, LeaseTable
from .envelope import ResultEnvelope, TaskEnvelope
from .store import ResultStore


class _Slot:
    """Registration-time state of one endpoint."""

    def __init__(self, endpoint: Any, caps: Capabilities, index: int):
        self.endpoint = endpoint
        self.caps = caps
        self.index = index
        self.inflight: list[TaskEnvelope] = []
        #: lease lapsed; no dispatch until re-registered
        self.lost = False
        #: inside a fault-plan crash window (no beats, no execution)
        self.down = False

    @property
    def endpoint_id(self) -> str:
        return self.endpoint.endpoint_id

    def free(self) -> int:
        return self.caps.workers - len(self.inflight)


class BenchmarkService:
    """Interchange + lease table + result store behind one facade.

    ``faults`` maps :class:`~repro.faults.plan.NodeFault` entries onto
    endpoints by *registration index* (node 0 = first registered
    endpoint): during ``[at, at + duration)`` the endpoint neither
    beats nor executes, which is exactly how a worker-pool crash looks
    from the interchange.  A finite window restores the endpoint (and
    its lease, if it was declared lost) when the window closes.

    The service is single-threaded at heart -- :meth:`pump` makes one
    deterministic scheduling round, :meth:`tick` executes leased work
    and heartbeats -- with one lock making :meth:`submit` /
    :meth:`cancel` safe to call from concurrent client threads.
    """

    def __init__(self, *, clock: Any = None, heartbeat_period: float = 5.0,
                 heartbeat_threshold: int = 3, max_backlog: int = 64,
                 store: ResultStore | None = None,
                 faults: FaultPlan | None = None,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None):
        if max_backlog < 1:
            raise ValueError("max_backlog must be >= 1")
        self.clock = clock if clock is not None else ManualClock()
        self.leases = LeaseTable(self.clock, period=heartbeat_period,
                                 threshold=heartbeat_threshold)
        self.max_backlog = max_backlog
        self.store = store if store is not None else ResultStore()
        self.faults = faults if faults is not None else FaultPlan()
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else default_registry()
        self._slots: dict[str, _Slot] = {}
        self._queues: dict[str, deque[TaskEnvelope]] = {}
        self._futures: dict[str, ServiceFuture] = {}
        self._round = 0
        self._last_served: str | None = None
        self.dispatch_log: list[dict[str, Any]] = []
        self._lock = threading.RLock()

    # -- observability -------------------------------------------------------

    def _tracer(self) -> Tracer:
        return self.tracer if self.tracer is not None else current_tracer()

    def _note(self, event: str, at: float, **fields: Any) -> None:
        entry = {"round": self._round, "at": at, "event": event}
        entry.update(fields)
        self.dispatch_log.append(entry)
        target = str(fields.get("task") or fields.get("endpoint") or "")
        self._tracer().emit({"type": "service", "action": event,
                             "target": target, "at": at})

    def log_json(self) -> str:
        """The dispatch log as canonical JSON (replay comparisons)."""
        return json.dumps(self.dispatch_log, sort_keys=True,
                          separators=(",", ":")) + "\n"

    def _gauge_backlog(self) -> None:
        queued = sum(len(q) for q in self._queues.values())
        self.metrics.gauge("service_backlog").set(queued)

    # -- endpoints -----------------------------------------------------------

    def register_endpoint(self, endpoint: Any) -> str:
        """Register an endpoint (or re-register one declared lost)."""
        with self._lock:
            eid = endpoint.endpoint_id
            slot = self._slots.get(eid)
            if slot is not None and not slot.lost:
                raise ValueError(f"endpoint {eid!r} is already registered")
            if slot is None:
                slot = _Slot(endpoint, endpoint.capabilities(),
                             len(self._slots))
                self._slots[eid] = slot
            slot.lost = False
            self.leases.register(eid)
            self._note("register", self.clock(), endpoint=eid,
                       capabilities=slot.caps.to_dict())
            return eid

    def endpoints(self) -> dict[str, dict[str, Any]]:
        """Registered endpoints and their advertised capabilities."""
        with self._lock:
            return {eid: {"capabilities": slot.caps.to_dict(),
                          "lost": slot.lost, "index": slot.index,
                          "inflight": len(slot.inflight)}
                    for eid, slot in self._slots.items()}

    def _crash_state(self, slot: _Slot, now: float) -> bool:
        for nf in self.faults.nodes:
            if nf.node != slot.index:
                continue
            if nf.at <= now and (nf.duration is None
                                 or now < nf.at + nf.duration):
                return True
        return False

    def _restore_at(self, slot: _Slot, now: float) -> float | None:
        """End of the crash window covering ``now`` (None = never)."""
        ends = [nf.at + nf.duration for nf in self.faults.nodes
                if nf.node == slot.index and nf.duration is not None
                and nf.at <= now < nf.at + nf.duration]
        return max(ends) if ends else None

    # -- submission ----------------------------------------------------------

    def submit(self, envelope: TaskEnvelope) -> ServiceFuture:
        """Admit one task envelope; returns its future.

        Content-addressed idempotency: resubmitting an envelope whose
        task is pending or already succeeded returns the existing
        future; only terminally ``rejected`` / ``cancelled`` tasks may
        be resubmitted as fresh work.
        """
        with self._lock:
            task_id = envelope.task_id
            existing = self._futures.get(task_id)
            if existing is not None and existing.status not in (
                    "rejected", "cancelled"):
                return existing
            queue = self._queues.setdefault(envelope.client, deque())
            now = self.clock()
            if len(queue) >= self.max_backlog:
                rejected = ResultEnvelope(
                    task_id=task_id, client=envelope.client,
                    benchmark=envelope.benchmark, key=envelope.key,
                    status="rejected",
                    error=(f"backlog full: client {envelope.client!r} has "
                           f"{len(queue)} queued tasks (cap "
                           f"{self.max_backlog}); retry after the service "
                           f"drains"))
                future = ServiceFuture(envelope, self)
                future.resolve(rejected)
                self._futures[task_id] = future
                self.store.append(rejected)
                self._note("reject", now, task=task_id,
                           client=envelope.client)
                self.metrics.counter("service_rejected_total").inc()
                return future
            future = ServiceFuture(envelope, self)
            self._futures[task_id] = future
            queue.append(envelope)
            self._note("submit", now, task=task_id, client=envelope.client)
            self.metrics.counter("service_submitted_total").inc()
            self._gauge_backlog()
            return future

    def cancel(self, task_id: str) -> bool:
        """Cancel a still-queued task (False once leased out or done)."""
        with self._lock:
            for client, queue in self._queues.items():
                for env in queue:
                    if env.task_id != task_id:
                        continue
                    queue.remove(env)
                    cancelled = ResultEnvelope(
                        task_id=task_id, client=client,
                        benchmark=env.benchmark, key=env.key,
                        status="cancelled",
                        error="cancelled before dispatch")
                    self.store.append(cancelled)
                    self._futures[task_id].resolve(cancelled)
                    self._note("cancel", self.clock(), task=task_id,
                               client=client)
                    self.metrics.counter("service_cancelled_total").inc()
                    self._gauge_backlog()
                    return True
            return False

    # -- the scheduling loop -------------------------------------------------

    def pump(self) -> int:
        """One deterministic scheduling round.

        Order: fault-plan crash/restore transitions, lease expiry (lost
        endpoints requeue their in-flight envelopes), then fair-share
        dispatch.  Returns the number of state changes made.
        """
        with self._lock:
            self._round += 1
            now = self.clock()
            changed = 0
            for slot in self._slots.values():
                down = self._crash_state(slot, now)
                if down and not slot.down:
                    slot.down = True
                    changed += 1
                    self._note("crash", now, endpoint=slot.endpoint_id)
                elif not down and slot.down:
                    slot.down = False
                    changed += 1
                    if slot.lost:
                        slot.lost = False
                        self.leases.register(slot.endpoint_id)
                    self._note("restore", now, endpoint=slot.endpoint_id)
            for eid in self.leases.expired():
                slot = self._slots[eid]
                slot.lost = True
                self.leases.drop(eid)
                changed += 1
                self._note("lost", now, endpoint=eid,
                           inflight=[env.task_id for env in slot.inflight])
                for env in reversed(slot.inflight):
                    self._queues[env.client].appendleft(env)
                    self._note("requeue", now, task=env.task_id,
                               client=env.client, endpoint=eid)
                    self.metrics.counter("service_requeued_total").inc()
                slot.inflight.clear()
                self._gauge_backlog()
            changed += self._dispatch(now)
            return changed

    def _pick(self, envelope: TaskEnvelope) -> _Slot | None:
        """Least-loaded live endpoint accepting the envelope (ties go
        to registration order); crash state is invisible on purpose."""
        best: _Slot | None = None
        for slot in self._slots.values():
            if slot.lost or slot.free() < 1:
                continue
            if not slot.caps.accepts(envelope):
                continue
            if best is None or slot.free() > best.free():
                best = slot
        return best

    def _dispatch(self, now: float) -> int:
        moved = 0
        while True:
            order = [c for c in sorted(self._queues) if self._queues[c]]
            if self._last_served is not None:
                idx = bisect_right(order, self._last_served)
                order = order[idx:] + order[:idx]
            cycle = 0
            for client in order:
                queue = self._queues[client]
                if not queue:
                    continue
                slot = self._pick(queue[0])
                if slot is None:
                    continue
                env = queue.popleft()
                slot.inflight.append(env)
                self._last_served = client
                self._note("dispatch", now, task=env.task_id, client=client,
                           endpoint=slot.endpoint_id)
                cycle += 1
            moved += cycle
            if not cycle:
                break
        if moved:
            self._gauge_backlog()
        return moved

    def tick(self) -> int:
        """Execute leased envelopes and heartbeat live endpoints.

        Endpoints inside a crash window neither beat nor execute --
        their leases age toward expiry while their in-flight envelopes
        wait to be declared lost.  Returns completed-envelope count.
        """
        with self._lock:
            done = 0
            for slot in self._slots.values():
                if slot.lost or slot.down:
                    continue
                self.leases.beat(slot.endpoint_id)
                if not slot.inflight:
                    continue
                batch, slot.inflight = slot.inflight, []
                for result in slot.endpoint.execute(batch):
                    self._complete(result)
                    done += 1
            return done

    def _complete(self, result: ResultEnvelope) -> None:
        self.store.append(result)
        self._futures[result.task_id].resolve(result)
        self._note("complete", self.clock(), task=result.task_id,
                   endpoint=result.endpoint, status=result.status)
        self.metrics.counter("service_completed_total",
                             status=result.status).inc()

    def step(self) -> int:
        """One pump + tick round; returns total state changes."""
        return self.pump() + self.tick()

    # -- draining ------------------------------------------------------------

    def pending(self) -> list[str]:
        """Task ids whose futures are unresolved, submission order."""
        with self._lock:
            return [tid for tid, fut in self._futures.items()
                    if not fut.done()]

    def _can_wait(self, now: float) -> bool:
        """Whether advancing the clock can still unblock the service."""
        for slot in self._slots.values():
            if slot.down and slot.inflight:
                return True        # lease expiry will requeue the work
            if (slot.down or slot.lost) and \
                    self._restore_at(slot, now) is not None:
                return True        # a crash window is going to close
        return False

    def drain(self, max_rounds: int = 100000) -> None:
        """Run the scheduling loop until every future is resolved.

        When a round makes no progress, the clock advances by one
        heartbeat period *iff* waiting can help (a dead endpoint's
        lease aging out, a crash window closing); otherwise the stuck
        tasks are reported in a :class:`~repro.service.client.ServiceError`
        -- an explicit failure, never a silent hang.
        """
        for _ in range(max_rounds):
            with self._lock:
                if not self.pending():
                    return
                if self.step():
                    continue
                now = self.clock()
                if not self._can_wait(now):
                    stuck = self.pending()
                    raise ServiceError(
                        f"service stalled with {len(stuck)} unresolved "
                        f"task(s) {stuck[:4]}...: no live endpoint "
                        f"accepts them and no lease or crash window is "
                        f"pending -- register a capable endpoint or "
                        f"cancel the tasks")
            _pause(self.clock, self.leases.period)
        raise ServiceError(f"service did not converge within "
                           f"{max_rounds} scheduling rounds")
