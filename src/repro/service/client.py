"""The futures-based submission API (the service's client side).

``client.submit(benchmark, ...)`` packs a content-addressed
:class:`~repro.service.envelope.TaskEnvelope` and hands it to the
service; the returned :class:`ServiceFuture` resolves to the packed
:class:`~repro.service.envelope.ResultEnvelope` once an endpoint
completes it (the funcx submit -> packed result -> future lifecycle).
``future.result()`` unpacks the benchmark result or raises a typed
error for rejected / cancelled / failed tasks -- an admission-control
rejection is an *explicit outcome*, never a silent drop.

Client-side resubmission after a rejection reuses the engine's
:class:`~repro.exec.resilience.BackoffPolicy`, seeded **per envelope**
through the task's content hash: the retry schedule of a given
submission is a pure function of the envelope, not of any process-wide
seed, so service-path replays are deterministic (see the regression
tests in ``tests/test_service_protocol.py``).
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

from ..core.suite import decode_result, load_suite
from ..exec.engine import _pause
from ..exec.resilience import BackoffPolicy
from .envelope import ResultEnvelope, TaskEnvelope


class ServiceError(RuntimeError):
    """Base class of service-side task failures."""


class RejectedError(ServiceError):
    """The task was refused by admission control (backlog full)."""


class CancelledError(ServiceError):
    """The task was cancelled before an endpoint picked it up."""


class TaskFailedError(ServiceError):
    """The task executed and exhausted its retries with an error."""


class ServiceFuture:
    """Resolution handle of one submitted task envelope."""

    def __init__(self, envelope: TaskEnvelope, service: Any = None):
        self.task = envelope
        self._service = service
        self._done = threading.Event()
        self._result: ResultEnvelope | None = None

    @property
    def task_id(self) -> str:
        return self.task.task_id

    @property
    def status(self) -> str | None:
        """Terminal status, or ``None`` while pending."""
        result = self._result
        return result.status if result is not None else None

    def done(self) -> bool:
        return self._done.is_set()

    def cancelled(self) -> bool:
        return self.status == "cancelled"

    def resolve(self, result: ResultEnvelope) -> None:
        """Service-side completion hook.

        A future resolves exactly once; a second resolution means the
        interchange produced a duplicate result for the task -- the
        invariant the requeue machinery must never break -- so it
        raises instead of silently overwriting.
        """
        if self._done.is_set():
            raise ServiceError(
                f"duplicate result for task {self.task_id}: already "
                f"resolved as {self.status!r}, got {result.status!r}")
        if result.task_id != self.task_id:
            raise ServiceError(
                f"result for task {result.task_id} routed to future "
                f"of task {self.task_id}")
        self._result = result
        self._done.set()

    def envelope(self, timeout: float | None = None) -> ResultEnvelope:
        """The packed result envelope (drains the loopback service if
        the task is still pending)."""
        if not self._done.is_set() and self._service is not None:
            self._service.drain()
        if not self._done.is_set() and not self._done.wait(timeout):
            raise TimeoutError(
                f"task {self.task_id} pending after {timeout} s")
        assert self._result is not None
        return self._result

    def result(self, timeout: float | None = None) -> Any:
        """The decoded benchmark result, or a typed error.

        ``ok`` unpacks to a :class:`~repro.core.benchmark.BenchmarkResult`;
        ``rejected`` raises :class:`RejectedError`, ``cancelled``
        :class:`CancelledError`, ``error`` :class:`TaskFailedError`.
        """
        result = self.envelope(timeout)
        if result.status == "ok":
            return decode_result(result.value)
        if result.status == "rejected":
            raise RejectedError(result.error or "rejected")
        if result.status == "cancelled":
            raise CancelledError(
                result.error or f"task {self.task_id} cancelled")
        raise TaskFailedError(result.error or "task failed")


class ServiceClient:
    """One client identity submitting work to a benchmark service.

    ``retries`` is the *admission* retry budget: a submission bounced
    by the backlog cap is retried after a per-envelope-seeded backoff
    pause (during which the service is stepped, so the loopback
    backlog can drain).  Execution retries stay where they were -- in
    the endpoint engine's fault boundary.
    """

    def __init__(self, service: Any, client_id: str, *, suite: Any = None,
                 retries: int = 0, backoff: BackoffPolicy | None = None):
        if not client_id:
            raise ValueError("client needs an id")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.service = service
        self.client_id = client_id
        self.suite = suite if suite is not None else load_suite()
        self.retries = retries
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self._seq = 0
        self._lock = threading.Lock()

    def _next_seq(self) -> int:
        with self._lock:
            seq = self._seq
            self._seq += 1
            return seq

    def make_envelope(self, benchmark: str, *, nodes: int | None = None,
                      variant: Any = None, scale: float = 1.0,
                      real: bool = False, label: str = "",
                      retries: int | None = None,
                      timeout: float | None = None) -> TaskEnvelope:
        """Pack one submission (computes the exec-cache key)."""
        key = self.suite.run_key(benchmark, nodes, variant=variant,
                                 scale=scale, real=real)
        params = {"nodes": nodes,
                  "variant": variant.value if variant else None,
                  "scale": scale, "real": real}
        return TaskEnvelope(client=self.client_id, benchmark=benchmark,
                            key=key, params=params, seq=self._next_seq(),
                            label=label, retries=retries, timeout=timeout)

    def submit(self, benchmark: str, **kwargs: Any) -> ServiceFuture:
        """Submit one benchmark execution; returns its future."""
        return self.submit_envelope(self.make_envelope(benchmark, **kwargs))

    def submit_envelope(self, envelope: TaskEnvelope) -> ServiceFuture:
        future = self.service.submit(envelope)
        attempt = 1
        while future.status == "rejected" and attempt <= self.retries:
            # per-envelope seeding: the pause depends on the task's
            # content hash, not on who constructed the policy
            delay = self.backoff.delay(envelope.display(), attempt,
                                       key=envelope.task_id)
            _pause(self.service.clock, delay)
            self.service.step()
            future = self.service.submit(envelope)
            attempt += 1
        return future

    def submit_batch(self,
                     specs: Iterable[str | dict[str, Any]]
                     ) -> list[ServiceFuture]:
        """Submit many executions; one future per spec, in order.

        A spec is a benchmark name or a dict of
        :meth:`make_envelope` keyword arguments plus ``benchmark``.
        """
        futures = []
        for spec in specs:
            if isinstance(spec, str):
                futures.append(self.submit(spec))
            else:
                spec = dict(spec)
                futures.append(self.submit(spec.pop("benchmark"), **spec))
        return futures

    def cancel(self, future: ServiceFuture) -> bool:
        """Cancel a still-queued task (False once dispatched or done)."""
        return self.service.cancel(future.task_id)
