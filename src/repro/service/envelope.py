"""Versioned, content-addressed task and result envelopes.

The wire vocabulary of the benchmark service: a client packs one
benchmark execution request into a :class:`TaskEnvelope`, the
interchange routes it to an endpoint, and the endpoint answers with a
:class:`ResultEnvelope`.  Both sides are plain JSON documents
(funcx-style packed task messages), stamped with the schema id
:data:`SERVICE_SCHEMA` so incompatible peers fail loudly instead of
misinterpreting fields.

Identity is *content addressing*, not uuids: :attr:`TaskEnvelope.task_id`
is a stable hash of the envelope's canonical payload, so the same
submission always names the same task -- resubmissions deduplicate, a
replayed spool produces the same ids, and the id is independent of the
JSON field order it arrived in.  The ``key`` field carries the
execution identity the rest of the system already understands: it is a
:func:`repro.exec.cache.result_key` content address, so the endpoint's
:class:`~repro.exec.engine.ExecutionEngine` memoises service tasks in
the same cache direct runs use, and
:attr:`repro.history.record.RunRecord.record_key` provenance lines up.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..exec.cache import stable_hash

#: Wire-schema identity stamped on every envelope.
SERVICE_SCHEMA = "repro.service/v1"
SERVICE_VERSION = 1

#: Terminal states a result envelope may report.
RESULT_STATUSES = ("ok", "error", "rejected", "cancelled")


class EnvelopeError(ValueError):
    """An envelope violates the wire schema (bad version, bad field)."""


def _require(wire: dict[str, Any], name: str, kind: str) -> Any:
    if name not in wire:
        raise EnvelopeError(
            f"{kind} envelope missing required field {name!r}; got "
            f"fields {sorted(wire)}")
    return wire[name]


def _check_schema(wire: dict[str, Any], kind: str) -> None:
    schema = wire.get("schema")
    if schema != SERVICE_SCHEMA:
        raise EnvelopeError(
            f"unsupported {kind} envelope schema {schema!r}; this "
            f"service speaks {SERVICE_SCHEMA!r} -- re-encode the "
            f"envelope with a matching client (or upgrade this service)")


@dataclass(frozen=True)
class TaskEnvelope:
    """One packed benchmark-execution request.

    ``params`` is the resolved parameter set (``nodes``, ``variant``,
    ``scale``, ``real``) the endpoint's suite facade understands;
    ``key`` is the exec-cache content address of the execution;
    ``seq`` is the client-local submission ordinal (it enters the task
    id, so a client submitting the same benchmark twice names two
    distinct tasks); ``retries``/``timeout`` override the endpoint
    engine's defaults for this task.
    """

    client: str
    benchmark: str
    key: str
    params: dict[str, Any] = field(default_factory=dict)
    seq: int = 0
    label: str = ""
    retries: int | None = None
    timeout: float | None = None
    schema: str = SERVICE_SCHEMA

    def __post_init__(self) -> None:
        if not self.client:
            raise EnvelopeError("task envelope needs a client id")
        if not self.benchmark:
            raise EnvelopeError("task envelope needs a benchmark name")
        if not self.key:
            raise EnvelopeError("task envelope needs an execution key")
        if self.seq < 0:
            raise EnvelopeError("task envelope seq must be >= 0")

    @property
    def task_id(self) -> str:
        """Content address of this submission (stable across field
        order, processes and replays)."""
        digest = stable_hash({
            "schema": self.schema, "client": self.client,
            "benchmark": self.benchmark, "key": self.key,
            "params": self.params, "seq": self.seq})
        slug = "".join(c if c.isalnum() or c in "-._" else "_"
                       for c in self.benchmark)
        return f"{slug}-{digest[:24]}"

    def display(self) -> str:
        return self.label or f"run:{self.benchmark}"

    def with_seq(self, seq: int) -> "TaskEnvelope":
        return replace(self, seq=seq)

    # -- wire form ----------------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        """The JSON-safe wire document (round-trips via
        :meth:`from_wire`)."""
        return {"schema": self.schema, "kind": "task",
                "task_id": self.task_id, "client": self.client,
                "benchmark": self.benchmark, "key": self.key,
                "params": dict(self.params), "seq": self.seq,
                "label": self.label, "retries": self.retries,
                "timeout": self.timeout}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "TaskEnvelope":
        """Decode a wire document; unknown schemas are rejected with an
        actionable :class:`EnvelopeError`."""
        if not isinstance(wire, dict):
            raise EnvelopeError(
                f"task envelope must be a JSON object, got "
                f"{type(wire).__name__}")
        _check_schema(wire, "task")
        retries = wire.get("retries")
        timeout = wire.get("timeout")
        env = cls(client=str(_require(wire, "client", "task")),
                  benchmark=str(_require(wire, "benchmark", "task")),
                  key=str(_require(wire, "key", "task")),
                  params=dict(wire.get("params", {})),
                  seq=int(wire.get("seq", 0)),
                  label=str(wire.get("label", "")),
                  retries=None if retries is None else int(retries),
                  timeout=None if timeout is None else float(timeout))
        claimed = wire.get("task_id")
        if claimed is not None and claimed != env.task_id:
            raise EnvelopeError(
                f"task envelope id {claimed!r} does not match its "
                f"content address {env.task_id!r}; the envelope was "
                f"altered in transit -- re-pack it from its source")
        return env


@dataclass(frozen=True)
class ResultEnvelope:
    """One packed task outcome (the endpoint's answer).

    ``value`` is the JSON-safe encoded benchmark result (see
    :func:`repro.core.suite.encode_result`) when ``status == "ok"``.
    ``endpoint``/``attempts``/``cache`` describe *how* the result was
    produced; they are scheduling provenance and are excluded from
    :meth:`canonical`, which is why service-path exports stay
    byte-identical across endpoint layouts, worker counts and cache
    temperature.
    """

    task_id: str
    client: str
    benchmark: str
    key: str
    status: str
    value: Any = None
    error: str | None = None
    endpoint: str = ""
    attempts: int = 0
    cache: str = "off"
    schema: str = SERVICE_SCHEMA

    def __post_init__(self) -> None:
        if self.status not in RESULT_STATUSES:
            raise EnvelopeError(
                f"result envelope status {self.status!r} not in "
                f"{RESULT_STATUSES}")
        if self.status in ("error", "rejected") and not self.error:
            raise EnvelopeError(
                f"result envelope with status {self.status!r} needs an "
                f"error message")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def canonical(self) -> dict[str, Any]:
        """The replay-stable form: what ran and what came out, never
        where or how fast."""
        return {"schema": self.schema, "task_id": self.task_id,
                "client": self.client, "benchmark": self.benchmark,
                "key": self.key, "status": self.status,
                "value": self.value, "error": self.error}

    @property
    def result_id(self) -> str:
        """Content address of the canonical outcome."""
        return stable_hash(self.canonical())[:24]

    # -- wire form ----------------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        wire = self.canonical()
        wire.update({"kind": "result", "endpoint": self.endpoint,
                     "attempts": self.attempts, "cache": self.cache})
        return wire

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ResultEnvelope":
        if not isinstance(wire, dict):
            raise EnvelopeError(
                f"result envelope must be a JSON object, got "
                f"{type(wire).__name__}")
        _check_schema(wire, "result")
        return cls(task_id=str(_require(wire, "task_id", "result")),
                   client=str(_require(wire, "client", "result")),
                   benchmark=str(_require(wire, "benchmark", "result")),
                   key=str(_require(wire, "key", "result")),
                   status=str(_require(wire, "status", "result")),
                   value=wire.get("value"), error=wire.get("error"),
                   endpoint=str(wire.get("endpoint", "")),
                   attempts=int(wire.get("attempts", 0)),
                   cache=str(wire.get("cache", "off")))
