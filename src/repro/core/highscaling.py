"""High-Scaling benchmark methodology (Sec. II-B/II-C).

The novel benchmark type introduced for the exascale procurement:

* a workload is defined to fill a **50 PFLOP/s(th)** sub-partition of the
  preparation system (about 640 JUWELS Booster nodes; power-of-two codes
  take 512),
* the future system must run a **20x larger** version on a
  **1 EFLOP/s(th)** sub-partition,
* the assessment is the **ratio** of the committed runtime on the future
  sub-partition to the reference value,
* up to four memory variants (T/S/M/L) decouple the workload size from
  the proposed accelerator's memory.

This module encodes the partition sizing, the scale-up rule and the
ratio assessment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.hardware import SystemSpec, juwels_booster
from ..units import EXA, PETA
from .variants import MemoryVariant, VariantSizing

#: Preparation-side partition target (Sec. II-C).
PREP_PARTITION_FLOPS = 50.0 * PETA
#: Proposal-side partition target.
PROPOSAL_PARTITION_FLOPS = 1.0 * EXA
#: Workload scale-up between the two partitions.
SCALE_UP = PROPOSAL_PARTITION_FLOPS / PREP_PARTITION_FLOPS  # 20x


def prep_partition_nodes(system: SystemSpec | None = None,
                         power_of_two: bool = False) -> int:
    """Nodes of the 50 PFLOP/s(th) preparation sub-partition.

    ~640 on JUWELS Booster; 512 for codes with power-of-two constraints
    (the paper's footnote rule).
    """
    sysm = system if system is not None else juwels_booster()
    nodes = sysm.nodes_for_peak(PREP_PARTITION_FLOPS)
    if power_of_two:
        nodes = 1 << max(0, nodes.bit_length() - 1)
    return nodes


def proposal_partition_nodes(proposal: SystemSpec) -> int:
    """Nodes of the 1 EFLOP/s(th) sub-partition of a proposed system."""
    return proposal.nodes_for_peak(PROPOSAL_PARTITION_FLOPS)


@dataclass(frozen=True)
class HighScalingAssessment:
    """Outcome of one High-Scaling commitment evaluation.

    ``ratio`` = committed runtime on the 1 EFLOP/s(th) proposal
    sub-partition / reference runtime on the preparation sub-partition.
    Because the proposal partition has 20x the peak and runs a 20x
    workload, a perfectly weak-scaling, architecture-equivalent system
    would land at ratio 1.0; smaller is better.
    """

    benchmark: str
    variant: MemoryVariant
    reference_runtime: float
    committed_runtime: float

    def __post_init__(self) -> None:
        if self.reference_runtime <= 0 or self.committed_runtime <= 0:
            raise ValueError("runtimes must be positive")

    @property
    def ratio(self) -> float:
        """Committed / reference -- the procurement's comparison value."""
        return self.committed_runtime / self.reference_runtime

    @property
    def speedup(self) -> float:
        """Convenience inverse of :attr:`ratio`."""
        return 1.0 / self.ratio


@dataclass(frozen=True)
class HighScalingCase:
    """Rules of one High-Scaling benchmark.

    Encodes which variants exist, whether the application needs
    power-of-two node counts (Chroma, JUQCS), and how to choose the
    variant for a given proposed accelerator.
    """

    benchmark: str
    variants: tuple[MemoryVariant, ...]
    power_of_two: bool = False
    sizing: VariantSizing = VariantSizing()

    def prep_nodes(self, system: SystemSpec | None = None) -> int:
        """Preparation sub-partition size under this case's constraints."""
        return prep_partition_nodes(system, power_of_two=self.power_of_two)

    def choose_variant(self, proposal: SystemSpec) -> MemoryVariant:
        """Variant selection rule for a proposed system.

        The workload memory per device stays at the *reference* variant
        size (the proposal runs a 20x problem on ~20x the devices), so
        the largest variant fitting the proposed device wins.
        """
        return self.sizing.best_variant(proposal.node.device,
                                        available=self.variants)

    def assess(self, variant: MemoryVariant, reference_runtime: float,
               committed_runtime: float) -> HighScalingAssessment:
        """Build the ratio assessment, validating the variant."""
        if variant not in self.variants:
            raise ValueError(
                f"{self.benchmark} offers {[v.value for v in self.variants]}, "
                f"not {variant.value}")
        return HighScalingAssessment(
            benchmark=self.benchmark, variant=variant,
            reference_runtime=reference_runtime,
            committed_runtime=committed_runtime)
