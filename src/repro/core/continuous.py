"""Continuous Benchmarking (the paper's Sec.-VI future work).

"Running the suite at regular intervals (e.g., after maintenances), we
will ensure that the system does not see performance degradation over
its lifetime or after updates."  This module implements that loop:

* a :class:`Baseline` stores reference FOMs (with dispersion) per
  benchmark,
* a :class:`ContinuousBenchmarking` campaign re-runs a benchmark set,
  compares each result against the baseline with a configurable
  tolerance band, and flags regressions,
* results accumulate into a history from which trends (drift) are
  estimated -- the "detect system anomalies during the production
  phase" goal from the introduction.

The machine under test is injectable, so the tests degrade a simulated
system (slower NICs after a bad firmware 'maintenance') and assert the
campaign catches exactly the communication-bound benchmarks.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable

from ..exec.cache import result_key
from ..exec.engine import ExecutionEngine, WorkItem
from ..history.detect import RegressionDetector, Verdict
from ..history.record import record as history_record
from ..history.report import latest_verdicts
from ..history.store import HistoryStore
from ..telemetry.spans import current_tracer
from .benchmark import BenchmarkResult


@dataclass
class Baseline:
    """Accepted reference FOMs, e.g. from the acceptance procedure."""

    foms: dict[str, float] = field(default_factory=dict)
    #: relative run-to-run noise per benchmark (sets the alert band)
    noise: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_runs(cls, runs: dict[str, list[float]]) -> "Baseline":
        """Build from repeated acceptance runs: median + dispersion."""
        base = cls()
        for name, values in runs.items():
            if not values or any(v <= 0 for v in values):
                raise ValueError(f"invalid acceptance runs for {name!r}")
            base.foms[name] = statistics.median(values)
            if len(values) > 1:
                spread = statistics.stdev(values) / base.foms[name]
            else:
                spread = 0.0
            base.noise[name] = max(spread, 0.01)
        return base

    def record(self, name: str, fom: float, noise: float = 0.02) -> None:
        """Register one benchmark's accepted FOM."""
        if fom <= 0 or noise < 0:
            raise ValueError("invalid baseline entry")
        self.foms[name] = fom
        self.noise[name] = max(noise, 1e-6)


@dataclass(frozen=True)
class RegressionAlert:
    """One detected degradation."""

    benchmark: str
    baseline: float
    measured: float

    @property
    def slowdown(self) -> float:
        """measured / baseline (> 1 is slower)."""
        return self.measured / self.baseline


@dataclass
class CampaignReport:
    """Outcome of one continuous-benchmarking interval."""

    interval: int
    results: dict[str, float] = field(default_factory=dict)
    alerts: list[RegressionAlert] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return not self.alerts


class ContinuousBenchmarking:
    """Re-run a benchmark set on a schedule and flag regressions.

    ``runner(name)`` must return a :class:`BenchmarkResult` (or any
    object with ``fom_seconds``); in production this is
    ``suite.run``, in tests a machine-degrading closure.  A benchmark
    regresses when it is slower than baseline by more than
    ``sigma`` times its recorded noise plus ``slack``.

    With an :class:`~repro.exec.engine.ExecutionEngine` the interval's
    benchmarks run concurrently, and -- the exaCB incremental property
    -- re-running a benchmark whose *fingerprint* (system/software
    state tag, e.g. a maintenance id) is unchanged reuses the cached
    FOM instead of executing; only changed benchmarks re-run.
    """

    def __init__(self, baseline: Baseline,
                 runner: Callable[[str], BenchmarkResult],
                 sigma: float = 3.0, slack: float = 0.02,
                 engine: ExecutionEngine | None = None,
                 fingerprint: str = "",
                 store: HistoryStore | None = None):
        if sigma <= 0 or slack < 0:
            raise ValueError("invalid alert thresholds")
        self.baseline = baseline
        self.runner = runner
        self.sigma = sigma
        self.slack = slack
        self.engine = engine
        #: current system-state tag; change it (``refingerprint``) after
        #: a maintenance to force re-execution of cached benchmarks
        self.fingerprint = fingerprint
        self.history: list[CampaignReport] = []
        #: optional performance-history database: every interval's FOMs
        #: are appended as provenance-stamped run records, so campaigns
        #: feed the same trajectories ``jubench regress`` analyses
        self.store = store

    # The process engine backend pickles ``fn=self._measure_fom``; the
    # engine itself (pools, locks) and the history store (file handle,
    # lock) must not cross the boundary.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["engine"] = None
        state["store"] = None
        return state

    def refingerprint(self, fingerprint: str) -> None:
        """Declare a new system state (invalidates incremental reuse)."""
        self.fingerprint = fingerprint

    def _measure_fom(self, name: str) -> float:
        return float(self.runner(name).fom_seconds)

    def _measure_all(self, names: list[str]) -> dict[str, float]:
        """FOMs for an interval, via the engine when configured."""
        if self.engine is None:
            return {name: self._measure_fom(name) for name in names}
        items = [WorkItem(fn=self._measure_fom, args=(name,),
                          key=result_key(
                              f"continuous:{name}",
                              {"fingerprint": self.fingerprint}),
                          label=f"continuous:{name}")
                 for name in names]
        return dict(zip(names, self.engine.run(items)))

    def run_interval(self, benchmarks: list[str] | None = None
                     ) -> CampaignReport:
        """One interval: run (or reuse), compare, record."""
        names = benchmarks if benchmarks is not None \
            else sorted(self.baseline.foms)
        for name in names:
            if name not in self.baseline.foms:
                raise KeyError(f"no baseline for benchmark {name!r}")
        report = CampaignReport(interval=len(self.history))
        with current_tracer().span("continuous.interval", kind="interval",
                                   interval=report.interval,
                                   fingerprint=self.fingerprint,
                                   benchmarks=len(names)) as span:
            foms = self._measure_all(names)
            for name in names:
                fom = foms[name]
                report.results[name] = fom
                ref = self.baseline.foms[name]
                threshold = ref * (1.0
                                   + self.sigma * self.baseline.noise[name]
                                   + self.slack)
                if fom > threshold:
                    report.alerts.append(RegressionAlert(
                        benchmark=name, baseline=ref, measured=fom))
            span.set(alerts=len(report.alerts))
        self.history.append(report)
        if self.store is not None:
            for name in names:
                self.store.append(history_record(
                    name, report.results[name],
                    params={"campaign": "continuous"},
                    volatile={"interval": report.interval,
                              "fingerprint": self.fingerprint}))
        return report

    def verdicts(self, detector: RegressionDetector | None = None
                 ) -> dict[str, Verdict]:
        """Newest-point statistical verdict per history-DB series.

        Complements the baseline-band alerts: the baseline compares
        against the acceptance reference, while the detector judges
        each new point against the series' own recent stationary
        window.  Empty when no :attr:`store` is attached.
        """
        if self.store is None:
            return {}
        return latest_verdicts(self.store, detector=detector)

    def drift(self, name: str) -> float:
        """Relative FOM trend of one benchmark across history.

        Least-squares slope per interval, normalised by the baseline;
        ~0 for a healthy system, positive when performance decays.
        """
        ys = [rep.results[name] for rep in self.history
              if name in rep.results]
        if len(ys) < 2:
            return 0.0
        n = len(ys)
        xs = range(n)
        mean_x = (n - 1) / 2.0
        mean_y = sum(ys) / n
        cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        var = sum((x - mean_x) ** 2 for x in xs)
        return (cov / var) / self.baseline.foms[name]

    def summary(self) -> str:
        """Human-readable campaign summary."""
        lines = [f"continuous benchmarking: {len(self.history)} intervals"]
        for name in sorted(self.baseline.foms):
            alerts = sum(1 for rep in self.history
                         for a in rep.alerts if a.benchmark == name)
            lines.append(f"  {name:<18} baseline "
                         f"{self.baseline.foms[name]:9.2f} s  "
                         f"drift {self.drift(name) * 100:+6.2f} %/interval  "
                         f"alerts {alerts}")
        return "\n".join(lines)
