"""High-Scaling memory variants T / S / M / L (Sec. II-C).

To decouple the benchmark from the (unknown) memory capacity of proposed
accelerators, each High-Scaling workload exists in up to four reference
variants sized to 25 / 50 / 75 / 100 % of the preparation system's 40 GB
GPU memory.  "The system proposal may choose the variant that best
exploits the available memory on the proposed accelerator after
scale-up."  This module implements the sizing and that selection rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..cluster.hardware import A100, DeviceSpec


class MemoryVariant(Enum):
    """The four reference workload sizes."""

    TINY = "T"
    SMALL = "S"
    MEDIUM = "M"
    LARGE = "L"

    @property
    def fraction(self) -> float:
        """Fraction of reference GPU memory the variant occupies."""
        return {"T": 0.25, "S": 0.50, "M": 0.75, "L": 1.00}[self.value]

    @classmethod
    def from_label(cls, label: str) -> "MemoryVariant":
        """Parse ``'T'/'S'/'M'/'L'`` (case-insensitive)."""
        try:
            return cls(label.upper())
        except ValueError:
            raise ValueError(f"unknown memory variant {label!r}; "
                             "expected one of T, S, M, L")


@dataclass(frozen=True)
class VariantSizing:
    """Memory sizing of variants relative to a reference device."""

    reference_device: DeviceSpec = A100
    #: fraction of device memory actually usable by the workload (the
    #: runtime, comm buffers etc. take the rest)
    usable_fraction: float = 0.95

    def bytes_per_device(self, variant: MemoryVariant) -> float:
        """Workload bytes per reference device for a variant."""
        return (self.reference_device.mem_capacity * self.usable_fraction *
                variant.fraction)

    def fits(self, variant: MemoryVariant, device: DeviceSpec,
             scaleup: float = 1.0) -> bool:
        """Whether a variant (scaled up by ``scaleup`` per device) fits a
        proposed device's memory."""
        needed = self.bytes_per_device(variant) * scaleup
        return needed <= device.mem_capacity * self.usable_fraction

    def best_variant(self, device: DeviceSpec,
                     available: tuple[MemoryVariant, ...] = tuple(MemoryVariant),
                     scaleup: float = 1.0) -> MemoryVariant:
        """The largest available variant that fits the proposed device.

        This is the proposal-side selection rule: exploit as much of the
        accelerator's memory as possible without spilling (which would
        mask its compute capability -- the risk Sec. II-C describes).
        """
        if not available:
            raise ValueError("no variants available")
        fitting = [v for v in available if self.fits(v, device, scaleup)]
        if not fitting:
            raise ValueError(
                f"no variant of {[v.value for v in available]} fits "
                f"{device.name} ({device.mem_capacity / 1e9:.0f} GB)")
        return max(fitting, key=lambda v: v.fraction)


def variant_labels(variants: tuple[MemoryVariant, ...]) -> str:
    """Compact Table-II-style label, e.g. ``'T,S,M,L'``."""
    return ",".join(v.value for v in variants)
