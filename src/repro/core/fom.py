"""Figures of Merit and their normalisation to a time metric.

Sec. II-C: "For each of the Base benchmarks ... a Figure-of-Merit (FOM)
is identified and normalized to a time-metric.  In most cases, the FOM
is the runtime of either the full application or a part of it.  In case
the application focuses on rates, the time-metric is achieved by
pre-defining the number of iterations and multiplying with the rate."

That normalisation is what makes wildly different benchmarks (an HMC
trajectory time, tokens/second of an LLM, GB/s of a filesystem)
commensurable inside one value-for-money formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..units import register_dims

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules;
#: UNIT305 polices the pipeline's central promise -- everything that
#: claims to be a time metric really reduces to seconds
DIMS = register_dims(__name__, {
    "time_metric.return": "s",
    "from_time.seconds": "s",
    "ReferenceResult.time_metric": "s",
    "improvement.committed_seconds": "s",
    "improvement.return": "1",
})


class FomKind(Enum):
    """How the raw measurement maps onto seconds."""

    #: FOM *is* a runtime in seconds (lower is better).
    RUNTIME = "runtime"
    #: FOM is a rate in work-units/second; normalised by a fixed amount of
    #: work (e.g. Megatron-LM: train 20 million tokens at the measured
    #: tokens/s).
    RATE = "rate"
    #: FOM is a bandwidth in bytes/second; normalised by a fixed volume
    #: (IOR, STREAM).
    BANDWIDTH = "bandwidth"


@dataclass(frozen=True)
class FigureOfMerit:
    """Declaration of a benchmark's FOM and its time normalisation.

    ``work`` is the pre-defined amount of work for RATE/BANDWIDTH kinds
    (tokens, iterations, bytes, ...); unused for RUNTIME.
    """

    name: str
    kind: FomKind = FomKind.RUNTIME
    unit: str = "s"
    work: float | None = None

    def __post_init__(self) -> None:
        if self.kind is not FomKind.RUNTIME and (self.work is None or
                                                 self.work <= 0):
            raise ValueError(
                f"FOM {self.name!r}: kind {self.kind.value} needs positive work")

    def time_metric(self, measured: float) -> float:
        """Normalise a raw measurement to seconds (lower is better)."""
        if measured <= 0:
            raise ValueError(f"FOM {self.name!r}: measurement must be positive")
        if self.kind is FomKind.RUNTIME:
            return measured
        # rate/bandwidth: seconds to complete the pre-defined work
        return self.work / measured

    def from_time(self, seconds: float) -> float:
        """Inverse of :meth:`time_metric` (for reporting raw FOMs)."""
        if seconds <= 0:
            raise ValueError("time metric must be positive")
        if self.kind is FomKind.RUNTIME:
            return seconds
        return self.work / seconds


@dataclass(frozen=True)
class ReferenceResult:
    """A reference execution on the preparation system (Sec. II-C).

    The time metric measured on ``nodes`` reference nodes is "the value
    to be improved upon and committed to by proposals of system designs".
    """

    benchmark: str
    nodes: int
    time_metric: float

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("reference nodes must be positive")
        if self.time_metric <= 0:
            raise ValueError("reference time metric must be positive")

    def improvement(self, committed_seconds: float) -> float:
        """Speedup factor of a commitment over this reference (>1 is
        better than the preparation system)."""
        if committed_seconds <= 0:
            raise ValueError("committed time must be positive")
        return self.time_metric / committed_seconds
