"""Benchmark abstractions: categories, metadata, results, runtime base.

This is the vocabulary of the suite (Table I/II): every benchmark has a
category (Base / High-Scaling / synthetic), execution targets
(Booster / Cluster / MSA / storage), Berkeley-dwarf classification,
language/licence metadata, reference node counts, and -- for runnable
benchmarks -- a :meth:`Benchmark.run` implementation producing a
:class:`BenchmarkResult` with the normalised time-metric FOM.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Any

from ..cluster.hardware import SystemSpec, juwels_booster, juwels_cluster
from ..units import register_dims
from ..vmpi.machine import Machine
from ..vmpi.trace import SpmdResult
from .fom import FigureOfMerit
from .variants import MemoryVariant

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules;
#: the normalised FOM is the one field every benchmark must express in
#: seconds -- UNIT304 checks each construction site against this
DIMS = register_dims(__name__, {
    "BenchmarkResult.fom_seconds": "s",
})


class Category(enum.Enum):
    """Benchmark categories (Sec. II-B)."""

    BASE = "base"
    HIGH_SCALING = "high-scaling"
    SYNTHETIC = "synthetic"


class Dwarf(enum.Enum):
    """Berkeley dwarfs / computational motifs used by Table I."""

    DENSE_LA = "Dense Linear Algebra"
    SPARSE_LA = "Sparse Linear Algebra"
    SPECTRAL = "Spectral Methods"
    PARTICLE = "N-Body / Particle Methods"
    STRUCTURED_GRID = "Structured Grids"
    UNSTRUCTURED_GRID = "Unstructured Grids"
    MONTE_CARLO = "Monte Carlo / MapReduce"
    GRAPH_TRAVERSAL = "Graph Traversal"
    IO = "Input/Output"
    NETWORK = "Network"
    MEMORY = "Regular Memory Access"


class Target(enum.Enum):
    """Execution targets (last columns of Table II)."""

    BOOSTER = "booster"      # GPU module
    CLUSTER = "cluster"      # CPU module
    MSA = "msa"              # spans both modules
    STORAGE = "storage"      # the flash storage module


@dataclass(frozen=True)
class BenchmarkInfo:
    """Static metadata of one suite benchmark (Tables I and II)."""

    name: str
    domain: str
    dwarfs: tuple[Dwarf, ...]
    languages: tuple[str, ...]
    prog_models: tuple[str, ...]
    license: str
    categories: tuple[Category, ...]
    targets: tuple[Target, ...]
    #: reference node counts for Base execution (several for
    #: sub-benchmarks, e.g. ICON 120/300)
    base_nodes: tuple[int, ...] = ()
    #: preparation-system node count for High-Scaling (0 if not HS)
    highscale_nodes: int = 0
    #: available memory variants for High-Scaling
    variants: tuple[MemoryVariant, ...] = ()
    #: prepared for the procurement but ultimately not used (the
    #: asterisked rows: Amber, ParFlow, SOMA, ResNet)
    used_in_procurement: bool = True
    libraries: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if Category.HIGH_SCALING in self.categories and not self.variants:
            raise ValueError(
                f"{self.name}: High-Scaling benchmarks need memory variants")
        if Category.BASE in self.categories and not self.base_nodes:
            raise ValueError(f"{self.name}: Base benchmarks need base_nodes")

    @property
    def reference_nodes(self) -> int:
        """Default reference node count (first of ``base_nodes``)."""
        if not self.base_nodes:
            raise ValueError(f"{self.name} has no Base node counts")
        return self.base_nodes[0]

    @property
    def is_cpu_only(self) -> bool:
        """Runs only on the CPU module (NAStJA, DynQCD)."""
        return Target.BOOSTER not in self.targets and \
            Target.CLUSTER in self.targets


@dataclass
class BenchmarkResult:
    """Outcome of one benchmark execution on the simulated machine."""

    benchmark: str
    nodes: int
    fom_seconds: float
    variant: MemoryVariant | None = None
    verified: bool | None = None
    verification: str = ""
    spmd: SpmdResult | None = None
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Scheduler-compatible duration alias."""
        return self.fom_seconds

    def __post_init__(self) -> None:
        if self.fom_seconds <= 0:
            raise ValueError(
                f"{self.benchmark}: FOM time metric must be positive")
        if self.nodes < 1:
            raise ValueError(f"{self.benchmark}: nodes must be positive")


class Benchmark(abc.ABC):
    """Runtime base class all application/synthetic benchmarks implement.

    Concrete classes define :attr:`info`, :attr:`fom` and
    :meth:`_execute`; this base provides machine construction and result
    packaging.  ``scale`` shrinks the workload proportionally so that
    *real* (data-carrying) runs stay tractable; ``real=False`` runs the
    same communication/compute structure with phantom payloads.
    """

    info: BenchmarkInfo
    fom: FigureOfMerit

    def system(self) -> SystemSpec:
        """The system this benchmark targets by default."""
        if self.info.is_cpu_only:
            return juwels_cluster()
        return juwels_booster()

    def machine(self, nodes: int, ranks_per_node: int | None = None) -> Machine:
        """Place a job of ``nodes`` nodes on the target system."""
        sysm = self.system()
        rpn = sysm.node.devices_per_node if ranks_per_node is None \
            else ranks_per_node
        return Machine.on(sysm, nranks=nodes * rpn, ranks_per_node=rpn)

    @abc.abstractmethod
    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        """Produce the benchmark result (implemented per application)."""

    def run(self, nodes: int | None = None, *,
            variant: MemoryVariant | None = None,
            scale: float = 1.0, real: bool = False) -> BenchmarkResult:
        """Run the benchmark.

        ``nodes`` defaults to the reference node count.  ``variant``
        selects a High-Scaling memory variant where applicable.
        """
        if nodes is None:
            nodes = self.info.reference_nodes
        if nodes < 1:
            raise ValueError("nodes must be positive")
        if variant is not None and self.info.variants and \
                variant not in self.info.variants:
            raise ValueError(
                f"{self.info.name} offers variants "
                f"{[v.value for v in self.info.variants]}, not {variant.value}")
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        return self._execute(nodes, variant=variant, scale=scale, real=real)
