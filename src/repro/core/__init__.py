"""The procurement methodology -- the paper's primary contribution.

FOM normalisation, benchmark categories and metadata (Tables I/II),
memory variants, High-Scaling extrapolation, TCO value-for-money,
proposal evaluation, scaling studies, verification framework, and the
suite facade.
"""

from .benchmark import (
    Benchmark,
    BenchmarkInfo,
    BenchmarkResult,
    Category,
    Dwarf,
    Target,
)
from .continuous import (
    Baseline,
    CampaignReport,
    ContinuousBenchmarking,
    RegressionAlert,
)
from .descriptions import SECTIONS, describe, describe_all
from .fom import FigureOfMerit, FomKind, ReferenceResult
from .highscaling import (
    PREP_PARTITION_FLOPS,
    PROPOSAL_PARTITION_FLOPS,
    SCALE_UP,
    HighScalingAssessment,
    HighScalingCase,
    prep_partition_nodes,
    proposal_partition_nodes,
)
from .procurement import (
    HighScalingCommitment,
    ProcurementEvaluation,
    ProcurementScore,
    RuleViolation,
)
from .registry import (
    BENCHMARKS,
    application_benchmarks,
    by_category,
    get_info,
    high_scaling_benchmarks,
    procurement_benchmarks,
    synthetic_benchmarks,
)
from .scaling import (
    FIG2_FACTORS,
    ScalingPoint,
    StrongScalingResult,
    WeakScalingResult,
    scaled_node_counts,
    strong_scaling,
    weak_scaling,
)
from .suite import (
    CHECKLIST,
    JupiterBenchmarkSuite,
    PipelineState,
    analyse_workloads,
    creation_pipeline,
    load_suite,
    prepare_benchmark,
    select_applications,
)
from .tco import (
    Commitment,
    SystemProposal,
    TcoAssessment,
    TcoModel,
    WorkloadEntry,
    WorkloadMix,
)
from .variants import MemoryVariant, VariantSizing, variant_labels
from .verification import (
    ExactVerifier,
    FrameworkVerifier,
    ModelVerifier,
    ToleranceVerifier,
    VerificationMethod,
    VerificationResult,
)

__all__ = [
    "BENCHMARKS",
    "Baseline",
    "CampaignReport",
    "ContinuousBenchmarking",
    "RegressionAlert",
    "SECTIONS",
    "describe",
    "describe_all",
    "Benchmark",
    "BenchmarkInfo",
    "BenchmarkResult",
    "CHECKLIST",
    "Category",
    "Commitment",
    "Dwarf",
    "ExactVerifier",
    "FIG2_FACTORS",
    "FigureOfMerit",
    "FomKind",
    "FrameworkVerifier",
    "HighScalingAssessment",
    "HighScalingCase",
    "HighScalingCommitment",
    "JupiterBenchmarkSuite",
    "MemoryVariant",
    "ModelVerifier",
    "PREP_PARTITION_FLOPS",
    "PROPOSAL_PARTITION_FLOPS",
    "PipelineState",
    "ProcurementEvaluation",
    "ProcurementScore",
    "ReferenceResult",
    "RuleViolation",
    "SCALE_UP",
    "ScalingPoint",
    "StrongScalingResult",
    "SystemProposal",
    "Target",
    "TcoAssessment",
    "TcoModel",
    "ToleranceVerifier",
    "VariantSizing",
    "VerificationMethod",
    "VerificationResult",
    "WeakScalingResult",
    "WorkloadEntry",
    "WorkloadMix",
    "analyse_workloads",
    "application_benchmarks",
    "by_category",
    "creation_pipeline",
    "get_info",
    "high_scaling_benchmarks",
    "load_suite",
    "prep_partition_nodes",
    "prepare_benchmark",
    "procurement_benchmarks",
    "proposal_partition_nodes",
    "scaled_node_counts",
    "select_applications",
    "strong_scaling",
    "synthetic_benchmarks",
    "variant_labels",
    "weak_scaling",
]
