"""The suite registry: all 23 benchmarks with Table I/II metadata.

This is the single source of truth behind the reproduced Table I
(benchmark <-> domain <-> Berkeley dwarfs) and Table II (languages,
programming models, licences, node counts, memory variants, execution
targets).  The runnable implementations live in :mod:`repro.apps` and
:mod:`repro.synthetic`; they attach to these records by name.
"""

from __future__ import annotations

from .benchmark import BenchmarkInfo, Category, Dwarf, Target
from .variants import MemoryVariant

_T, _S, _M, _L = (MemoryVariant.TINY, MemoryVariant.SMALL,
                  MemoryVariant.MEDIUM, MemoryVariant.LARGE)

_BASE = (Category.BASE,)
_BASE_HS = (Category.BASE, Category.HIGH_SCALING)
_SYN = (Category.SYNTHETIC,)

#: All 23 benchmarks in Table II's row order.
BENCHMARKS: tuple[BenchmarkInfo, ...] = (
    BenchmarkInfo(
        name="Amber", domain="MD",
        dwarfs=(Dwarf.PARTICLE, Dwarf.SPECTRAL),
        languages=("Fortran",), prog_models=("CUDA",),
        license="Custom", categories=_BASE, targets=(Target.BOOSTER,),
        base_nodes=(1,), used_in_procurement=False),
    BenchmarkInfo(
        name="Arbor", domain="Neuroscience",
        dwarfs=(Dwarf.SPARSE_LA,),
        languages=("C++",), prog_models=("CUDA", "HIP"),
        license="BSD-3-Clause", categories=_BASE_HS,
        targets=(Target.BOOSTER,),
        base_nodes=(8,), highscale_nodes=642, variants=(_T, _S, _M, _L)),
    BenchmarkInfo(
        name="Chroma-QCD", domain="QCD",
        dwarfs=(Dwarf.SPARSE_LA,),
        languages=("C++",), prog_models=("CUDA", "HIP"),
        libraries=("QUDA", "QDP-JIT", "QMP"),
        license="JLab", categories=_BASE_HS, targets=(Target.BOOSTER,),
        base_nodes=(8,), highscale_nodes=512, variants=(_S, _M, _L)),
    BenchmarkInfo(
        name="GROMACS", domain="MD",
        dwarfs=(Dwarf.PARTICLE, Dwarf.SPECTRAL),
        languages=("C++",), prog_models=("CUDA", "SYCL"),
        license="LGPLv2.1", categories=_BASE, targets=(Target.BOOSTER,),
        base_nodes=(3, 128)),
    BenchmarkInfo(
        name="ICON", domain="Climate",
        dwarfs=(Dwarf.STRUCTURED_GRID,),
        languages=("Fortran", "C"), prog_models=("OpenACC", "CUDA", "HIP"),
        license="BSD-3-Clause", categories=_BASE,
        targets=(Target.BOOSTER, Target.STORAGE),
        base_nodes=(120, 300)),
    BenchmarkInfo(
        name="JUQCS", domain="Quantum Computing",
        dwarfs=(Dwarf.DENSE_LA,),
        languages=("Fortran",), prog_models=("CUDA", "OpenMP", "MPI"),
        license="None", categories=_BASE_HS,
        targets=(Target.BOOSTER, Target.MSA),
        base_nodes=(8,), highscale_nodes=512, variants=(_S, _L)),
    BenchmarkInfo(
        name="nekRS", domain="CFD",
        dwarfs=(Dwarf.DENSE_LA, Dwarf.UNSTRUCTURED_GRID),
        languages=("C++", "C"), prog_models=("CUDA", "HIP", "SYCL"),
        libraries=("OCCA",),
        license="BSD-3-Clause", categories=_BASE_HS,
        targets=(Target.BOOSTER,),
        base_nodes=(8,), highscale_nodes=642, variants=(_S, _M, _L)),
    BenchmarkInfo(
        name="ParFlow", domain="Earth Systems",
        dwarfs=(Dwarf.STRUCTURED_GRID,),
        languages=("C",), prog_models=("CUDA", "HIP"),
        libraries=("Hypre",),
        license="LGPL", categories=_BASE, targets=(Target.BOOSTER,),
        base_nodes=(4,), used_in_procurement=False),
    BenchmarkInfo(
        name="PIConGPU", domain="Plasma Physics",
        dwarfs=(Dwarf.PARTICLE, Dwarf.STRUCTURED_GRID),
        languages=("C++",), prog_models=("CUDA", "HIP"),
        libraries=("Alpaka",),
        license="GPLv3+", categories=_BASE_HS, targets=(Target.BOOSTER,),
        base_nodes=(4,), highscale_nodes=640, variants=(_S, _M, _L)),
    BenchmarkInfo(
        name="Quantum Espresso", domain="Materials Science",
        dwarfs=(Dwarf.SPECTRAL, Dwarf.DENSE_LA),
        languages=("Fortran",), prog_models=("OpenACC", "CUF"),
        libraries=("ELPA",),
        license="GPL", categories=_BASE, targets=(Target.BOOSTER,),
        base_nodes=(8,)),
    BenchmarkInfo(
        name="SOMA", domain="Polymer Systems",
        dwarfs=(Dwarf.MONTE_CARLO,),
        languages=("C",), prog_models=("OpenACC",),
        license="LGPL", categories=_BASE, targets=(Target.BOOSTER,),
        base_nodes=(8,), used_in_procurement=False),
    BenchmarkInfo(
        name="MMoCLIP", domain="AI (Multi-Modal)",
        dwarfs=(Dwarf.DENSE_LA,),
        languages=("Python",), prog_models=("CUDA", "ROCm"),
        libraries=("PyTorch",),
        license="MIT", categories=_BASE, targets=(Target.BOOSTER,),
        base_nodes=(8,)),
    BenchmarkInfo(
        name="Megatron-LM", domain="AI (LLM)",
        dwarfs=(Dwarf.DENSE_LA,),
        languages=("Python",), prog_models=("CUDA", "ROCm"),
        libraries=("PyTorch", "Apex"),
        license="BSD-3-Clause", categories=_BASE, targets=(Target.BOOSTER,),
        base_nodes=(96,)),
    BenchmarkInfo(
        name="ResNet", domain="AI (Vision)",
        dwarfs=(Dwarf.DENSE_LA,),
        languages=("Python",), prog_models=("CUDA", "ROCm"),
        libraries=("TensorFlow", "Horovod"),
        license="Apache-2.0", categories=_BASE, targets=(Target.BOOSTER,),
        base_nodes=(10,), used_in_procurement=False),
    BenchmarkInfo(
        name="DynQCD", domain="QCD",
        dwarfs=(Dwarf.SPARSE_LA, Dwarf.STRUCTURED_GRID),
        languages=("C",), prog_models=("OpenMP",),
        license="None (closed source)", categories=_BASE,
        targets=(Target.CLUSTER,),
        base_nodes=(8,)),
    BenchmarkInfo(
        name="NAStJA", domain="Biology",
        dwarfs=(Dwarf.STRUCTURED_GRID, Dwarf.MONTE_CARLO),
        languages=("C++",), prog_models=("MPI",),
        license="MPL-2.0", categories=_BASE, targets=(Target.CLUSTER,),
        base_nodes=(8,)),
    BenchmarkInfo(
        name="Graph500", domain="Graph Analytics",
        dwarfs=(Dwarf.GRAPH_TRAVERSAL,),
        languages=("C",), prog_models=("MPI",),
        license="MIT", categories=_SYN, targets=(Target.BOOSTER, Target.CLUSTER),
        base_nodes=(4, 16)),
    BenchmarkInfo(
        name="HPCG", domain="Conjugate Gradients",
        dwarfs=(Dwarf.SPARSE_LA,),
        languages=("C++",), prog_models=("OpenMP", "CUDA", "HIP"),
        license="BSD-3-Clause", categories=_SYN,
        targets=(Target.BOOSTER, Target.CLUSTER),
        base_nodes=(1, 4)),
    BenchmarkInfo(
        name="HPL", domain="Linear Algebra",
        dwarfs=(Dwarf.DENSE_LA,),
        languages=("C",), prog_models=("OpenMP", "CUDA", "HIP"),
        libraries=("BLAS",),
        license="BSD-4-Clause", categories=_SYN,
        targets=(Target.BOOSTER, Target.CLUSTER),
        base_nodes=(1, 16)),
    BenchmarkInfo(
        name="IOR", domain="Filesystem",
        dwarfs=(Dwarf.IO,),
        languages=("C",), prog_models=("MPI",),
        license="GPLv2", categories=_SYN,
        targets=(Target.BOOSTER, Target.CLUSTER, Target.STORAGE),
        base_nodes=(64,)),
    BenchmarkInfo(
        name="LinkTest", domain="Network",
        dwarfs=(Dwarf.NETWORK,),
        languages=("C++",), prog_models=("MPI",),
        libraries=("SIONlib",),
        license="BSD-4-Clause+", categories=_SYN,
        targets=(Target.BOOSTER, Target.CLUSTER),
        base_nodes=(936,)),
    BenchmarkInfo(
        name="OSU", domain="Network",
        dwarfs=(Dwarf.NETWORK,),
        languages=("C",), prog_models=("MPI", "CUDA"),
        license="BSD", categories=_SYN,
        targets=(Target.BOOSTER, Target.CLUSTER),
        base_nodes=(1, 2)),
    BenchmarkInfo(
        name="STREAM", domain="Memory",
        dwarfs=(Dwarf.MEMORY,),
        languages=("C",), prog_models=("CUDA", "ROCm", "OpenACC"),
        license="Custom", categories=_SYN,
        targets=(Target.BOOSTER, Target.CLUSTER),
        base_nodes=(1,)),
)

_BY_NAME = {b.name: b for b in BENCHMARKS}


def get_info(name: str) -> BenchmarkInfo:
    """Metadata record for a benchmark by its Table II name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}")


def by_category(category: Category) -> tuple[BenchmarkInfo, ...]:
    """All benchmarks in a category, in Table II order."""
    return tuple(b for b in BENCHMARKS if category in b.categories)


def application_benchmarks() -> tuple[BenchmarkInfo, ...]:
    """The 16 application benchmarks (Base and/or High-Scaling)."""
    return tuple(b for b in BENCHMARKS if Category.SYNTHETIC not in b.categories)


def synthetic_benchmarks() -> tuple[BenchmarkInfo, ...]:
    """The 7 synthetic benchmarks."""
    return by_category(Category.SYNTHETIC)


def high_scaling_benchmarks() -> tuple[BenchmarkInfo, ...]:
    """The 5 High-Scaling benchmarks."""
    return by_category(Category.HIGH_SCALING)


def procurement_benchmarks() -> tuple[BenchmarkInfo, ...]:
    """The 12 application benchmarks actually used in the procurement."""
    return tuple(b for b in application_benchmarks() if b.used_in_procurement)
