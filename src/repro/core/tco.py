"""TCO-based value-for-money evaluation (Sec. II-B).

"The procurement for the JUPITER system uses a Total-Cost-of-Ownership-
based (TCO) value-for-money approach, in which the number of executed
reference workloads over the lifespan of the system determines the
value."  Electricity and cooling are a substantial part of the budget,
so the denominator includes projected energy cost, and the numerator is
a weighted mix of application workloads ("a greater emphasis is placed
on application performance rather than on synthetic tests").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.energy import EnergyModel
from ..cluster.hardware import SystemSpec
from ..units import register_dims
from .fom import ReferenceResult

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules;
#: commitments carry normalised time metrics (seconds), the blended
#: workload rate is 1/s -- the units the TCO formula hinges on
DIMS = register_dims(__name__, {
    "Commitment.time_metric": "s",
    "commit.time_metric": "s",
    "workload_rate.return": "1/s",
})


@dataclass(frozen=True)
class Commitment:
    """A vendor's committed execution of one reference workload.

    ``nodes`` is freely chosen by the proposal ("typically smaller than
    the reference number of nodes"); ``time_metric`` is the committed
    normalised runtime on those nodes.
    """

    benchmark: str
    nodes: int
    time_metric: float

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.time_metric <= 0:
            raise ValueError("invalid commitment")


@dataclass(frozen=True)
class WorkloadEntry:
    """One benchmark's share of the system's expected workload mix."""

    benchmark: str
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("workload weight must be positive")


@dataclass
class WorkloadMix:
    """The weighted application mix used by the value computation."""

    entries: list[WorkloadEntry] = field(default_factory=list)

    def add(self, benchmark: str, weight: float) -> "WorkloadMix":
        self.entries.append(WorkloadEntry(benchmark=benchmark, weight=weight))
        return self

    @property
    def total_weight(self) -> float:
        return sum(e.weight for e in self.entries)

    def normalised(self) -> dict[str, float]:
        """Weights scaled to sum to one."""
        total = self.total_weight
        if total <= 0:
            raise ValueError("workload mix is empty")
        return {e.benchmark: e.weight / total for e in self.entries}


@dataclass
class SystemProposal:
    """A bidder's proposal: machine + commitments + capital cost."""

    name: str
    system: SystemSpec
    commitments: dict[str, Commitment] = field(default_factory=dict)
    capex_eur: float = 250e6
    lifetime_years: float = 6.0
    avg_utilization: float = 0.8
    eur_per_kwh: float = 0.20

    def commit(self, benchmark: str, nodes: int,
               time_metric: float) -> "SystemProposal":
        """Record a commitment (fluent)."""
        self.commitments[benchmark] = Commitment(
            benchmark=benchmark, nodes=nodes, time_metric=time_metric)
        return self

    def missing(self, mix: WorkloadMix) -> list[str]:
        """Mix benchmarks without a commitment (validation helper)."""
        return [e.benchmark for e in mix.entries
                if e.benchmark not in self.commitments]


@dataclass(frozen=True)
class TcoAssessment:
    """The value-for-money result of one proposal."""

    proposal: str
    workloads_over_lifetime: float
    tco_eur: float

    @property
    def value_for_money(self) -> float:
        """Executed reference workloads per million EUR of TCO."""
        return self.workloads_over_lifetime / (self.tco_eur / 1e6)


class TcoModel:
    """Computes the value-for-money metric for proposals.

    The *value* of a proposal is the number of reference workloads it can
    execute over its lifetime: per benchmark, the whole machine running
    that workload back-to-back executes ``(system_nodes / job_nodes) /
    time_metric`` instances per second; the weighted harmonic combination
    over the mix gives the blended workload rate (a machine must be good
    at *all* of the mix, not just some of it).
    """

    def __init__(self, mix: WorkloadMix,
                 references: dict[str, ReferenceResult]):
        self.mix = mix
        self.references = references
        for entry in mix.entries:
            if entry.benchmark not in references:
                raise ValueError(
                    f"no reference result for mix entry {entry.benchmark!r}")

    def workload_rate(self, proposal: SystemProposal) -> float:
        """Blended reference-workloads/second of the full system."""
        missing = proposal.missing(self.mix)
        if missing:
            raise ValueError(
                f"proposal {proposal.name!r} lacks commitments for: "
                f"{', '.join(missing)}")
        weights = self.mix.normalised()
        # Time the full system needs to execute one *blended* workload:
        # each benchmark contributes its weight share of machine-seconds.
        seconds_per_blend = 0.0
        for bench, w in weights.items():
            c = proposal.commitments[bench]
            # One instance occupies c.nodes for c.time_metric seconds; the
            # machine runs system_nodes / c.nodes instances concurrently.
            concurrent = proposal.system.nodes / c.nodes
            seconds_per_instance = c.time_metric / concurrent
            seconds_per_blend += w * seconds_per_instance
        return 1.0 / seconds_per_blend

    def workloads_over_lifetime(self, proposal: SystemProposal) -> float:
        """Total blended workloads over the proposal's lifetime."""
        seconds = proposal.lifetime_years * 365.25 * 24 * 3600
        return self.workload_rate(proposal) * seconds * proposal.avg_utilization

    def tco(self, proposal: SystemProposal) -> float:
        """Capex plus projected lifetime energy cost [EUR]."""
        energy = EnergyModel(system=proposal.system)
        opex = energy.lifetime_energy_cost(
            lifetime_years=proposal.lifetime_years,
            avg_utilization=proposal.avg_utilization,
            eur_per_kwh=proposal.eur_per_kwh)
        return proposal.capex_eur + opex

    def assess(self, proposal: SystemProposal) -> TcoAssessment:
        """Full value-for-money assessment of one proposal."""
        return TcoAssessment(
            proposal=proposal.name,
            workloads_over_lifetime=self.workloads_over_lifetime(proposal),
            tco_eur=self.tco(proposal))

    def rank(self, proposals: list[SystemProposal]) -> list[TcoAssessment]:
        """Assess and sort proposals, best value-for-money first."""
        assessments = [self.assess(p) for p in proposals]
        return sorted(assessments, key=lambda a: a.value_for_money,
                      reverse=True)
