"""The suite facade and the Fig.-1 creation pipeline.

:class:`JupiterBenchmarkSuite` is the user-facing entry point: look up
benchmarks, run them on the simulated machine, run the Fig. 2 / Fig. 3
scaling studies, and drive a full procurement evaluation.

:func:`creation_pipeline` mirrors Figure 1's process -- workload
analysis -> application selection -> benchmark preparation ->
optimisation feedback loop -> packaging -- as executable stages, used by
the suite-pipeline bench and the project-management tests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..exec.cache import result_key
from ..exec.engine import ExecutionEngine, WorkItem
from ..telemetry.export import emit_vmpi
from ..telemetry.metrics import default_registry
from ..telemetry.spans import current_tracer
from .benchmark import Benchmark, BenchmarkResult, Category
from .fom import ReferenceResult
from .registry import BENCHMARKS, BenchmarkInfo, get_info
from .scaling import (
    PointMapper,
    StrongScalingResult,
    WeakScalingResult,
    strong_scaling,
    weak_scaling,
)
from .variants import MemoryVariant


def encode_result(result: BenchmarkResult) -> dict[str, Any]:
    """JSON-safe cache representation of a :class:`BenchmarkResult`.

    The SPMD trace is dropped (it is a diagnostic, not a result) and
    non-JSON detail values are stringified; FOM floats round-trip
    exactly through JSON.
    """
    def safe(v: Any) -> Any:
        if isinstance(v, (str, int, float, bool)) or v is None:
            return v
        if isinstance(v, (list, tuple)):
            return [safe(x) for x in v]
        if isinstance(v, dict):
            return {str(k): safe(x) for k, x in v.items()}
        return str(v)

    return {
        "benchmark": result.benchmark,
        "nodes": result.nodes,
        "fom_seconds": result.fom_seconds,
        "variant": result.variant.value if result.variant else None,
        "verified": result.verified,
        "verification": result.verification,
        "details": safe(result.details),
    }


def decode_result(payload: dict[str, Any]) -> BenchmarkResult:
    """Rebuild a :class:`BenchmarkResult` from its cache representation."""
    variant = MemoryVariant(payload["variant"]) if payload["variant"] else None
    return BenchmarkResult(
        benchmark=payload["benchmark"], nodes=payload["nodes"],
        fom_seconds=payload["fom_seconds"], variant=variant,
        verified=payload["verified"], verification=payload["verification"],
        details=dict(payload["details"]))


class JupiterBenchmarkSuite:
    """All runnable benchmarks of the suite, keyed by Table II name.

    Implementations self-register through :meth:`register`; importing
    :mod:`repro.apps` and :mod:`repro.synthetic` populates the default
    instance returned by :func:`load_suite`.
    """

    def __init__(self, engine: ExecutionEngine | None = None) -> None:
        self._factories: dict[str, Callable[[], Benchmark]] = {}
        self._instances: dict[str, Benchmark] = {}
        # Registry and instance cache are shared across engine worker
        # threads; all access goes through this lock.
        self._lock = threading.RLock()
        self.engine = engine

    # The process engine backend pickles bound-method workunits
    # (``fn=suite.run``); locks, live benchmark instances, and the
    # engine (which owns pools and locks of its own) cannot cross the
    # process boundary, so only the factory registry travels and the
    # worker rebuilds the rest lazily.
    def __getstate__(self) -> dict:
        with self._lock:
            return {"_factories": dict(self._factories)}

    def __setstate__(self, state: dict) -> None:
        self._factories = state["_factories"]
        self._instances = {}
        self._lock = threading.RLock()
        self.engine = None

    # -- registry ------------------------------------------------------------

    def register(self, name: str,
                 factory: Callable[[], Benchmark]) -> None:
        """Register a benchmark implementation for a Table II name."""
        get_info(name)  # validates the name
        with self._lock:
            self._factories[name] = factory

    def names(self) -> list[str]:
        """Registered benchmark names in Table II order."""
        ordered = [b.name for b in BENCHMARKS]
        with self._lock:
            return [n for n in ordered if n in self._factories]

    def get(self, name: str) -> Benchmark:
        """The (cached) benchmark implementation for a name.

        Thread-safe: concurrent callers observe exactly one instance
        per name (the factory runs at most once).
        """
        with self._lock:
            if name not in self._factories:
                raise KeyError(
                    f"benchmark {name!r} has no registered implementation; "
                    f"registered: {', '.join(self.names()) or '(none)'}")
            if name not in self._instances:
                self._instances[name] = self._factories[name]()
            return self._instances[name]

    def infos(self, category: Category | None = None) -> list[BenchmarkInfo]:
        """Metadata of registered benchmarks, optionally by category."""
        out = []
        for name in self.names():
            info = get_info(name)
            if category is None or category in info.categories:
                out.append(info)
        return out

    # -- execution --------------------------------------------------------------

    def run(self, name: str, nodes: int | None = None, *,
            variant: MemoryVariant | None = None,
            scale: float = 1.0, real: bool = False) -> BenchmarkResult:
        """Run one benchmark (see :meth:`Benchmark.run`)."""
        return self.get(name).run(nodes, variant=variant, scale=scale,
                                  real=real)

    def run_key(self, name: str, nodes: int | None = None, *,
                variant: MemoryVariant | None = None, scale: float = 1.0,
                real: bool = False, kind: str = "result") -> str:
        """Content address of one execution (see ``repro.exec.cache``)."""
        bench = self.get(name)
        if nodes is None:
            nodes = bench.info.reference_nodes
        params = {"nodes": nodes, "scale": scale, "real": real,
                  "variant": variant.value if variant else None,
                  "kind": kind}
        return result_key(name, params, platform=bench.system().name)

    def run_all(self, names: Sequence[str] | None = None, *,
                nodes: int | None = None,
                variant: MemoryVariant | None = None, scale: float = 1.0,
                real: bool = False) -> list[BenchmarkResult]:
        """Run a set of benchmarks (default: all registered ones).

        With an :attr:`engine`, independent benchmarks fan out in
        parallel and memoise through the engine's content-addressed
        cache; results always come back in the requested order.
        Without one this is a plain sequential loop.

        An engine in graceful-degradation mode (``engine.degrade``,
        the default under fault injection) never aborts the batch: a
        benchmark whose retries are exhausted is recorded as an error
        in the run journal and dropped from the returned results.
        """
        wanted = list(names) if names is not None else self.names()
        tracer = current_tracer()
        with tracer.span("suite.run_all", kind="driver",
                         benchmarks=len(wanted)):
            if self.engine is None:
                results = []
                for name in wanted:
                    with tracer.span(f"run:{name}", kind="benchmark",
                                     benchmark=name):
                        results.append(self.run(name, nodes,
                                                variant=variant,
                                                scale=scale, real=real))
            else:
                items = [WorkItem(fn=self.run, args=(name, nodes),
                                  kwargs={"variant": variant,
                                          "scale": scale, "real": real},
                                  key=self.run_key(name, nodes,
                                                   variant=variant,
                                                   scale=scale, real=real),
                                  label=f"run:{name}",
                                  encode=encode_result,
                                  decode=decode_result)
                         for name in wanted]
                if self.engine.degrade:
                    results = [o.value for o in self.engine.map(items)
                               if o.ok]
                else:
                    results = self.engine.run(items)
            for result in results:
                self._observe(result)
        return results

    def _observe(self, result: BenchmarkResult) -> None:
        """Record one result's telemetry: FOM gauge + vMPI rank traces.

        Cache hits arrive without an SPMD trace (it is dropped from the
        cache representation), so warm reruns never duplicate rank
        timelines.
        """
        default_registry().gauge("benchmark_fom_seconds",
                                 benchmark=result.benchmark,
                                 nodes=result.nodes).set(result.fom_seconds)
        tracer = current_tracer()
        if tracer.enabled and result.spmd is not None:
            emit_vmpi(tracer, result.benchmark, result.nodes, result.spmd)

    def _point_mapper(self, name: str, *, study: str,
                      variant: MemoryVariant | None,
                      scale: float) -> PointMapper | None:
        """A scaling-study mapper fanning node points through the engine.

        In graceful-degradation mode a failed point maps to NaN -- the
        scaling aggregators collect those into their ``failed`` node
        lists (journalled as errors, skipped in figures) instead of
        aborting the sweep.
        """
        if self.engine is None:
            return None

        def mapper(run: Callable[[int], float],
                   counts: Sequence[int]) -> list[float]:
            items = [WorkItem(fn=run, args=(n,),
                              key=self.run_key(name, n, variant=variant,
                                               scale=scale,
                                               kind=f"{study}-fom"),
                              label=f"{study}:{name}@{n}")
                     for n in counts]
            if self.engine.degrade:
                return [o.value if o.ok else float("nan")
                        for o in self.engine.map(items)]
            return self.engine.run(items)

        return mapper

    def reference_run(self, name: str, scale: float = 1.0) -> ReferenceResult:
        """Execute on the reference node count; produce the reference
        time metric proposals must beat (Sec. II-C)."""
        info = get_info(name)
        result = self.run(name, info.reference_nodes, scale=scale)
        return ReferenceResult(benchmark=name, nodes=info.reference_nodes,
                               time_metric=result.fom_seconds)

    def strong_scaling_study(self, name: str, *, scale: float = 1.0,
                             power_of_two: bool = False
                             ) -> StrongScalingResult:
        """The Fig.-2 study for one Base benchmark."""
        info = get_info(name)

        def run(nodes: int) -> float:
            with current_tracer().span(f"point:{name}@{nodes}",
                                       kind="point", study="strong",
                                       benchmark=name, nodes=nodes):
                result = self.run(name, nodes, scale=scale)
            self._observe(result)
            return result.fom_seconds

        with current_tracer().span(f"study:strong:{name}", kind="study",
                                   benchmark=name):
            return strong_scaling(name, run, info.reference_nodes,
                                  power_of_two=power_of_two,
                                  mapper=self._point_mapper(
                                      name, study="strong", variant=None,
                                      scale=scale))

    def weak_scaling_study(self, name: str, node_counts: Iterable[int], *,
                           variant: MemoryVariant | None = None,
                           scale: float = 1.0) -> WeakScalingResult:
        """The Fig.-3 study for one High-Scaling benchmark.

        The benchmark's own workload rule grows the problem with the
        node count (each implementation sizes per-device work from the
        memory variant).
        """

        def run(nodes: int) -> float:
            with current_tracer().span(f"point:{name}@{nodes}",
                                       kind="point", study="weak",
                                       benchmark=name, nodes=nodes):
                result = self.run(name, nodes, variant=variant,
                                  scale=scale)
            self._observe(result)
            return result.fom_seconds

        with current_tracer().span(f"study:weak:{name}", kind="study",
                                   benchmark=name):
            return weak_scaling(name, run, node_counts,
                                mapper=self._point_mapper(
                                    name, study="weak", variant=variant,
                                    scale=scale))


_DEFAULT: JupiterBenchmarkSuite | None = None
_DEFAULT_LOCK = threading.Lock()


def load_suite() -> JupiterBenchmarkSuite:
    """The fully populated default suite (imports all implementations).

    Thread-safe: concurrent first calls populate exactly one instance,
    and callers never observe a partially registered suite.
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            suite = JupiterBenchmarkSuite()
            from .. import apps, synthetic  # noqa: F401  (self-registration)
            apps.register_all(suite)
            synthetic.register_all(suite)
            _DEFAULT = suite
    return _DEFAULT


# ---------------------------------------------------------------------------
# Fig. 1: the suite-creation pipeline
# ---------------------------------------------------------------------------

@dataclass
class PipelineState:
    """Evolving state of the suite-creation process."""

    workload_analysis: dict[str, float] = field(default_factory=dict)
    selected: list[str] = field(default_factory=list)
    prepared: dict[str, dict] = field(default_factory=dict)
    optimisation_rounds: int = 0
    packaged: list[str] = field(default_factory=list)
    log: list[str] = field(default_factory=list)


#: The 11-point readiness checklist tracked per application (Sec. III-E).
CHECKLIST = (
    "source code availability",
    "licence clarified",
    "test case defined",
    "input data prepared",
    "JUBE integration",
    "verification implemented",
    "reference execution",
    "scaling study",
    "rules documented",
    "description created",
    "repository packaged",
)


def analyse_workloads(allocations: dict[str, float]) -> dict[str, float]:
    """Stage 1: normalise compute-time allocations by domain."""
    total = sum(allocations.values())
    if total <= 0:
        raise ValueError("no allocation data")
    return {k: v / total for k, v in sorted(allocations.items())}


def select_applications(shares: dict[str, float],
                        candidates: dict[str, str],
                        min_share: float = 0.02) -> list[str]:
    """Stage 2: keep candidates whose domain carries enough allocation."""
    return [app for app, domain in candidates.items()
            if shares.get(domain, 0.0) >= min_share]


def prepare_benchmark(name: str,
                      completed: Iterable[str] = CHECKLIST) -> dict:
    """Stage 3: the per-application checklist record."""
    done = set(completed)
    unknown = done - set(CHECKLIST)
    if unknown:
        raise ValueError(f"unknown checklist items: {sorted(unknown)}")
    return {item: (item in done) for item in CHECKLIST}


def creation_pipeline(allocations: dict[str, float],
                      candidates: dict[str, str],
                      optimisation_rounds: int = 2) -> PipelineState:
    """Run the full Fig.-1 pipeline and return the final state."""
    state = PipelineState()
    state.workload_analysis = analyse_workloads(allocations)
    state.log.append("analysed workload allocations")
    state.selected = select_applications(state.workload_analysis, candidates)
    state.log.append(f"selected {len(state.selected)} applications")
    for app in state.selected:
        state.prepared[app] = prepare_benchmark(app)
    state.log.append("prepared benchmarks (checklists complete)")
    for _ in range(optimisation_rounds):
        state.optimisation_rounds += 1
        state.log.append("optimisation feedback round")
    ready = [app for app, checklist in state.prepared.items()
             if all(checklist.values())]
    state.packaged = sorted(ready)
    state.log.append(f"packaged {len(state.packaged)} benchmarks")
    return state
