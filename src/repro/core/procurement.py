"""Procurement evaluation: rule validation and proposal scoring.

Combines the pieces of Sec. II into the end-to-end procedure: proposals
commit time metrics for the Base mix and runtimes for the High-Scaling
cases; commitments are validated against the benchmark rules (Sec. V-B:
"Thorough execution rules and modification guidelines determine the
envisioned outcome"); the TCO value-for-money metric and the
High-Scaling ratios are then "compared and incorporated with other
aspects into the final assessment".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .fom import ReferenceResult
from .highscaling import HighScalingAssessment, HighScalingCase
from .tco import SystemProposal, TcoModel, WorkloadMix
from .variants import MemoryVariant


@dataclass(frozen=True)
class RuleViolation:
    """One broken benchmark rule in a proposal."""

    benchmark: str
    rule: str


@dataclass
class HighScalingCommitment:
    """A vendor's High-Scaling commitment for one benchmark."""

    benchmark: str
    variant: MemoryVariant
    runtime: float

    def __post_init__(self) -> None:
        if self.runtime <= 0:
            raise ValueError("committed runtime must be positive")


@dataclass
class ProcurementScore:
    """The final per-proposal evaluation."""

    proposal: str
    value_for_money: float
    highscaling: list[HighScalingAssessment] = field(default_factory=list)
    violations: list[RuleViolation] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        return not self.violations

    @property
    def mean_highscaling_ratio(self) -> float:
        """Geometric mean of High-Scaling ratios (lower is better)."""
        if not self.highscaling:
            return float("nan")
        prod = 1.0
        for a in self.highscaling:
            prod *= a.ratio
        return prod ** (1.0 / len(self.highscaling))

    def combined_score(self, highscaling_weight: float = 0.3) -> float:
        """Single scalar: value-for-money boosted by High-Scaling speedup.

        The paper keeps the exact weighting confidential; we expose the
        weight as a parameter and default to emphasising the Base mix.
        """
        if not 0.0 <= highscaling_weight < 1.0:
            raise ValueError("weight must be in [0, 1)")
        hs_factor = 1.0
        if self.highscaling:
            hs_factor = (1.0 / self.mean_highscaling_ratio) ** (
                highscaling_weight / (1.0 - highscaling_weight))
        return self.value_for_money * hs_factor


class ProcurementEvaluation:
    """End-to-end evaluation of competing system proposals."""

    def __init__(self, mix: WorkloadMix,
                 references: dict[str, ReferenceResult],
                 highscaling_cases: dict[str, HighScalingCase],
                 highscaling_references: dict[str, float]):
        self.tco = TcoModel(mix=mix, references=references)
        self.mix = mix
        self.references = references
        self.cases = highscaling_cases
        self.hs_references = highscaling_references
        for name in highscaling_cases:
            if name not in highscaling_references:
                raise ValueError(
                    f"no High-Scaling reference runtime for {name!r}")

    # -- rule validation --------------------------------------------------------

    def validate(self, proposal: SystemProposal,
                 hs_commitments: dict[str, HighScalingCommitment]
                 ) -> list[RuleViolation]:
        """Check a proposal against the suite's execution rules."""
        violations: list[RuleViolation] = []
        for bench in proposal.missing(self.mix):
            violations.append(RuleViolation(
                benchmark=bench, rule="missing Base commitment"))
        for bench, c in proposal.commitments.items():
            if c.nodes > proposal.system.nodes:
                violations.append(RuleViolation(
                    benchmark=bench,
                    rule=f"commitment uses {c.nodes} nodes, system has "
                         f"{proposal.system.nodes}"))
        for name, case in self.cases.items():
            hc = hs_commitments.get(name)
            if hc is None:
                violations.append(RuleViolation(
                    benchmark=name, rule="missing High-Scaling commitment"))
                continue
            if hc.variant not in case.variants:
                violations.append(RuleViolation(
                    benchmark=name,
                    rule=f"variant {hc.variant.value} not offered "
                         f"(allowed: {[v.value for v in case.variants]})"))
                continue
            if not case.sizing.fits(hc.variant, proposal.system.node.device):
                violations.append(RuleViolation(
                    benchmark=name,
                    rule=f"variant {hc.variant.value} does not fit "
                         f"{proposal.system.node.device.name}"))
        return violations

    # -- scoring ----------------------------------------------------------------

    def score(self, proposal: SystemProposal,
              hs_commitments: dict[str, HighScalingCommitment]
              ) -> ProcurementScore:
        """Validate and score one proposal."""
        violations = self.validate(proposal, hs_commitments)
        assessments: list[HighScalingAssessment] = []
        if not violations:
            vfm = self.tco.assess(proposal).value_for_money
            for name, case in self.cases.items():
                hc = hs_commitments[name]
                assessments.append(case.assess(
                    hc.variant, self.hs_references[name], hc.runtime))
        else:
            vfm = 0.0
        return ProcurementScore(proposal=proposal.name,
                                value_for_money=vfm,
                                highscaling=assessments,
                                violations=violations)

    def select(self, candidates: list[tuple[SystemProposal,
                                            dict[str, HighScalingCommitment]]],
               highscaling_weight: float = 0.3) -> list[ProcurementScore]:
        """Score all candidates; valid ones first, best combined score
        first within each group."""
        scores = [self.score(p, hs) for p, hs in candidates]
        return sorted(scores,
                      key=lambda s: (not s.valid,
                                     -s.combined_score(highscaling_weight)
                                     if s.valid else 0.0))
