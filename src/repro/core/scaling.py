"""Scaling studies: the machinery behind Figures 2 and 3.

Figure 2 plots every Base application's *strong scaling* -- relative
runtime at roughly 0.5/0.75/1/1.5/2 x the reference node count, with the
reference execution pinned at (1, 1).  Figure 3 plots the five
High-Scaling applications' *weak scaling efficiency* over a wide node
range.  This module runs those sweeps against any callable benchmark and
computes the derived quantities (speedup, parallel efficiency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

#: The standard Fig. 2 multipliers around the reference node count.
FIG2_FACTORS: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 2.0)

#: Maps ``run`` over node counts; overridable to fan points out in
#: parallel (``repro.exec``).  Must return runtimes in node-count order.
PointMapper = Callable[[Callable[[int], float], Sequence[int]], "list[float]"]


def _sequential_map(run: Callable[[int], float],
                    counts: Sequence[int]) -> list[float]:
    return [run(n) for n in counts]


@dataclass(frozen=True)
class ScalingPoint:
    """One (nodes, runtime) sample of a scaling study."""

    nodes: int
    runtime: float

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.runtime <= 0:
            raise ValueError("invalid scaling point")


@dataclass
class StrongScalingResult:
    """A strong-scaling curve with its reference execution."""

    benchmark: str
    reference: ScalingPoint
    points: list[ScalingPoint] = field(default_factory=list)
    #: node counts whose point failed under graceful degradation (the
    #: run journal holds the error; figures skip them)
    failed: list[int] = field(default_factory=list)

    def relative(self) -> list[tuple[float, float]]:
        """Fig. 2 coordinates: (nodes/ref_nodes, runtime/ref_runtime)."""
        return [(p.nodes / self.reference.nodes,
                 p.runtime / self.reference.runtime) for p in self.points]

    def speedup(self, point: ScalingPoint) -> float:
        """Speedup over the reference execution."""
        return self.reference.runtime / point.runtime

    def efficiency(self, point: ScalingPoint) -> float:
        """Strong-scaling parallel efficiency vs the reference."""
        return self.speedup(point) * self.reference.nodes / point.nodes

    def monotone_decreasing(self) -> bool:
        """Whether more nodes never made the run slower."""
        pts = sorted(self.points, key=lambda p: p.nodes)
        return all(a.runtime >= b.runtime * 0.999
                   for a, b in zip(pts, pts[1:]))


@dataclass
class WeakScalingResult:
    """A weak-scaling curve (problem grows with nodes)."""

    benchmark: str
    points: list[ScalingPoint] = field(default_factory=list)
    #: node counts whose point failed under graceful degradation
    failed: list[int] = field(default_factory=list)

    def efficiency(self) -> list[tuple[int, float]]:
        """Fig. 3 series: (nodes, t_base / t_n); 1.0 is perfect."""
        if not self.points:
            return []
        pts = sorted(self.points, key=lambda p: p.nodes)
        base = pts[0].runtime
        return [(p.nodes, base / p.runtime) for p in pts]

    def efficiency_at(self, nodes: int) -> float:
        """Weak-scaling efficiency at a specific node count."""
        for n, eff in self.efficiency():
            if n == nodes:
                return eff
        raise KeyError(f"no weak-scaling point at {nodes} nodes")


def scaled_node_counts(reference: int,
                       factors: Sequence[float] = FIG2_FACTORS,
                       minimum: int = 1,
                       power_of_two: bool = False) -> list[int]:
    """Node counts surrounding a reference (Fig. 2's sweep).

    ``power_of_two`` applies the footnote rule: benchmarks with
    powers-of-two constraints take the closest smaller compatible count.
    """
    counts = []
    for f in factors:
        n = max(minimum, round(reference * f))
        if power_of_two:
            n = 1 << max(0, n.bit_length() - 1)
        if n not in counts:
            counts.append(n)
    return counts


def strong_scaling(benchmark: str,
                   run: Callable[[int], float],
                   reference_nodes: int,
                   factors: Sequence[float] = FIG2_FACTORS,
                   power_of_two: bool = False,
                   mapper: PointMapper | None = None) -> StrongScalingResult:
    """Run a strong-scaling study: same workload, varying node counts.

    ``run(nodes)`` must return the runtime (time-metric seconds), or
    NaN for a point that failed under graceful degradation -- such
    points land in :attr:`StrongScalingResult.failed` instead of the
    curve.  A failed *reference* point is unrecoverable (everything is
    normalised to it) and raises :class:`ValueError`.
    ``mapper`` (optional) evaluates the node sweep, e.g. in parallel;
    results are assembled in node-count order either way.
    """
    counts = scaled_node_counts(reference_nodes, factors,
                                power_of_two=power_of_two)
    if reference_nodes not in counts:
        counts.append(reference_nodes)
    ordered = sorted(counts)
    runtimes = (mapper or _sequential_map)(run, ordered)
    failed = [n for n, t in zip(ordered, runtimes) if math.isnan(t)]
    if reference_nodes in failed:
        raise ValueError(
            f"strong-scaling reference point of {benchmark!r} at "
            f"{reference_nodes} nodes failed; the study cannot be "
            f"normalised (see the run journal for the error)")
    points = [ScalingPoint(nodes=n, runtime=t)
              for n, t in zip(ordered, runtimes) if not math.isnan(t)]
    ref = next(p for p in points if p.nodes == reference_nodes)
    return StrongScalingResult(benchmark=benchmark, reference=ref,
                               points=points, failed=failed)


def weak_scaling(benchmark: str,
                 run: Callable[[int], float],
                 node_counts: Iterable[int],
                 mapper: PointMapper | None = None) -> WeakScalingResult:
    """Run a weak-scaling study: workload grows with the node count.

    ``run(nodes)`` must return the runtime for the *proportionally
    enlarged* problem (NaN marks a failed point under graceful
    degradation; it lands in :attr:`WeakScalingResult.failed` and the
    efficiency baseline becomes the smallest *surviving* count); the
    callable owns the problem-size rule.  ``mapper`` fans the sweep
    out like in :func:`strong_scaling`.
    """
    ordered = sorted(set(node_counts))
    runtimes = (mapper or _sequential_map)(run, ordered)
    failed = [n for n, t in zip(ordered, runtimes) if math.isnan(t)]
    points = [ScalingPoint(nodes=n, runtime=t)
              for n, t in zip(ordered, runtimes) if not math.isnan(t)]
    return WeakScalingResult(benchmark=benchmark, points=points,
                             failed=failed)
