"""Standardised benchmark descriptions (Sec. III-C).

"Each benchmark is accompanied by an extensive description.  All
descriptions are normalized, using identical structure with similar
language.  Example parts are information about the source and the
compilation, execution parameters and rules, detailed instructions for
execution and verification, sample results, and concluding commitment
requests."

:func:`describe` generates that document for any suite benchmark from
the registry metadata, the FOM declaration and (optionally) a sample
execution -- every section present for every benchmark, in the same
order, which is exactly the normalisation the paper describes.
"""

from __future__ import annotations

from .benchmark import BenchmarkResult, Category
from .fom import FomKind
from .registry import get_info
from .suite import JupiterBenchmarkSuite
from .variants import variant_labels

#: the fixed section order of every description
SECTIONS = (
    "Source",
    "Compilation",
    "Execution",
    "Rules",
    "Verification",
    "Sample Results",
    "Commitment",
)


def describe(suite: JupiterBenchmarkSuite, name: str,
             sample: BenchmarkResult | None = None) -> str:
    """The normalised description document of one benchmark."""
    info = get_info(name)
    bench = suite.get(name)
    lines: list[str] = []

    def header(title: str) -> None:
        lines.append("")
        lines.append(f"## {title}")

    lines.append(f"# JUPITER Benchmark Suite: {info.name}")
    lines.append("")
    lines.append(f"Domain: {info.domain}.  Categories: "
                 + ", ".join(c.value for c in info.categories)
                 + ("." if info.used_in_procurement else
                    ".  Prepared for the procurement, not used."))

    header("Source")
    lines.append(f"Languages: {', '.join(info.languages)}.  "
                 f"Programming models: {', '.join(info.prog_models)}.")
    if info.libraries:
        lines.append(f"Required libraries: {', '.join(info.libraries)}.")
    lines.append(f"Licence: {info.license}.")

    header("Compilation")
    lines.append("Reproduction note: the reference implementation is the "
                 f"Python module `repro` (class {type(bench).__name__}); "
                 "no compilation is required.  The production code builds "
                 "through EasyBuild on the preparation system.")

    header("Execution")
    if info.base_nodes:
        lines.append(f"Reference (Base) node count: "
                     f"{'/'.join(str(n) for n in info.base_nodes)}.")
    if Category.HIGH_SCALING in info.categories:
        lines.append(f"High-Scaling: {info.highscale_nodes} preparation "
                     f"nodes; memory variants "
                     f"{variant_labels(info.variants)} sized to "
                     "25/50/75/100 % of the reference GPU memory.")
    targets = ", ".join(t.value for t in info.targets)
    lines.append(f"Execution targets: {targets}.")
    lines.append(f"Run with: `jubench run {info.name!r} "
                 "[--nodes N] [--variant V]`.")

    header("Rules")
    lines.append("The number of nodes is a free parameter unless stated; "
                 "all workload parameters are fixed.")
    if info.name in ("Chroma-QCD", "JUQCS", "DynQCD"):
        lines.append("Node counts must be powers of two (the closest "
                     "smaller compatible count is used otherwise).")
    if info.name == "PIConGPU":
        lines.append("At most 640 nodes admit a valid 3D decomposition "
                     "of the benchmark grids.")
    if info.name == "Chroma-QCD":
        lines.append("The FOM excludes the first HMC update (solver "
                     "tuning); at least two updates must be run.  "
                     "Iterative solves stop at a fixed iteration count, "
                     "never on convergence.")

    header("Verification")
    lines.append("Run `--real` mode; the implementation applies its "
                 "verification class automatically:")
    verification_class = {
        "JUQCS": "exact (bit-for-bit against the serial state vector)",
        "Chroma-QCD": "tolerance (plaquette vs reference, 1e-10 Base / "
                      "1e-8 High-Scaling)",
        "DynQCD": "tolerance (propagator residuals)",
        "ICON": "model-based (conservation invariants, geostrophic "
                "balance)",
        "nekRS": "model-based (spectral Poisson error, conduction "
                 "Nusselt number)",
        "GROMACS": "model-based (energy drift band, momentum)",
        "Amber": "model-based (energy drift band, momentum)",
        "PIConGPU": "framework-inherent (charge conservation, bounded "
                    "energy)",
        "Megatron-LM": "framework-inherent (training loss decrease)",
        "MMoCLIP": "framework-inherent (contrastive loss below the "
                   "random baseline)",
        "ResNet": "framework-inherent (training loss decrease)",
    }.get(info.name, "benchmark-specific checks (see the test suite)")
    lines.append(f"Class: {verification_class}.")

    header("Sample Results")
    if sample is not None:
        lines.append(f"Nodes: {sample.nodes}.  FOM (time metric): "
                     f"{sample.fom_seconds:.3f} s.")
        if sample.variant is not None:
            lines.append(f"Memory variant: {sample.variant.value}.")
    else:
        lines.append("(run the benchmark to attach a sample result)")

    header("Commitment")
    fom = bench.fom
    if fom.kind is FomKind.RUNTIME:
        metric = "the runtime in seconds"
    elif fom.kind is FomKind.RATE:
        metric = (f"the time metric obtained by dividing the fixed work "
                  f"({fom.work:g} units) by the committed rate")
    else:
        metric = (f"the time metric obtained from the committed bandwidth "
                  f"over {fom.work:g} bytes")
    lines.append(f"Bidders commit {metric} ('{fom.name}'); smaller is "
                 "better.  The committed value enters the "
                 "value-for-money calculation with the workload weight "
                 "assigned to this benchmark.")
    return "\n".join(lines)


def describe_all(suite: JupiterBenchmarkSuite) -> dict[str, str]:
    """Descriptions of every registered benchmark."""
    return {name: describe(suite, name) for name in suite.names()}
