"""Result verification framework (Sec. V-A).

The paper classifies verification experience into four strengths:

1. **exact** -- theoretically known results (JUQCS);
2. **tolerance** -- numeric comparison against a pre-computed reference
   (Chroma: 1e-10 for Base, 1e-8 for High-Scaling);
3. **model-based** -- key metrics extracted from the solution are
   compared against a model (ICON, nekRS);
4. **framework-inherent** -- the application's own invariants / output
   keys must be present and sane (PIConGPU, Megatron-LM) -- "arguably
   the weakest form of verification".

Each verifier returns a :class:`VerificationResult` so the suite can
report not just pass/fail but also the method's strength.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np


class VerificationMethod(enum.Enum):
    """Strength-ordered verification classes (strongest first)."""

    EXACT = "exact"
    TOLERANCE = "tolerance"
    MODEL_BASED = "model-based"
    FRAMEWORK = "framework-inherent"

    @property
    def strength(self) -> int:
        """Rank for comparisons: lower is stronger."""
        order = [VerificationMethod.EXACT, VerificationMethod.TOLERANCE,
                 VerificationMethod.MODEL_BASED, VerificationMethod.FRAMEWORK]
        return order.index(self)


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of a verification check."""

    ok: bool
    method: VerificationMethod
    detail: str = ""

    def __bool__(self) -> bool:
        return self.ok


@dataclass(frozen=True)
class ExactVerifier:
    """Bit-for-bit (or allclose-at-machine-eps) comparison against the
    theoretically known result."""

    expected: Any
    atol: float = 0.0

    def __call__(self, value: Any) -> VerificationResult:
        expected = np.asarray(self.expected)
        got = np.asarray(value)
        if expected.shape != got.shape:
            return VerificationResult(
                False, VerificationMethod.EXACT,
                f"shape mismatch: {got.shape} != {expected.shape}")
        if self.atol == 0.0:
            ok = bool(np.array_equal(expected, got))
        else:
            ok = bool(np.allclose(expected, got, rtol=0.0, atol=self.atol))
        detail = "exact match" if ok else "mismatch vs theoretical result"
        return VerificationResult(ok, VerificationMethod.EXACT, detail)


@dataclass(frozen=True)
class ToleranceVerifier:
    """Comparison against a pre-computed reference within a tolerance.

    Chroma uses 1e-10 (Base) / 1e-8 (High-Scaling); the tolerance is a
    parameter precisely because it is part of the benchmark rules.
    """

    reference: Any
    rtol: float

    def __post_init__(self) -> None:
        if self.rtol <= 0:
            raise ValueError("tolerance must be positive")

    def __call__(self, value: Any) -> VerificationResult:
        ref = np.asarray(self.reference, dtype=float)
        got = np.asarray(value, dtype=float)
        if ref.shape != got.shape:
            return VerificationResult(
                False, VerificationMethod.TOLERANCE,
                f"shape mismatch: {got.shape} != {ref.shape}")
        scale = np.maximum(np.abs(ref), 1e-300)
        err = float(np.max(np.abs(got - ref) / scale))
        ok = err <= self.rtol
        return VerificationResult(
            ok, VerificationMethod.TOLERANCE,
            f"max relative error {err:.3e} vs tolerance {self.rtol:.0e}")


@dataclass(frozen=True)
class ModelVerifier:
    """Key metrics extracted from the solution checked against a model.

    ``checks`` maps metric names to ``(extract, low, high)`` where
    ``extract`` pulls the metric from the result object and the bounds
    come from the physical/numerical model (e.g. ICON conservation, the
    Nusselt-number band for nekRS' Rayleigh-Benard case).
    """

    checks: Mapping[str, tuple[Callable[[Any], float], float, float]]

    def __call__(self, value: Any) -> VerificationResult:
        failures = []
        for name, (extract, low, high) in self.checks.items():
            metric = float(extract(value))
            if not low <= metric <= high:
                failures.append(f"{name}={metric:.6g} outside [{low:g}, {high:g}]")
        ok = not failures
        detail = "all model metrics in band" if ok else "; ".join(failures)
        return VerificationResult(ok, VerificationMethod.MODEL_BASED, detail)


@dataclass(frozen=True)
class FrameworkVerifier:
    """Framework-inherent verification: required keys present, optional
    monotone-decrease check on a series (training loss)."""

    required_keys: tuple[str, ...] = ()
    decreasing_series: str | None = None
    #: allow this relative amount of non-monotonicity (stochastic loss)
    slack: float = 0.05

    def __call__(self, outputs: Mapping[str, Any]) -> VerificationResult:
        missing = [k for k in self.required_keys if k not in outputs]
        if missing:
            return VerificationResult(
                False, VerificationMethod.FRAMEWORK,
                f"missing output keys: {', '.join(missing)}")
        if self.decreasing_series is not None:
            series = np.asarray(outputs[self.decreasing_series], dtype=float)
            if series.size < 2:
                return VerificationResult(
                    False, VerificationMethod.FRAMEWORK,
                    f"series {self.decreasing_series!r} too short")
            head = max(1, series.size // 4)
            start = float(np.mean(series[:head]))
            end = float(np.mean(series[-head:]))
            # Stochastic training curves wobble; require the tail mean to
            # sit clearly below the head mean.
            if end > start * (1.0 - self.slack):
                return VerificationResult(
                    False, VerificationMethod.FRAMEWORK,
                    f"{self.decreasing_series} did not decrease "
                    f"({start:.4g} -> {end:.4g})")
        return VerificationResult(True, VerificationMethod.FRAMEWORK,
                                  "framework outputs present and sane")
