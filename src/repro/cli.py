"""Command-line interface: ``jubench`` / ``python -m repro``.

Sub-commands::

    jubench list                       # suite overview (Table II style)
    jubench table1 | table2            # reproduce the paper's tables
    jubench run NAME [--nodes N] [--variant V] [--real] [--scale S]
    jubench suite [--benchmarks A,B]   # run the whole registered suite
    jubench fig2 [--apps A,B,...]      # Base strong-scaling study
    jubench fig3 [--nodes 8,16,...]    # High-Scaling weak-scaling study
    jubench report TRACE.jsonl         # re-render a saved trace offline
    jubench history DB.jsonl           # inspect the performance history
    jubench regress DB.jsonl           # statistical regression detection
    jubench check [--format sarif]     # static analysis + sanitizers
    jubench chaos [--seed N]           # deterministic fault-injection smoke
    jubench procurement                # demo TCO evaluation of proposals
    jubench submit --spool DIR         # pack task envelopes for a service
    jubench serve --spool DIR          # drain a spool through endpoints

Execution commands accept engine options: ``--vmpi-mode event|step``
picks the virtual-MPI engine core (the discrete-event core is the
default; the step scheduler is the byte-identical reference),
``--workers N`` fans
independent workunits out in parallel, ``--cache-dir DIR`` memoises
results on disk across invocations (``--no-cache`` disables caching),
and ``--journal [PATH]`` prints the structured run journal afterwards
(or, with a path, saves it as telemetry JSONL).  Observability:
``--trace-out FILE.jsonl`` streams the span/event trace to disk,
``--trace-out FILE.json`` writes a Chrome ``trace_event`` file for
Perfetto, and ``--metrics`` prints the metrics-registry report.
Fault injection: ``--faults PLAN.json`` (or ``--fault-seed N`` to
generate a plan) runs the command under ``repro.faults`` with retries,
seeded backoff and a circuit breaker; ``jubench chaos`` is the
dedicated deterministic smoke.

Performance history: ``--history DB.jsonl`` appends provenance-stamped
run records (code fingerprint, machine-config hash, FOMs, journal
digest) to an append-only database; ``jubench history`` renders and
compacts it, ``jubench regress`` runs the deterministic change-point /
regression detector over the accumulated trajectories, and ``jubench
report`` gains a FOM-trajectory section when pointed at a history DB.
"""

from __future__ import annotations

import argparse
import os
import sys

from .core import (
    MemoryVariant,
    ReferenceResult,
    SystemProposal,
    TcoModel,
    WorkloadMix,
    get_info,
    load_suite,
)
from .exec import DiskCache, ExecutionEngine, MemoryCache
from .telemetry import (
    JsonlSink,
    MetricsRegistry,
    Tracer,
    current_tracer,
    install_tracer,
    set_default_registry,
    write_chrome_trace,
)
from .units import fmt_seconds


def _workers(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """The shared execution-engine options of run-style commands."""
    group = parser.add_argument_group("execution engine")
    group.add_argument("--vmpi-mode", choices=["event", "step"], default=None,
                       help="virtual-MPI engine core: the discrete-event "
                            "core (default) or the reference step "
                            "scheduler; results are byte-identical")
    group.add_argument("--workers", type=_workers, default=1,
                       help="parallel workers for independent workunits")
    group.add_argument("--backend", choices=["serial", "thread", "process"],
                       default="thread", help="pool backend (default thread)")
    group.add_argument("--cache-dir", default=None,
                       help="persist the result cache as JSON in this "
                            "directory (reused across invocations)")
    group.add_argument("--no-cache", action="store_true",
                       help="disable result memoisation")
    group.add_argument("--retries", type=int, default=None, metavar="N",
                       help="retry budget per task (default 0; under a "
                            "fault plan, the plan's worst-case failure "
                            "count)")
    group.add_argument("--journal", nargs="?", const="-", default=None,
                       metavar="PATH",
                       help="print the per-task run journal at the end; "
                            "with PATH, save it as telemetry JSONL instead")
    flt = parser.add_argument_group("fault injection")
    flt.add_argument("--faults", default=None, metavar="PLAN.json",
                     help="inject faults from a declarative FaultPlan "
                          "file (see repro.faults)")
    flt.add_argument("--fault-seed", type=int, default=None, metavar="N",
                     help="generate a reproducible fault plan from this "
                          "seed instead of a plan file")
    obs = parser.add_argument_group("observability")
    obs.add_argument("--trace-out", default=None, metavar="FILE",
                     help="write the telemetry trace: *.jsonl streams "
                          "events as they happen, *.json is a Chrome "
                          "trace_event file (Perfetto)")
    obs.add_argument("--metrics", action="store_true",
                     help="print the metrics-registry report at the end")
    obs.add_argument("--history", default=None, metavar="DB.jsonl",
                     help="append provenance-stamped run records to this "
                          "performance-history database (inspect with "
                          "'jubench history', analyse with "
                          "'jubench regress')")


def _fault_plan(args: argparse.Namespace):
    """The fault plan an invocation asked for (file, seed, or None)."""
    from .faults import FaultPlan

    path = getattr(args, "faults", None)
    seed = getattr(args, "fault_seed", None)
    if path:
        return FaultPlan.load(path)
    if seed is not None:
        return FaultPlan.generate(seed, nodes=32)
    return None


def _make_engine(args: argparse.Namespace) -> ExecutionEngine | None:
    """Build the execution engine an exec-style command asked for."""
    if not hasattr(args, "workers"):
        return None
    cache = None
    if not args.no_cache:
        cache = DiskCache(args.cache_dir) if args.cache_dir \
            else MemoryCache()
    plan = _fault_plan(args)
    faults = backoff = breaker = None
    retries = getattr(args, "retries", None)
    if plan is not None:
        from .exec import BackoffPolicy, CircuitBreaker
        from .faults import FaultInjector

        faults = FaultInjector(plan)
        backoff = BackoffPolicy(seed=plan.seed)
        breaker = CircuitBreaker()
        if retries is None:
            # survivable by default: the plan's worst case fits the budget
            retries = plan.max_task_failures()
    # Under --trace-out/--metrics a tracer is installed globally before
    # dispatch; sharing it puts engine task spans, suite driver spans
    # and vmpi events on one timeline.
    ambient = current_tracer()
    return ExecutionEngine(workers=args.workers, backend=args.backend,
                           cache=cache, retries=retries or 0,
                           tracer=ambient if ambient.enabled else None,
                           faults=faults, backoff=backoff, breaker=breaker)


def _history_store(args: argparse.Namespace):
    """The history DB an invocation appends to (or ``None``)."""
    path = getattr(args, "history", None)
    if not path:
        return None
    from .history import HistoryStore

    return HistoryStore.open(path)


def _history_append(store, suite, benchmark: str,
                    fom_seconds: float | None, params: dict,
                    foms: dict | None = None) -> None:
    """Append one provenance-stamped run record to the history DB."""
    from .cluster.hardware import juwels_booster
    from .history import record

    store.append(record(benchmark, fom_seconds, params=params,
                        foms=foms, system=juwels_booster(),
                        tracer=current_tracer(), engine=suite.engine))


def _history_note(store) -> None:
    print(f"history: {len(store)} record(s) in {store.path}")


def _configured_suite(args: argparse.Namespace):
    """The default suite wired to this invocation's engine (if any)."""
    mode = getattr(args, "vmpi_mode", None)
    if mode:
        # the env var is how the choice reaches Engine construction deep
        # inside benchmark programs (and any process-pool workers)
        os.environ["REPRO_VMPI_MODE"] = mode
    suite = load_suite()
    suite.engine = _make_engine(args)
    return suite


def _cmd_list(_args: argparse.Namespace) -> int:
    suite = load_suite()
    print(f"JUPITER Benchmark Suite -- {len(suite.names())} benchmarks")
    for name in suite.names():
        info = get_info(name)
        cats = "/".join(c.value for c in info.categories)
        star = "" if info.used_in_procurement else "  (prepared, not used)"
        print(f"  {name:<18} {info.domain:<22} [{cats}]{star}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from .analysis import render_table1, render_table2

    print(render_table1() if args.which == "table1" else render_table2())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    suite = _configured_suite(args)
    variant = MemoryVariant.from_label(args.variant) if args.variant else None
    result = suite.run(args.benchmark, args.nodes, variant=variant,
                       real=args.real, scale=args.scale)
    print(f"benchmark : {result.benchmark}")
    print(f"nodes     : {result.nodes}")
    if result.variant is not None:
        print(f"variant   : {result.variant.value}")
    print(f"FOM       : {fmt_seconds(result.fom_seconds)} "
          f"({result.fom_seconds:.3f} s time metric)")
    if result.verified is not None:
        status = "PASSED" if result.verified else "FAILED"
        print(f"verified  : {status} -- {result.verification}")
    for key, value in sorted(result.details.items()):
        if isinstance(value, float):
            print(f"  {key}: {value:.6g}")
        elif isinstance(value, (int, str, bool, tuple)):
            print(f"  {key}: {value}")
    store = _history_store(args)
    if store is not None:
        _history_append(store, suite, result.benchmark, result.fom_seconds,
                        params={"study": "run", "nodes": result.nodes,
                                "variant": args.variant,
                                "real": bool(args.real),
                                "scale": args.scale})
        _history_note(store)
    return 0 if result.verified in (True, None) else 1


def _cmd_suite(args: argparse.Namespace) -> int:
    suite = _configured_suite(args)
    names = suite.names()
    if args.benchmarks:
        wanted = {b.strip() for b in args.benchmarks.split(",")}
        unknown = sorted(wanted - set(names))
        if unknown:
            raise SystemExit(
                f"jubench suite: unknown benchmark(s): "
                f"{', '.join(unknown)}; see 'jubench list'")
        names = [n for n in names if n in wanted]
    results = suite.run_all(names, scale=args.scale)
    print(f"suite run -- {len(results)} benchmarks "
          f"(workers={args.workers})")
    for res in results:
        print(f"  {res.benchmark:<18} {res.nodes:>4} nodes  "
              f"{fmt_seconds(res.fom_seconds)} "
              f"({res.fom_seconds:.3f} s time metric)")
    store = _history_store(args)
    if store is not None:
        for res in results:
            _history_append(store, suite, res.benchmark, res.fom_seconds,
                            params={"study": "suite", "nodes": res.nodes,
                                    "scale": args.scale})
        _history_note(store)
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    from .analysis import FIG2_APPS, figure2

    suite = _configured_suite(args)
    apps = FIG2_APPS
    if args.apps:
        wanted = {a.strip() for a in args.apps.split(",")}
        apps = tuple(a for a in FIG2_APPS if a[0] in wanted)
    data = figure2(suite, apps)
    print(data.render())
    store = _history_store(args)
    if store is not None:
        for name, curve in data.curves.items():
            _history_append(
                store, suite, name, curve.reference.runtime,
                params={"study": "fig2",
                        "ref_nodes": curve.reference.nodes},
                foms={f"runtime_n{p.nodes}": p.runtime
                      for p in curve.points})
        _history_note(store)
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from .analysis import figure3

    suite = _configured_suite(args)
    nodes = tuple(int(n) for n in args.nodes.split(","))
    data = figure3(suite, nodes)
    print(data.render())
    store = _history_store(args)
    if store is not None:
        for name, curve in data.curves.items():
            pts = sorted(curve.points, key=lambda p: p.nodes)
            if not pts:
                continue
            _history_append(
                store, suite, name, pts[-1].runtime,
                params={"study": "fig3", "nodes": list(nodes)},
                foms={f"eff_n{n}": eff for n, eff in curve.efficiency()})
        _history_note(store)
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from .core import describe

    suite = load_suite()
    result = None
    if args.sample:
        result = suite.run(args.benchmark)
    print(describe(suite, args.benchmark, sample=result))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .history.report import render_trajectory
    from .history.store import HistoryStore, is_history_file
    from .telemetry.report import render_report

    if is_history_file(args.trace):
        # a history DB renders as its FOM-trajectory section directly
        print(render_trajectory(HistoryStore.open(args.trace),
                                last=args.last), end="")
        return 0
    print(render_report(args.trace))
    if args.history:
        print()
        print(render_trajectory(HistoryStore.open(args.history),
                                last=args.last), end="")
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .history import HistoryStore
    from .history.report import render_trajectory

    store = HistoryStore.open(args.db)
    if args.compact is not None:
        before = len(store)
        store = store.compact(args.compact)
        print(f"history: compacted {before} -> {len(store)} record(s) "
              f"(keeping the last {args.compact} per series)")
    if args.export is not None:
        doc = store.canonical_export()
        if args.export == "-":
            sys.stdout.write(doc)
        else:
            Path(args.export).write_text(doc, encoding="utf-8")
            print(f"history: canonical export -> {args.export}")
        return 0
    print(render_trajectory(store, last=args.last,
                            benchmark=args.benchmark), end="")
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    import json

    from .history import HistoryStore, RegressionDetector
    from .history.report import render_regressions

    store = HistoryStore.open(args.db)
    detector = RegressionDetector(window=args.window, sigma=args.sigma,
                                  slack=args.slack)
    if args.json:
        summaries = {}
        flagged = 0
        for key, records in sorted(store.select(args.benchmark).items()):
            values = [r.value for r in records if r.value is not None]
            summary = detector.summarize(values)
            summary["benchmark"] = records[-1].benchmark
            summaries[key] = summary
            flagged += summary["counts"]["regression"]
        print(json.dumps(summaries, sort_keys=True, indent=2))
        return 1 if flagged else 0
    text, flagged = render_regressions(store, benchmark=args.benchmark,
                                       detector=detector,
                                       explain=args.explain)
    print(text, end="")
    return 1 if flagged else 0


def _cmd_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    from . import check as chk

    package_root = Path(__file__).resolve().parent
    repo_root = package_root.parent.parent
    baseline_path = Path(args.baseline) if args.baseline \
        else repo_root / "check-baseline.json"
    only = [r.strip() for r in args.rules.split(",") if r.strip()] \
        if args.rules else []
    disable = [r.strip() for r in args.disable.split(",") if r.strip()] \
        if args.disable else []
    # --select/--ignore expand rule-family prefixes (e.g. COMM, UNIT3)
    # into the same only/disable machinery, so family filters reach the
    # incremental cache key exactly like explicit --rules lists
    try:
        if args.select:
            only.extend(rid for rid in chk.expand_rule_prefixes(
                [p.strip() for p in args.select.split(",") if p.strip()])
                if rid not in only)
        if args.ignore:
            disable.extend(rid for rid in chk.expand_rule_prefixes(
                [p.strip() for p in args.ignore.split(",") if p.strip()])
                if rid not in disable)
    except ValueError as exc:
        print(f"check: {exc}", file=sys.stderr)
        return 2
    analyzer = chk.Analyzer(baseline=chk.load_baseline(baseline_path),
                            only=only, disable=disable)
    cache = DiskCache(Path(args.cache_dir)) if args.cache_dir else None
    report = analyzer.run(package_root, rel_base=repo_root,
                          workers=args.workers, cache=cache)
    if cache is not None:
        # stderr: stdout must stay byte-identical between cold and
        # warm runs for the CI determinism comparison
        print(f"check cache: {report.cache_hits} hit(s), "
              f"{report.cache_misses} miss(es)", file=sys.stderr)
    if not args.no_runtime and not only and not disable:
        extra = analyzer.classify(chk.runtime_contract_findings(), {})
        report.active += extra.active
        report.baselined += extra.baselined
        report.unused_baseline = extra.unused_baseline
    if args.write_baseline:
        baseline = chk.Baseline.from_findings(
            report.active + report.baselined)
        count = chk.save_baseline(baseline_path, baseline)
        print(f"baseline: {count} entrie(s) -> {baseline_path} "
              f"(add a one-line justification per entry)")
        return 0
    if args.format == "sarif":
        out = chk.render_sarif(report)
    elif args.format == "json":
        out = chk.render_json(report, strict=args.strict)
    else:
        out = chk.render_human(report, strict=args.strict,
                               explain=args.explain)
    if args.output:
        Path(args.output).write_text(out, encoding="utf-8")
        print(f"check: report -> {args.output}")
    else:
        print(out, end="" if out.endswith("\n") else "\n")
    status = 1 if report.failed(args.strict) else 0
    if args.sanitize:
        status = max(status, _sanitize_smoke())
    return status


def _sanitize_smoke() -> int:
    """Exercise the engine under the lock-order watcher."""
    from .check import LockOrderError, install, uninstall
    from .core.suite import load_suite

    graph = install()
    try:
        engine = ExecutionEngine(workers=8, backend="thread",
                                 cache=MemoryCache())
        suite = load_suite()
        suite.engine = engine
        try:
            suite.run_all(["Arbor", "JUQCS", "HPL", "STREAM"])
            suite.run_all(["Arbor", "JUQCS", "HPL", "STREAM"])  # warm
        finally:
            suite.engine = None
    except LockOrderError as exc:
        print(f"sanitizer: FAILED\n{exc}")
        return 1
    finally:
        uninstall()
    stats = graph.snapshot()
    print(f"sanitizer: ok -- {stats['locks']} lock(s), "
          f"{stats['acquisitions']} acquisition(s), "
          f"{stats['edges']} ordering edge(s), no cycles")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Chaos smoke: the suite + scheduler under an injected fault plan.

    Runs the benchmark set under a seeded (or file-provided) fault
    plan on a virtual clock, prints the degrade/recovery summary, and
    optionally writes the two byte-stable determinism artifacts: the
    canonical journal (``--journal-out``) and the chaos Chrome trace
    (``--trace-json``).  Then replays the plan's node crashes and
    straggler windows against the cluster scheduler and drains it.
    Honours ``REPRO_SANITIZE=1`` (lock-order watcher over the requeue
    paths).  Exit 0 means every benchmark ended ok or explicitly
    failed in the journal -- no unhandled exceptions, no aborted
    sweep.
    """
    from .check import install_from_env
    from .cluster.hardware import juwels_booster
    from .cluster.scheduler import Job, JobState, Scheduler
    from .exec import BackoffPolicy, CircuitBreaker
    from .faults import FaultInjector, FaultPlan, write_chaos_trace
    from .telemetry.spans import ManualClock, use_tracer

    install_from_env()
    names = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    if args.faults:
        plan = FaultPlan.load(args.faults)
    else:
        plan = FaultPlan.generate(
            args.seed, labels=tuple(f"run:{n}" for n in names), nodes=32)
    retries = args.retries if args.retries is not None \
        else max(1, plan.max_task_failures())
    injector = FaultInjector(plan)
    tracer = Tracer(clock=ManualClock(start=0.0, tick=0.25))
    engine = ExecutionEngine(
        workers=args.workers, backend="thread", cache=None,
        retries=retries, tracer=tracer, faults=injector,
        backoff=BackoffPolicy(seed=plan.seed), breaker=CircuitBreaker())
    suite = load_suite()
    suite.engine = engine
    try:
        with use_tracer(tracer):
            results = suite.run_all(names)

            # Cluster chaos phase: deterministic job stream + the
            # plan's node crashes / straggler windows, drained to
            # completion (requeues exercise the recovery paths).
            sched = Scheduler(juwels_booster().with_nodes(64),
                              faults=injector)
            jobs = [sched.submit(Job(name=f"chaos-{i}",
                                     nodes=8 + 8 * (i % 3),
                                     walltime=50.0))
                    for i in range(args.jobs)]
            sched.drain()
    finally:
        suite.engine = None

    stats = engine.journal.stats()
    print(f"chaos suite: {len(results)}/{len(names)} benchmarks ok, "
          f"{stats.errors} failed, {stats.retries} retries "
          f"(plan seed {plan.seed}, retry budget {retries})")
    requeues = sum(j.requeues for j in jobs)
    finished = sum(1 for j in jobs if j.state in (JobState.COMPLETED,
                                                  JobState.FAILED))
    print(f"chaos scheduler: {finished}/{len(jobs)} jobs finished, "
          f"{requeues} requeue(s), {sched.dead_nodes} node(s) dead, "
          f"utilization {sched.utilization:.3f}")
    if args.journal_out:
        count = engine.journal.canonical().to_jsonl(args.journal_out)
        print(f"chaos journal: {count} record(s) -> {args.journal_out}")
    if args.trace_json:
        n = write_chaos_trace(args.trace_json, engine.journal, plan)
        print(f"chaos trace: {n} event(s) -> {args.trace_json}")
    if args.save_plan:
        plan.save(args.save_plan)
        print(f"fault plan -> {args.save_plan}")
    accounted = len(engine.journal.records) == len(names) and \
        finished == len(jobs)
    return 0 if accounted else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    """Pack benchmark executions as service task envelopes.

    Default mode writes one ``<client>-<seq>-<task_id>.json`` envelope
    per benchmark into the ``--spool`` directory for a later ``jubench
    serve`` to drain (the loopback wire).  ``--direct`` skips the
    service entirely and runs the same envelopes in-process, writing
    the canonical result export -- the byte-identity baseline the
    service path must reproduce.
    """
    import json
    from pathlib import Path

    from .service import ServiceClient, execute_direct

    suite = load_suite()
    names = suite.names()
    if args.benchmarks:
        wanted = {b.strip() for b in args.benchmarks.split(",")}
        unknown = sorted(wanted - set(names))
        if unknown:
            raise SystemExit(f"jubench submit: unknown benchmark(s): "
                             f"{', '.join(unknown)}; see 'jubench list'")
        names = [n for n in names if n in wanted]
    client = ServiceClient(None, args.client, suite=suite)
    envelopes = [client.make_envelope(name, scale=args.scale)
                 for name in names]
    if args.direct:
        store = execute_direct(envelopes, suite=suite)
        doc = store.canonical_export()
        if not args.export or args.export == "-":
            sys.stdout.write(doc)
        else:
            Path(args.export).write_text(doc, encoding="utf-8")
            print(f"submit: direct canonical export -> {args.export}")
        return 0
    if not args.spool:
        raise SystemExit("jubench submit: --spool DIR is required "
                         "(or use --direct)")
    spool = Path(args.spool)
    spool.mkdir(parents=True, exist_ok=True)
    for env in envelopes:
        path = spool / f"{env.client}-{env.seq:06d}-{env.task_id}.json"
        path.write_text(json.dumps(env.to_wire(), sort_keys=True,
                                   indent=1) + "\n", encoding="utf-8")
    print(f"submit: {len(envelopes)} task envelope(s) -> {spool}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Loopback service: drain a spool of envelopes through endpoints.

    Reads every ``*.json`` task envelope from ``--spool`` (sorted, so
    per-client submission order is the file order), registers
    ``--endpoints`` local execution-engine endpoints sharing one
    result cache, routes the envelopes through the fair-share
    interchange on the virtual clock, and drains to completion.
    ``--faults`` / ``--fault-seed`` map node crashes onto endpoints by
    registration index, exercising lease expiry and requeue.
    """
    import json
    from pathlib import Path

    from .faults import FaultPlan
    from .service import (
        BenchmarkService,
        Capabilities,
        EnvelopeError,
        LocalEndpoint,
        ResultStore,
        TaskEnvelope,
    )

    spool = Path(args.spool)
    files = sorted(spool.glob("*.json")) if spool.is_dir() else []
    if not files:
        raise SystemExit(f"jubench serve: no task envelopes in "
                         f"{spool} (run 'jubench submit --spool "
                         f"{spool}' first)")
    try:
        envelopes = [TaskEnvelope.from_wire(
            json.loads(f.read_text(encoding="utf-8"))) for f in files]
    except EnvelopeError as exc:
        raise SystemExit(f"jubench serve: {exc}")
    plan = _fault_plan(args)
    store = ResultStore(args.results) if args.results else ResultStore()
    service = BenchmarkService(
        heartbeat_period=args.heartbeat_period,
        heartbeat_threshold=args.heartbeat_threshold,
        max_backlog=args.max_backlog, store=store,
        faults=plan if plan is not None else FaultPlan())
    cache = None
    if not args.no_cache:
        cache = DiskCache(args.cache_dir) if args.cache_dir \
            else MemoryCache()
    suite = load_suite()
    ambient = current_tracer()
    for i in range(args.endpoints):
        engine = ExecutionEngine(
            workers=args.workers, backend=args.backend, cache=cache,
            tracer=ambient if ambient.enabled else None)
        service.register_endpoint(LocalEndpoint(
            f"ep{i}", suite=suite, engine=engine,
            capabilities=Capabilities(workers=args.workers,
                                      backend=args.backend)))
    futures = [service.submit(env) for env in envelopes]
    service.drain()
    counts = store.counts()
    tally = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"serve: {len(envelopes)} envelope(s) over {args.endpoints} "
          f"endpoint(s) -- {tally}")
    if args.results:
        print(f"serve: result store -> {args.results}")
    if args.dispatch_log:
        Path(args.dispatch_log).write_text(service.log_json(),
                                           encoding="utf-8")
        print(f"serve: dispatch log -> {args.dispatch_log}")
    if args.export:
        doc = store.canonical_export()
        if args.export == "-":
            sys.stdout.write(doc)
        else:
            Path(args.export).write_text(doc, encoding="utf-8")
            print(f"serve: canonical export -> {args.export}")
    return 0 if all(f.status == "ok" for f in futures) else 1


def _cmd_procurement(_args: argparse.Namespace) -> int:
    from .cluster.hardware import jupiter_booster_model

    suite = load_suite()
    mix = WorkloadMix().add("GROMACS", 3).add("Arbor", 2).add("JUQCS", 1)
    refs: dict[str, ReferenceResult] = {}
    print("measuring reference executions on the simulated JUWELS Booster:")
    for entry in mix.entries:
        ref = suite.reference_run(entry.benchmark)
        refs[entry.benchmark] = ref
        print(f"  {entry.benchmark:<12} {ref.nodes:>4} nodes  "
              f"{fmt_seconds(ref.time_metric)}")
    model = TcoModel(mix=mix, references=refs)
    proposals = []
    for name, speedup in (("vendor-evolution", 2.0), ("vendor-bold", 3.2)):
        prop = SystemProposal(name=name, system=jupiter_booster_model())
        for bench, ref in refs.items():
            prop.commit(bench, nodes=max(1, ref.nodes // 2),
                        time_metric=ref.time_metric / speedup)
        proposals.append(prop)
    print("\nvalue-for-money ranking:")
    for assessment in model.rank(proposals):
        print(f"  {assessment.proposal:<18} "
              f"{assessment.workloads_over_lifetime:.3g} workloads / "
              f"{assessment.tco_eur / 1e6:.0f} MEUR  ->  "
              f"{assessment.value_for_money:.1f} per MEUR")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The jubench argument parser."""
    parser = argparse.ArgumentParser(
        prog="jubench",
        description="JUPITER Benchmark Suite reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all benchmarks").set_defaults(
        fn=_cmd_list)
    for which in ("table1", "table2"):
        p = sub.add_parser(which, help=f"render the paper's {which}")
        p.set_defaults(fn=_cmd_table, which=which)

    p = sub.add_parser("run", help="run one benchmark")
    p.add_argument("benchmark")
    p.add_argument("--nodes", type=int, default=None)
    p.add_argument("--variant", choices=["T", "S", "M", "L"], default=None)
    p.add_argument("--real", action="store_true",
                   help="real (verifying) mode instead of timing mode")
    p.add_argument("--scale", type=float, default=1.0)
    _add_engine_options(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("suite",
                       help="run every registered benchmark (parallel + "
                            "incremental via the execution engine)")
    p.add_argument("--benchmarks", default="",
                   help="comma-separated subset (default: all)")
    p.add_argument("--scale", type=float, default=1.0)
    _add_engine_options(p)
    p.set_defaults(fn=_cmd_suite)

    p = sub.add_parser("fig2", help="Base strong-scaling study (Fig. 2)")
    p.add_argument("--apps", default="",
                   help="comma-separated subset of Base apps")
    _add_engine_options(p)
    p.set_defaults(fn=_cmd_fig2)

    p = sub.add_parser("fig3", help="High-Scaling weak scaling (Fig. 3)")
    p.add_argument("--nodes", default="8,16,32,64,128",
                   help="comma-separated node counts")
    _add_engine_options(p)
    p.set_defaults(fn=_cmd_fig3)

    p = sub.add_parser("describe",
                       help="normalised benchmark description (Sec. III-C)")
    p.add_argument("benchmark")
    p.add_argument("--sample", action="store_true",
                   help="attach a sample execution result")
    p.set_defaults(fn=_cmd_describe)

    p = sub.add_parser("report",
                       help="render a saved telemetry JSONL trace "
                            "(journal summary + cost centres, offline)")
    p.add_argument("trace",
                   help="trace file from --trace-out FILE.jsonl or "
                        "--journal PATH (a history DB renders as its "
                        "trajectory section)")
    p.add_argument("--history", default=None, metavar="DB.jsonl",
                   help="additionally render the FOM-trajectory section "
                        "from this history database")
    p.add_argument("--last", type=int, default=10, metavar="N",
                   help="trajectory points shown per series (default 10)")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("history",
                       help="inspect the performance-history database "
                            "(trajectories, canonical export, retention)")
    p.add_argument("db", help="history database (JSONL, from --history)")
    p.add_argument("--benchmark", default=None, metavar="NAME",
                   help="restrict to one benchmark's series")
    p.add_argument("--last", type=int, default=10, metavar="N",
                   help="trajectory points shown per series (default 10)")
    p.add_argument("--export", default=None, metavar="FILE",
                   help="write the canonical byte-stable JSON export "
                        "('-' for stdout) instead of rendering")
    p.add_argument("--compact", type=int, default=None, metavar="N",
                   help="apply retention first: keep the last N records "
                        "per series and rewrite the database")
    p.set_defaults(fn=_cmd_history)

    p = sub.add_parser("regress",
                       help="deterministic change-point / regression "
                            "detection over the history database")
    p.add_argument("db", help="history database (JSONL, from --history)")
    p.add_argument("--benchmark", default=None, metavar="NAME",
                   help="restrict to one benchmark's series")
    p.add_argument("--window", type=int, default=8, metavar="N",
                   help="stationary-window length for the baseline "
                        "(default 8)")
    p.add_argument("--sigma", type=float, default=4.0, metavar="K",
                   help="robust-sigma multiplier of the alert margin "
                        "(default 4.0)")
    p.add_argument("--slack", type=float, default=0.02, metavar="F",
                   help="minimum relative deviation that alerts "
                        "(default 0.02)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable verdicts (bit-reproducible)")
    p.add_argument("--explain", action="store_true",
                   help="print the full inference trace per point")
    p.set_defaults(fn=_cmd_regress)

    p = sub.add_parser("check",
                       help="static analysis of suite invariants "
                            "(determinism, contracts, locking) + "
                            "runtime sanitizers")
    p.add_argument("--format", choices=["human", "json", "sarif"],
                   default="human", help="report format")
    p.add_argument("--output", default=None, metavar="FILE",
                   help="write the report to FILE instead of stdout")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="baseline file (default: check-baseline.json "
                        "at the repository root)")
    p.add_argument("--write-baseline", action="store_true",
                   help="write all current findings into the baseline "
                        "and exit")
    p.add_argument("--rules", default="", metavar="IDS",
                   help="comma-separated rule ids to run exclusively")
    p.add_argument("--disable", default="", metavar="IDS",
                   help="comma-separated rule ids to skip")
    p.add_argument("--select", default="", metavar="PREFIXES",
                   help="comma-separated rule-family prefixes to run "
                        "exclusively (e.g. COMM, UNIT3); expands to "
                        "ids and combines with --rules")
    p.add_argument("--ignore", default="", metavar="PREFIXES",
                   help="comma-separated rule-family prefixes to skip; "
                        "expands to ids and combines with --disable")
    p.add_argument("--strict", action="store_true",
                   help="fail on suppressions/baseline entries without "
                        "a justification")
    p.add_argument("--explain", default=None, metavar="RULE",
                   help="print the inference trace of every finding "
                        "of RULE (e.g. REP602, UNIT304) inline in the "
                        "human report; traces always ship in "
                        "json/sarif output")
    p.add_argument("--no-runtime", action="store_true",
                   help="skip the runtime contract verification pass")
    p.add_argument("--sanitize", action="store_true",
                   help="additionally run the suite under the "
                        "lock-order watcher")
    p.add_argument("--workers", type=_workers, default=1,
                   help="analyze modules in parallel (findings are "
                        "identical for any count)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="incremental analysis: reuse per-module "
                        "findings from DIR when source, rule set and "
                        "annotations are unchanged")
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser("chaos",
                       help="chaos smoke: suite + scheduler under a "
                            "seeded fault plan (deterministic)")
    p.add_argument("--seed", type=int, default=42,
                   help="fault-plan generation seed (default 42)")
    p.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="use this fault plan file instead of generating "
                        "one from --seed")
    p.add_argument("--benchmarks", default="Arbor,JUQCS,HPL,STREAM",
                   help="comma-separated benchmark set")
    p.add_argument("--workers", type=_workers, default=8,
                   help="engine workers (results are identical for any "
                        "count)")
    p.add_argument("--retries", type=int, default=None,
                   help="retry budget (default: the plan's worst case)")
    p.add_argument("--jobs", type=int, default=6,
                   help="jobs in the scheduler chaos phase")
    p.add_argument("--journal-out", default=None, metavar="PATH",
                   help="write the canonical (byte-stable) journal JSONL")
    p.add_argument("--trace-json", default=None, metavar="PATH",
                   help="write the deterministic chaos Chrome trace")
    p.add_argument("--save-plan", default=None, metavar="PATH",
                   help="save the effective fault plan as JSON")
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser("submit",
                       help="pack benchmark executions as service task "
                            "envelopes (spool for 'jubench serve', or "
                            "run them directly)")
    p.add_argument("--spool", default=None, metavar="DIR",
                   help="write one task-envelope JSON per benchmark "
                        "into this spool directory")
    p.add_argument("--client", default="cli", metavar="NAME",
                   help="client identity stamped on the envelopes "
                        "(default 'cli')")
    p.add_argument("--benchmarks", default="",
                   help="comma-separated subset (default: all)")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--direct", action="store_true",
                   help="bypass the service: execute the envelopes "
                        "in-process and emit the canonical export "
                        "(the byte-identity baseline)")
    p.add_argument("--export", default=None, metavar="FILE",
                   help="with --direct: write the canonical byte-stable "
                        "JSON export ('-' or omitted for stdout)")
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser("serve",
                       help="loopback benchmark service: drain a spool "
                            "of task envelopes through local endpoints "
                            "(deterministic virtual-clock schedule)")
    p.add_argument("--spool", required=True, metavar="DIR",
                   help="spool directory of task envelopes "
                        "(from 'jubench submit --spool DIR')")
    p.add_argument("--endpoints", type=_workers, default=2, metavar="N",
                   help="local endpoints to register (default 2)")
    p.add_argument("--workers", type=_workers, default=1,
                   help="execution-engine workers per endpoint")
    p.add_argument("--backend", choices=["serial", "thread", "process"],
                   default="thread", help="pool backend (default thread)")
    p.add_argument("--cache-dir", default=None,
                   help="persist the shared result cache as JSON in "
                        "this directory")
    p.add_argument("--no-cache", action="store_true",
                   help="disable result memoisation")
    p.add_argument("--heartbeat-period", type=float, default=5.0,
                   metavar="S", help="endpoint heartbeat period in "
                                     "virtual seconds (default 5)")
    p.add_argument("--heartbeat-threshold", type=int, default=3,
                   metavar="N", help="missed beats before an endpoint "
                                     "is declared lost (default 3)")
    p.add_argument("--max-backlog", type=_workers, default=64,
                   metavar="N", help="per-client queue bound; excess "
                                     "submissions are rejected "
                                     "explicitly (default 64)")
    p.add_argument("--results", default=None, metavar="FILE.jsonl",
                   help="persist the durable result store (append-only "
                        "JSONL journal of result envelopes)")
    p.add_argument("--export", default=None, metavar="FILE",
                   help="write the canonical byte-stable JSON export "
                        "of final outcomes ('-' for stdout)")
    p.add_argument("--dispatch-log", default=None, metavar="FILE",
                   help="write the byte-reproducible dispatch log "
                        "(every scheduling decision) as JSON")
    p.add_argument("--faults", default=None, metavar="PLAN.json",
                   help="fault plan whose node crashes map onto "
                        "endpoints by registration index")
    p.add_argument("--fault-seed", type=int, default=None, metavar="N",
                   help="generate a reproducible fault plan from this "
                        "seed instead of a plan file")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write the telemetry trace (service events + "
                        "engine task spans)")
    p.add_argument("--metrics", action="store_true",
                   help="print the metrics-registry report at the end")
    p.set_defaults(fn=_cmd_serve)

    sub.add_parser("procurement",
                   help="demo TCO evaluation").set_defaults(
        fn=_cmd_procurement)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    suite = load_suite()
    trace_out = getattr(args, "trace_out", None)
    want_metrics = getattr(args, "metrics", False)
    tracer = sink = registry = prev_registry = None
    if trace_out or want_metrics:
        tracer = Tracer()
        install_tracer(tracer)
        registry = MetricsRegistry()
        prev_registry = set_default_registry(registry)
        if trace_out and trace_out.endswith(".jsonl"):
            sink = JsonlSink(trace_out)
            tracer.subscribe(sink)
    try:
        return args.fn(args)
    finally:
        engine = suite.engine
        suite.engine = None  # the default suite is shared; detach
        journal_to = getattr(args, "journal", None)
        if engine is not None and journal_to is not None:
            if journal_to == "-":
                print(engine.journal.summary())
            else:
                count = engine.journal.to_jsonl(journal_to)
                print(f"journal: {count} task record(s) -> {journal_to}")
        if tracer is not None:
            if sink is not None:
                tracer.emit({"type": "metrics",
                             "snapshot": registry.snapshot()})
                sink.close()
                print(f"trace: {trace_out} "
                      f"(render offline: jubench report {trace_out})")
            elif trace_out:
                n = write_chrome_trace(trace_out, tracer)
                print(f"trace: {n} trace events -> {trace_out} "
                      f"(open in Perfetto or chrome://tracing)")
            install_tracer(None)
        if registry is not None:
            set_default_registry(prev_registry)
            if want_metrics:
                print(registry.render())


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
