"""Command-line interface: ``jubench`` / ``python -m repro``.

Sub-commands::

    jubench list                       # suite overview (Table II style)
    jubench table1 | table2            # reproduce the paper's tables
    jubench run NAME [--nodes N] [--variant V] [--real] [--scale S]
    jubench fig2 [--apps A,B,...]      # Base strong-scaling study
    jubench fig3 [--nodes 8,16,...]    # High-Scaling weak-scaling study
    jubench procurement                # demo TCO evaluation of proposals
"""

from __future__ import annotations

import argparse
import sys

from .core import (
    MemoryVariant,
    ReferenceResult,
    SystemProposal,
    TcoModel,
    WorkloadMix,
    get_info,
    load_suite,
)
from .units import fmt_seconds


def _cmd_list(_args: argparse.Namespace) -> int:
    suite = load_suite()
    print(f"JUPITER Benchmark Suite -- {len(suite.names())} benchmarks")
    for name in suite.names():
        info = get_info(name)
        cats = "/".join(c.value for c in info.categories)
        star = "" if info.used_in_procurement else "  (prepared, not used)"
        print(f"  {name:<18} {info.domain:<22} [{cats}]{star}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from .analysis import render_table1, render_table2

    print(render_table1() if args.which == "table1" else render_table2())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    suite = load_suite()
    variant = MemoryVariant.from_label(args.variant) if args.variant else None
    result = suite.run(args.benchmark, args.nodes, variant=variant,
                       real=args.real, scale=args.scale)
    print(f"benchmark : {result.benchmark}")
    print(f"nodes     : {result.nodes}")
    if result.variant is not None:
        print(f"variant   : {result.variant.value}")
    print(f"FOM       : {fmt_seconds(result.fom_seconds)} "
          f"({result.fom_seconds:.3f} s time metric)")
    if result.verified is not None:
        status = "PASSED" if result.verified else "FAILED"
        print(f"verified  : {status} -- {result.verification}")
    for key, value in sorted(result.details.items()):
        if isinstance(value, float):
            print(f"  {key}: {value:.6g}")
        elif isinstance(value, (int, str, bool, tuple)):
            print(f"  {key}: {value}")
    return 0 if result.verified in (True, None) else 1


def _cmd_fig2(args: argparse.Namespace) -> int:
    from .analysis import FIG2_APPS, figure2

    suite = load_suite()
    apps = FIG2_APPS
    if args.apps:
        wanted = {a.strip() for a in args.apps.split(",")}
        apps = tuple(a for a in FIG2_APPS if a[0] in wanted)
    print(figure2(suite, apps).render())
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from .analysis import figure3

    suite = load_suite()
    nodes = tuple(int(n) for n in args.nodes.split(","))
    print(figure3(suite, nodes).render())
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from .core import describe

    suite = load_suite()
    result = None
    if args.sample:
        result = suite.run(args.benchmark)
    print(describe(suite, args.benchmark, sample=result))
    return 0


def _cmd_procurement(_args: argparse.Namespace) -> int:
    from .cluster.hardware import jupiter_booster_model

    suite = load_suite()
    mix = WorkloadMix().add("GROMACS", 3).add("Arbor", 2).add("JUQCS", 1)
    refs: dict[str, ReferenceResult] = {}
    print("measuring reference executions on the simulated JUWELS Booster:")
    for entry in mix.entries:
        ref = suite.reference_run(entry.benchmark)
        refs[entry.benchmark] = ref
        print(f"  {entry.benchmark:<12} {ref.nodes:>4} nodes  "
              f"{fmt_seconds(ref.time_metric)}")
    model = TcoModel(mix=mix, references=refs)
    proposals = []
    for name, speedup in (("vendor-evolution", 2.0), ("vendor-bold", 3.2)):
        prop = SystemProposal(name=name, system=jupiter_booster_model())
        for bench, ref in refs.items():
            prop.commit(bench, nodes=max(1, ref.nodes // 2),
                        time_metric=ref.time_metric / speedup)
        proposals.append(prop)
    print("\nvalue-for-money ranking:")
    for assessment in model.rank(proposals):
        print(f"  {assessment.proposal:<18} "
              f"{assessment.workloads_over_lifetime:.3g} workloads / "
              f"{assessment.tco_eur / 1e6:.0f} MEUR  ->  "
              f"{assessment.value_for_money:.1f} per MEUR")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The jubench argument parser."""
    parser = argparse.ArgumentParser(
        prog="jubench",
        description="JUPITER Benchmark Suite reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all benchmarks").set_defaults(
        fn=_cmd_list)
    for which in ("table1", "table2"):
        p = sub.add_parser(which, help=f"render the paper's {which}")
        p.set_defaults(fn=_cmd_table, which=which)

    p = sub.add_parser("run", help="run one benchmark")
    p.add_argument("benchmark")
    p.add_argument("--nodes", type=int, default=None)
    p.add_argument("--variant", choices=["T", "S", "M", "L"], default=None)
    p.add_argument("--real", action="store_true",
                   help="real (verifying) mode instead of timing mode")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("fig2", help="Base strong-scaling study (Fig. 2)")
    p.add_argument("--apps", default="",
                   help="comma-separated subset of Base apps")
    p.set_defaults(fn=_cmd_fig2)

    p = sub.add_parser("fig3", help="High-Scaling weak scaling (Fig. 3)")
    p.add_argument("--nodes", default="8,16,32,64,128",
                   help="comma-separated node counts")
    p.set_defaults(fn=_cmd_fig3)

    p = sub.add_parser("describe",
                       help="normalised benchmark description (Sec. III-C)")
    p.add_argument("benchmark")
    p.add_argument("--sample", action="store_true",
                   help="attach a sample execution result")
    p.set_defaults(fn=_cmd_describe)

    sub.add_parser("procurement",
                   help="demo TCO evaluation").set_defaults(
        fn=_cmd_procurement)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
