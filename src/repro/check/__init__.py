"""``repro.check``: suite-invariant static analyzer + runtime sanitizers.

The paper's procurement methodology only works because benchmark runs
are replicable; this package machine-checks the invariants the rest of
the codebase silently assumes:

* **determinism** (DET001/DET002) -- no wall clocks or unseeded RNG in
  model code, where they would poison the content-addressed cache key;
* **contracts** (CON101..CON104) -- every registered benchmark declares
  a FOM, High-Scaling variants keep T<S<M<L fraction order, ``$param``
  references resolve, unit prefixes are not abused as quantities;
* **concurrency** (LCK201 + :class:`LockOrderWatcher`) -- module-level
  state is mutated under a lock, and lock acquisition order stays
  acyclic at runtime;
* **dimensions** (UNIT301..UNIT305, ``repro.check.dims`` +
  ``rules/dataflow``) -- a flow-sensitive dimensional dataflow pass
  proving that quantities keep their physical dimension (seconds,
  bytes, rates) through the cost model, seeded by ``repro.units``
  constants and the ``DIMS = register_dims(...)`` annotation registry;
* **protocols** (COMM501..COMM506, ``repro.check.protocol`` +
  ``rules/comm``) -- every vmpi rank program's communication skeleton
  is lifted from the AST and replayed at small sizes against an
  abstract model of the engine's matching semantics: rank-divergent
  or misordered collectives, wait-for deadlocks (differentially
  validated against the step engine), tag collisions, inconsistent
  roots, and orphan endpoints;
* **cross-layer** (XLY401..XLY403) -- telemetry event types exist in
  the schema, CLI flags are documented in the README, rule ids are
  registered exactly once.

Run it as ``jubench check`` or ``python -m repro.check``; pass a cache
(``--cache-dir``) for incremental warm runs and ``--workers`` for
parallel analysis.
"""

from .dims import Dim, DimRegistry, build_registry, parse_dim
from .engine import Analyzer, CheckReport, runtime_contract_findings
from .findings import (
    Baseline,
    BaselineEntry,
    Finding,
    Severity,
    load_baseline,
    save_baseline,
)
from .protocol import ProtocolFinding, analyze_modules, rank_programs
from .reporters import render_human, render_json, render_sarif
from .rules import (
    RULE_CLASSES,
    default_rules,
    expand_rule_prefixes,
    rule_ids,
)
from .sanitizer import (
    LockGraph,
    LockOrderError,
    LockOrderWatcher,
    install,
    install_from_env,
    installed_graph,
    uninstall,
)

__all__ = [
    "Analyzer", "Baseline", "BaselineEntry", "CheckReport", "Dim",
    "DimRegistry", "Finding", "LockGraph", "LockOrderError",
    "LockOrderWatcher", "ProtocolFinding", "RULE_CLASSES", "Severity",
    "analyze_modules", "build_registry", "default_rules",
    "expand_rule_prefixes", "install", "install_from_env",
    "installed_graph", "load_baseline", "parse_dim", "rank_programs",
    "render_human", "render_json", "render_sarif", "rule_ids",
    "runtime_contract_findings", "save_baseline", "uninstall",
]
