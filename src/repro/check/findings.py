"""Findings, severities, and the committed baseline file.

A :class:`Finding` is one rule violation at one source location.  The
*baseline* (``check-baseline.json`` at the repository root) records
findings that are known, justified, and intentionally kept -- legacy
sites and deliberate exceptions -- so they never fail CI while still
being visible in reports.  Baseline entries match on
``(rule, path, snippet)`` rather than line numbers, so unrelated edits
above a baselined site do not invalidate the entry.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable


class Severity(enum.Enum):
    """Finding severities, mapped 1:1 onto SARIF levels."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "note": 2}[self.value]


@dataclass
class Finding:
    """One rule violation at one source location.

    ``snippet`` is the stripped source line -- the stable identity used
    for baseline matching.  ``justification`` is filled in when the
    finding is suppressed inline or matched against a baseline entry.
    ``trace`` carries dimension provenance for the UNIT3xx rules: how
    each operand got its inferred dimension, one human-readable step
    per line.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    snippet: str = ""
    justification: str = ""
    trace: list[str] = field(default_factory=list)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule, self.message)

    def baseline_key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)

    def to_dict(self) -> dict[str, Any]:
        out = {"rule": self.rule, "severity": self.severity.value,
               "path": self.path, "line": self.line,
               "message": self.message, "snippet": self.snippet}
        if self.justification:
            out["justification"] = self.justification
        if self.trace:
            out["trace"] = list(self.trace)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the incremental cache)."""
        return cls(rule=data["rule"],
                   severity=Severity(data["severity"]),
                   path=data["path"], line=data["line"],
                   message=data["message"],
                   snippet=data.get("snippet", ""),
                   justification=data.get("justification", ""),
                   trace=list(data.get("trace", ())))

    def render(self) -> str:
        return (f"{self.path}:{self.line}: [{self.severity.value}] "
                f"{self.rule}: {self.message}")


@dataclass
class BaselineEntry:
    """One committed, justified finding."""

    rule: str
    path: str
    snippet: str
    justification: str = ""

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)

    def to_dict(self) -> dict[str, str]:
        return {"rule": self.rule, "path": self.path,
                "snippet": self.snippet,
                "justification": self.justification}


@dataclass
class Baseline:
    """The set of baselined findings, keyed for matching."""

    entries: list[BaselineEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_key = {e.key(): e for e in self.entries}
        self._matched: set[tuple[str, str, str]] = set()

    def match(self, finding: Finding) -> BaselineEntry | None:
        """The entry covering a finding, if any (marks it as used)."""
        entry = self._by_key.get(finding.baseline_key())
        if entry is not None:
            self._matched.add(entry.key())
        return entry

    def unused(self) -> list[BaselineEntry]:
        """Entries that matched no finding -- stale, should be pruned."""
        return [e for e in self.entries if e.key() not in self._matched]

    @classmethod
    def from_findings(cls, findings: Iterable[Finding],
                      justification: str = "") -> "Baseline":
        entries = []
        seen = set()
        for f in sorted(findings, key=Finding.sort_key):
            key = f.baseline_key()
            if key in seen:
                continue
            seen.add(key)
            entries.append(BaselineEntry(
                rule=f.rule, path=f.path, snippet=f.snippet,
                justification=f.justification or justification))
        return cls(entries=entries)


def load_baseline(path: str | Path) -> Baseline:
    """Load ``check-baseline.json``; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline()
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = [BaselineEntry(rule=e["rule"], path=e["path"],
                             snippet=e["snippet"],
                             justification=e.get("justification", ""))
               for e in data.get("entries", ())]
    return Baseline(entries=entries)


def save_baseline(path: str | Path, baseline: Baseline) -> int:
    """Write a baseline file; returns the number of entries."""
    payload = {
        "_meta": {
            "description": "Known, justified repro.check findings; "
                           "kept out of the failing set",
            "regenerate": "jubench check --write-baseline "
                          "(then add a justification per entry)",
        },
        "entries": [e.to_dict() for e in baseline.entries],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return len(baseline.entries)
