"""Protocol models of vmpi rank programs: extraction + abstract replay.

A *rank program* is a generator ``def prog(comm, ...)`` yielding
:mod:`repro.vmpi.ops` descriptors.  This module lifts such programs out
of their modules **statically** -- no engine, no payloads -- and replays
their communication skeleton at small concrete sizes, mirroring the
engine's matching semantics exactly:

* per-``(comm, src, dst, tag)`` FIFO channels for point-to-point, with
  the engine's eager/rendezvous split (``VmpiEngine.EAGER_LIMIT``);
* collectives matched by per-rank sequence counters on a communicator,
  completing only when **all** members post, validated on kind, reduce
  op and root (labels are not validated, like the engine);
* ``Exchange`` rounds matched in their own ``(comm, tag, round)``
  namespace with per-directed-pair count symmetry;
* ``split`` computes the actual subcommunicators, so collectives on
  derived communicators are verified too.

The replay is an abstract interpretation of the AST, per rank, at a
concrete communicator size: ``comm.rank``/``comm.size`` are concrete,
arithmetic is folded, project-local helpers (``yield from`` chains and
plain calls) are inlined through a cross-module function index, and
everything else becomes an :data:`UNKNOWN` tainted with whether it *may
differ across ranks*.  The soundness discipline:

* a branch on a concrete condition is taken exactly (this is how
  rank-divergent control flow is explored);
* a branch on an unknown-but-rank-uniform condition takes the false
  arm on every rank -- a rank-consistent possible world;
* a branch on an unknown **rank-dependent** condition is taken only
  when neither arm communicates (locals are poisoned); otherwise the
  program is *unresolvable* and the pass stays quiet;
* loops with unknown trip counts unroll once (rank-uniformly) and mark
  the replay *approximate*: deadlock/orphan verdicts (COMM503/COMM506)
  are suppressed, because they rely on exact traces, while collective
  alignment verdicts (COMM501/502/505) survive.

Sends of unproven size complete eagerly (optimistic): a deadlock found
under the optimistic model survives under rendezvous, so every COMM503
verdict corresponds to a real engine deadlock -- the differential
oracle the fixture suite enforces.
"""

from __future__ import annotations

import ast
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..vmpi.engine import VmpiEngine
from ..vmpi.ops import COMM_METHODS, REDUCING_KINDS, ROOTED_KINDS

#: communicator sizes every rank program is replayed at; odd sizes are
#: deliberately included (pairing/halving programs break there first)
DEFAULT_SIZES = (2, 3, 4, 5)
#: concrete-loop unroll ceiling; longer loops truncate and mark approx
UNROLL_CAP = 64
#: per-rank interpreter step budget
MAX_STEPS = 60_000
#: inlined-call depth ceiling
MAX_DEPTH = 16
#: eager/rendezvous threshold, mirrored from the engine
EAGER_LIMIT = VmpiEngine.EAGER_LIMIT


# ---------------------------------------------------------------------------
# abstract values


class _Unknown:
    """Singleton marker for a value the analysis cannot prove."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unknown>"


UNKNOWN = _Unknown()


@dataclass(frozen=True)
class AV:
    """One abstract value: a concrete Python value or :data:`UNKNOWN`,
    tainted with whether it *may differ across ranks*."""

    value: Any = UNKNOWN
    rankdep: bool = False

    @property
    def known(self) -> bool:
        return self.value is not UNKNOWN


def _wrap(x: Any, rankdep: bool = False) -> AV:
    return x if isinstance(x, AV) else AV(x, rankdep)


def _taint(*avs: AV) -> bool:
    return any(a.rankdep for a in avs)


def _deep(x: Any):
    """Deep-unwrap to plain Python, or raise :class:`_NotConcrete`."""
    if isinstance(x, AV):
        if not x.known:
            raise _NotConcrete()
        return _deep(x.value)
    if isinstance(x, _Unknown):
        raise _NotConcrete()
    if isinstance(x, tuple):
        return tuple(_deep(v) for v in x)
    if isinstance(x, list):
        return [_deep(v) for v in x]
    if isinstance(x, dict):
        return {k: _deep(v) for k, v in x.items()}
    return x


def _deep_taint(x: Any) -> bool:
    if isinstance(x, AV):
        return x.rankdep or _deep_taint(x.value)
    if isinstance(x, (tuple, list)):
        return any(_deep_taint(v) for v in x)
    if isinstance(x, dict):
        return any(_deep_taint(v) for v in x.values())
    return False


class _NotConcrete(Exception):
    pass


@dataclass(frozen=True)
class PhantomV:
    """Abstract ``Phantom``: a payload with a (possibly unknown) size."""

    nbytes: Any  # float or UNKNOWN


@dataclass(frozen=True)
class SymComm:
    """Abstract communicator at a concrete size."""

    comm_id: int
    rank: int                  # local rank of the owning interpreter
    members: tuple[int, ...]   # world ranks, indexed by local rank

    @property
    def size(self) -> int:
        return len(self.members)


def _abstract_nbytes(payload: Any):
    """Wire size of an abstract payload, or None when unproven."""
    if isinstance(payload, AV):
        return None if not payload.known else _abstract_nbytes(payload.value)
    if payload is None:
        return 0.0
    if isinstance(payload, PhantomV):
        n = payload.nbytes
        if isinstance(n, AV):
            n = n.value if n.known else UNKNOWN
        return float(n) if isinstance(n, (int, float)) else None
    if isinstance(payload, bool) or isinstance(payload, (int, float, complex)):
        return 8.0
    if isinstance(payload, str):
        return float(len(payload.encode("utf-8")))
    if isinstance(payload, (list, tuple)):
        total = 0.0
        for item in payload:
            n = _abstract_nbytes(item)
            if n is None:
                return None
            total += n
        return total
    return None


# ---------------------------------------------------------------------------
# symbolic ops


@dataclass
class SOp:
    """One op of a communication skeleton, fully concrete except
    payloads/requests.  ``site`` anchors findings at the construction
    line (possibly inside an inlined helper in another module)."""

    kind: str
    comm: SymComm | None
    site: tuple[str, int]          # (relpath, line)
    dest: int | None = None
    source: int | None = None
    tag: int = 0
    root: int = 0
    reduce_op: str = "sum"
    payload: Any = None
    sends: tuple = ()              # exchange: ((dest_local, payload), ...)
    recvs: tuple = ()              # exchange: (src_local, ...)
    requests: tuple = ()           # wait/waitall: SReqV handles
    color: Any = None              # split
    key: Any = None                # split
    label: str = ""

    def describe(self) -> str:
        where = f"{self.site[0]}:{self.site[1]}"
        if self.kind in ("send", "isend"):
            return f"{self.kind}(dest={self.dest}, tag={self.tag}) at {where}"
        if self.kind in ("recv", "irecv"):
            return (f"{self.kind}(source={self.source}, tag={self.tag}) "
                    f"at {where}")
        if self.kind == "sendrecv":
            return (f"sendrecv(dest={self.dest}, source={self.source}, "
                    f"tag={self.tag}) at {where}")
        if self.kind == "exchange":
            return f"exchange(tag={self.tag}) at {where}"
        return f"{self.kind} at {where}"


class _Unresolvable(Exception):
    """This (program, size) is beyond the model; stay quiet."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class _Return(Exception):
    def __init__(self, value: AV) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


# ---------------------------------------------------------------------------
# project view: function index + module constant environments


def _is_generator(fn: ast.FunctionDef) -> bool:
    for node in _own_nodes(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _own_nodes(fn: ast.AST) -> Iterable[ast.AST]:
    """Nodes of a function excluding nested function/class scopes."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _contains(nodes: Iterable[ast.stmt], *types) -> bool:
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, types):
                return True
    return False


def is_rank_program(fn: ast.FunctionDef) -> bool:
    """A generator whose first parameter is the communicator."""
    args = fn.args.posonlyargs + fn.args.args
    if not args:
        return False
    first = args[0]
    if first.arg != "comm":
        ann = first.annotation
        if not (ann is not None and "Comm" in ast.dump(ann)):
            return False
    return _is_generator(fn)


def rank_programs(tree: ast.Module) -> list[ast.FunctionDef]:
    """Module-level rank programs, in source order."""
    return [stmt for stmt in tree.body
            if isinstance(stmt, ast.FunctionDef) and is_rank_program(stmt)]


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    # local copy of rules.base.import_aliases to keep this layer
    # importable without the rules package
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = \
                    a.name if a.asname else a.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for a in node.names:
                if a.name == "*":
                    continue
                full = f"{base}.{a.name}" if base else a.name
                aliases[a.asname or a.name] = full
    return aliases


class ProjectIndex:
    """Cross-module view: function definitions and module constants."""

    def __init__(self, modules: Iterable[tuple[str, ast.Module]]) -> None:
        self.modules: list[tuple[str, ast.Module]] = list(modules)
        #: function name -> [(module parts, relpath, node)]
        self.functions: dict[str, list[tuple[tuple[str, ...], str,
                                             ast.FunctionDef]]] = {}
        self.aliases: dict[str, dict[str, str]] = {}
        self.trees: dict[str, ast.Module] = {}
        self._module_envs: dict[str, dict[str, AV]] = {}
        for relpath, tree in self.modules:
            self.trees[relpath] = tree
            self.aliases[relpath] = _import_aliases(tree)
            parts = tuple(relpath[:-3].split("/")) \
                if relpath.endswith(".py") else tuple(relpath.split("/"))
            for stmt in tree.body:
                if isinstance(stmt, ast.FunctionDef):
                    self.functions.setdefault(stmt.name, []).append(
                        (parts, relpath, stmt))

    def resolve(self, relpath: str,
                dotted: str) -> tuple[str, ast.FunctionDef] | None:
        """Resolve a (possibly dotted) callee name from ``relpath``."""
        parts = dotted.split(".")
        name, prefix = parts[-1], tuple(parts[:-1])
        candidates = self.functions.get(name, ())
        if prefix:
            matched = [(rel, node) for mod, rel, node in candidates
                       if mod[:-1][-len(prefix):] == prefix or
                       mod[-len(prefix):] == prefix]
        else:
            matched = [(rel, node) for mod, rel, node in candidates
                       if rel == relpath]
            if not matched and len(candidates) == 1:
                matched = [(rel, node) for _, rel, node in candidates]
        if len(matched) == 1:
            return matched[0]
        return None

    def module_env(self, relpath: str) -> dict[str, AV]:
        """Module-level constant bindings (lazily folded)."""
        env = self._module_envs.get(relpath)
        if env is None:
            env = {}
            self._module_envs[relpath] = env  # break self-recursion
            tree = self.trees.get(relpath)
            if tree is not None:
                interp = _Interp(self, relpath, rank=0, size=1,
                                 module_level=True)
                for stmt in tree.body:
                    target = None
                    if isinstance(stmt, ast.Assign) and \
                            len(stmt.targets) == 1 and \
                            isinstance(stmt.targets[0], ast.Name):
                        target, value = stmt.targets[0], stmt.value
                    elif isinstance(stmt, ast.AnnAssign) and \
                            isinstance(stmt.target, ast.Name) and \
                            stmt.value is not None:
                        target, value = stmt.target, stmt.value
                    if target is None:
                        continue
                    try:
                        env[target.id] = _drive(interp.eval(value, env))
                    except (_Unresolvable, _NotConcrete):
                        env[target.id] = AV(UNKNOWN, False)
        return env


def _drive(gen) -> AV:
    """Run a non-yielding interpreter generator to completion."""
    try:
        gen.send(None)
    except StopIteration as stop:
        return stop.value if stop.value is not None else AV(None, False)
    raise _Unresolvable("yield at module level")


# ---------------------------------------------------------------------------
# the abstract interpreter (one rank of one program at one size)


class _Post:
    """One yield of the program: a single op or an op batch."""

    __slots__ = ("ops", "batch")

    def __init__(self, ops: list[SOp], batch: bool) -> None:
        self.ops = ops
        self.batch = batch


#: pure callables usable on fully concrete arguments
_BUILTINS = {
    "range": range, "len": len, "min": min, "max": max, "abs": abs,
    "int": int, "float": float, "bool": bool, "sum": sum,
    "sorted": sorted, "enumerate": enumerate, "zip": zip, "list": list,
    "tuple": tuple, "dict": dict, "set": set, "round": round,
    "divmod": divmod, "pow": pow, "str": str, "frozenset": frozenset,
    "reversed": reversed,
}

_MUTATORS = {"append", "extend", "insert", "add", "update"}


class _Interp:
    """Abstract interpretation of one rank program at a concrete size.

    ``run()`` is a generator yielding :class:`_Post` objects and being
    resumed with result :class:`AV`\\ s -- the replay simulator drives
    it exactly like the engine drives real rank generators.
    """

    def __init__(self, index: ProjectIndex, relpath: str, *,
                 rank: int, size: int,
                 module_level: bool = False) -> None:
        self.index = index
        self.rank = rank
        self.size = size
        self.relpath = relpath      # current module (frame-dependent)
        self.steps = 0
        self.depth = 0
        self.approx = False
        self.module_level = module_level

    # -- entry ----------------------------------------------------------------

    def run_program(self, fn: ast.FunctionDef, relpath: str,
                    world: SymComm):
        """Bind entry parameters and execute the program body."""
        env = dict(self.index.module_env(relpath))
        args = fn.args.posonlyargs + fn.args.args
        defaults = fn.args.defaults
        split = len(args) - len(defaults)
        env[args[0].arg] = AV(world, True)
        for i, arg in enumerate(args[1:], start=1):
            if i >= split:
                try:
                    env[arg.arg] = _drive(self.eval(
                        defaults[i - split], env))
                except (_Unresolvable, _NotConcrete):
                    env[arg.arg] = AV(UNKNOWN, False)
                    self.approx = True
            else:
                ann = arg.annotation
                if ann is not None and isinstance(ann, ast.Name) and \
                        ann.id == "int":
                    # fabricate a small uniform count; approximate world
                    env[arg.arg] = AV(2, False)
                else:
                    env[arg.arg] = AV(UNKNOWN, False)
                self.approx = True
        for arg in fn.args.kwonlyargs:
            env[arg.arg] = AV(UNKNOWN, False)
            self.approx = True
        prev = self.relpath
        self.relpath = relpath
        try:
            yield from self.exec_block(fn.body, env)
        except _Return:
            pass
        finally:
            self.relpath = prev

    # -- statements -----------------------------------------------------------

    def exec_block(self, stmts: list[ast.stmt], env: dict[str, AV]):
        for stmt in stmts:
            yield from self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.stmt, env: dict[str, AV]):
        self.steps += 1
        if self.steps > MAX_STEPS:
            raise _Unresolvable("step budget exhausted")
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            env[stmt.name] = AV(UNKNOWN, False)
            return
        if isinstance(stmt, ast.Return):
            value = AV(None, False)
            if stmt.value is not None:
                value = yield from self.eval(stmt.value, env)
            raise _Return(value)
        if isinstance(stmt, ast.Break):
            raise _Break()
        if isinstance(stmt, ast.Continue):
            raise _Continue()
        if isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal,
                             ast.Import, ast.ImportFrom)):
            return
        if isinstance(stmt, ast.Expr):
            yield from self.eval(stmt.value, env)
            return
        if isinstance(stmt, ast.Assign):
            value = yield from self.eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, value, env)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = yield from self.eval(stmt.value, env)
                self._assign(stmt.target, value, env)
            return
        if isinstance(stmt, ast.AugAssign):
            value = yield from self.eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                cur = yield from self.eval(
                    ast.copy_location(ast.Name(id=stmt.target.id,
                                               ctx=ast.Load()), stmt), env)
                env[stmt.target.id] = self._binop(stmt.op, cur, value)
            return
        if isinstance(stmt, ast.Assert):
            yield from self.eval(stmt.test, env)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return
        if isinstance(stmt, ast.If):
            yield from self._exec_if(stmt, env)
            return
        if isinstance(stmt, ast.For):
            yield from self._exec_for(stmt, env)
            return
        if isinstance(stmt, ast.While):
            yield from self._exec_while(stmt, env)
            return
        raise _Unresolvable(
            f"unsupported statement {type(stmt).__name__}")

    def _exec_if(self, stmt: ast.If, env: dict[str, AV]):
        cond = yield from self.eval(stmt.test, env)
        if cond.known:
            try:
                truthy = bool(_deep(cond))
            except _NotConcrete:
                truthy = None
        else:
            truthy = None
        if truthy is True:
            yield from self.exec_block(stmt.body, env)
            return
        if truthy is False:
            yield from self.exec_block(stmt.orelse, env)
            return
        if cond.rankdep:
            # may diverge across ranks: tolerable only when neither arm
            # communicates or alters control flow
            arms = stmt.body + stmt.orelse
            if _contains(arms, ast.Yield, ast.YieldFrom, ast.Break,
                         ast.Continue, ast.Return):
                raise _Unresolvable(
                    "rank-dependent branch on unproven condition "
                    "contains communication or control flow")
            for target in self._assigned_in(arms):
                env[target] = AV(UNKNOWN, True)
            return
        # unknown but rank-uniform: take the false arm on every rank
        if _contains(stmt.body, ast.Yield, ast.YieldFrom):
            self.approx = True
        yield from self.exec_block(stmt.orelse, env)

    def _exec_for(self, stmt: ast.For, env: dict[str, AV]):
        if stmt.orelse and _contains(stmt.orelse, ast.Yield,
                                     ast.YieldFrom):
            raise _Unresolvable("for-else with communication")
        iterable = yield from self.eval(stmt.iter, env)
        items = None
        if iterable.known:
            value = iterable.value
            if isinstance(value, (list, tuple, range, dict, set,
                                  frozenset)):
                items = list(value)
        if items is None:
            # unknown trip count: unroll once, rank-uniformly
            self.approx = True
            self._assign(stmt.target,
                         AV(UNKNOWN, iterable.rankdep), env)
            try:
                yield from self.exec_block(stmt.body, env)
            except _Break:
                pass
            except _Continue:
                pass
            return
        if len(items) > UNROLL_CAP:
            self.approx = True
            items = items[:UNROLL_CAP]
        broke = False
        for item in items:
            self._assign(stmt.target,
                         _wrap(item, iterable.rankdep), env)
            try:
                yield from self.exec_block(stmt.body, env)
            except _Break:
                broke = True
                break
            except _Continue:
                continue
        if not broke and stmt.orelse:
            yield from self.exec_block(stmt.orelse, env)

    def _exec_while(self, stmt: ast.While, env: dict[str, AV]):
        if stmt.orelse and _contains(stmt.orelse, ast.Yield,
                                     ast.YieldFrom):
            raise _Unresolvable("while-else with communication")
        for _ in range(UNROLL_CAP + 1):
            cond = yield from self.eval(stmt.test, env)
            if cond.known:
                try:
                    truthy = bool(_deep(cond))
                except _NotConcrete:
                    truthy = None
            else:
                truthy = None
            if truthy is None:
                if cond.rankdep:
                    raise _Unresolvable(
                        "while on rank-dependent unproven condition")
                if _contains(stmt.body, ast.Yield, ast.YieldFrom):
                    self.approx = True
                return
            if not truthy:
                return
            try:
                yield from self.exec_block(stmt.body, env)
            except _Break:
                return
            except _Continue:
                continue
        self.approx = True

    @staticmethod
    def _assigned_in(stmts: list[ast.stmt]) -> set[str]:
        names: set[str] = set()
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and \
                        isinstance(node.ctx, ast.Store):
                    names.add(node.id)
        return names

    def _assign(self, target: ast.AST, value: AV,
                env: dict[str, AV]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            if any(isinstance(e, ast.Starred) for e in target.elts):
                raise _Unresolvable("starred assignment")
            if value.known and isinstance(value.value, (tuple, list)) \
                    and len(value.value) == len(target.elts):
                for elt, item in zip(target.elts, value.value):
                    self._assign(elt, _wrap(item, value.rankdep), env)
            else:
                for elt in target.elts:
                    self._assign(elt, AV(UNKNOWN, value.rankdep), env)
            return
        # attribute/subscript stores: drop the effect (objects are
        # opaque to the model)
        return

    # -- expressions ----------------------------------------------------------

    def eval(self, node: ast.expr, env: dict[str, AV]):
        self.steps += 1
        if self.steps > MAX_STEPS:
            raise _Unresolvable("step budget exhausted")
        if isinstance(node, ast.Constant):
            return AV(node.value, False)
        if isinstance(node, ast.Name):
            return self._load_name(node.id, env)
        if isinstance(node, ast.Attribute):
            return (yield from self._eval_attribute(node, env))
        if isinstance(node, ast.Tuple):
            return (yield from self._eval_seq(node, env, tuple))
        if isinstance(node, ast.List):
            return (yield from self._eval_seq(node, env, list))
        if isinstance(node, ast.Set):
            out = yield from self._eval_seq(node, env, list)
            return AV(UNKNOWN, out.rankdep) if not out.known else out
        if isinstance(node, ast.Dict):
            return (yield from self._eval_dict(node, env))
        if isinstance(node, ast.BinOp):
            left = yield from self.eval(node.left, env)
            right = yield from self.eval(node.right, env)
            return self._binop(node.op, left, right)
        if isinstance(node, ast.UnaryOp):
            operand = yield from self.eval(node.operand, env)
            return self._unary(node.op, operand)
        if isinstance(node, ast.BoolOp):
            return (yield from self._eval_boolop(node, env))
        if isinstance(node, ast.Compare):
            return (yield from self._eval_compare(node, env))
        if isinstance(node, ast.IfExp):
            return (yield from self._eval_ifexp(node, env))
        if isinstance(node, ast.Subscript):
            return (yield from self._eval_subscript(node, env))
        if isinstance(node, ast.Call):
            return (yield from self._eval_call(node, env))
        if isinstance(node, ast.Yield):
            return (yield from self._eval_yield(node, env))
        if isinstance(node, ast.YieldFrom):
            return (yield from self._eval_yield_from(node, env))
        if isinstance(node, ast.JoinedStr):
            parts = []
            rankdep = False
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    av = yield from self.eval(value.value, env)
                    rankdep |= av.rankdep
                    try:
                        parts.append(str(_deep(av)))
                    except _NotConcrete:
                        return AV(UNKNOWN, rankdep)
                elif isinstance(value, ast.Constant):
                    parts.append(str(value.value))
            return AV("".join(parts), rankdep)
        if isinstance(node, ast.Starred):
            raise _Unresolvable("starred expression")
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return (yield from self._eval_comp(node, env))
        if isinstance(node, ast.Lambda):
            return AV(UNKNOWN, False)
        if isinstance(node, ast.Slice):
            lower = upper = step = AV(None, False)
            if node.lower is not None:
                lower = yield from self.eval(node.lower, env)
            if node.upper is not None:
                upper = yield from self.eval(node.upper, env)
            if node.step is not None:
                step = yield from self.eval(node.step, env)
            try:
                return AV(slice(_deep(lower), _deep(upper), _deep(step)),
                          _taint(lower, upper, step))
            except _NotConcrete:
                return AV(UNKNOWN, _taint(lower, upper, step))
        return AV(UNKNOWN, False)

    def _eval_seq(self, node, env, kind):
        items = []
        rankdep = False
        for elt in node.elts:
            if isinstance(elt, ast.Starred):
                inner = yield from self.eval(elt.value, env)
                if inner.known and isinstance(inner.value, (tuple, list)):
                    items.extend(inner.value)
                    rankdep |= inner.rankdep
                    continue
                return AV(UNKNOWN, rankdep or inner.rankdep)
            av = yield from self.eval(elt, env)
            items.append(av)
        return AV(kind(items), rankdep)

    def _eval_dict(self, node: ast.Dict, env):
        out = {}
        rankdep = False
        for k, v in zip(node.keys, node.values):
            if k is None:
                return AV(UNKNOWN, rankdep)
            key = yield from self.eval(k, env)
            val = yield from self.eval(v, env)
            rankdep |= key.rankdep
            try:
                out[_deep(key)] = val
            except (_NotConcrete, TypeError):
                return AV(UNKNOWN, rankdep or val.rankdep)
        return AV(out, rankdep)

    def _eval_boolop(self, node: ast.BoolOp, env):
        result = None
        rankdep = False
        for i, operand in enumerate(node.values):
            av = yield from self.eval(operand, env)
            rankdep |= av.rankdep
            try:
                truthy = bool(_deep(av))
            except _NotConcrete:
                # remaining operands still evaluated above, one at a
                # time; give up on the value but keep the taint
                for rest in node.values[i + 1:]:
                    if _contains([ast.Expr(value=rest)], ast.Yield,
                                 ast.YieldFrom):
                        raise _Unresolvable(
                            "communication behind unproven short-circuit")
                    extra = yield from self.eval(rest, env)
                    rankdep |= extra.rankdep
                return AV(UNKNOWN, rankdep)
            if isinstance(node.op, ast.And) and not truthy:
                return av
            if isinstance(node.op, ast.Or) and truthy:
                return av
            result = av
        return result if result is not None else AV(UNKNOWN, rankdep)

    def _eval_compare(self, node: ast.Compare, env):
        left = yield from self.eval(node.left, env)
        rankdep = left.rankdep
        current = left
        for op, comparator in zip(node.ops, node.comparators):
            right = yield from self.eval(comparator, env)
            rankdep |= right.rankdep
            try:
                a, b = _deep(current), _deep(right)
            except _NotConcrete:
                return AV(UNKNOWN, rankdep)
            try:
                ok = self._compare_one(op, a, b)
            except Exception:
                return AV(UNKNOWN, rankdep)
            if not ok:
                return AV(False, rankdep)
            current = right
        return AV(True, rankdep)

    @staticmethod
    def _binop(op: ast.operator, left: AV, right: AV) -> AV:
        rankdep = _taint(left, right)
        try:
            a, b = _deep(left), _deep(right)
        except _NotConcrete:
            return AV(UNKNOWN, rankdep)
        try:
            if isinstance(op, ast.Add):
                return AV(a + b, rankdep)
            if isinstance(op, ast.Sub):
                return AV(a - b, rankdep)
            if isinstance(op, ast.Mult):
                return AV(a * b, rankdep)
            if isinstance(op, ast.Div):
                return AV(a / b, rankdep)
            if isinstance(op, ast.FloorDiv):
                return AV(a // b, rankdep)
            if isinstance(op, ast.Mod):
                return AV(a % b, rankdep)
            if isinstance(op, ast.Pow):
                return AV(a ** b, rankdep)
            if isinstance(op, ast.BitXor):
                return AV(a ^ b, rankdep)
            if isinstance(op, ast.BitAnd):
                return AV(a & b, rankdep)
            if isinstance(op, ast.BitOr):
                return AV(a | b, rankdep)
            if isinstance(op, ast.LShift):
                return AV(a << b, rankdep)
            if isinstance(op, ast.RShift):
                return AV(a >> b, rankdep)
        except Exception:
            raise _Unresolvable(
                "arithmetic failed on folded operands") from None
        return AV(UNKNOWN, rankdep)

    @staticmethod
    def _unary(op: ast.unaryop, operand: AV) -> AV:
        try:
            a = _deep(operand)
        except _NotConcrete:
            return AV(UNKNOWN, operand.rankdep)
        try:
            if isinstance(op, ast.USub):
                return AV(-a, operand.rankdep)
            if isinstance(op, ast.UAdd):
                return AV(+a, operand.rankdep)
            if isinstance(op, ast.Not):
                return AV(not a, operand.rankdep)
            if isinstance(op, ast.Invert):
                return AV(~a, operand.rankdep)
        except Exception:
            raise _Unresolvable(
                "unary operator failed on folded operand") from None
        return AV(UNKNOWN, operand.rankdep)

    @staticmethod
    def _compare_one(op: ast.cmpop, a, b) -> bool:
        if isinstance(op, ast.Eq):
            return a == b
        if isinstance(op, ast.NotEq):
            return a != b
        if isinstance(op, ast.Lt):
            return a < b
        if isinstance(op, ast.LtE):
            return a <= b
        if isinstance(op, ast.Gt):
            return a > b
        if isinstance(op, ast.GtE):
            return a >= b
        if isinstance(op, ast.In):
            return a in b
        if isinstance(op, ast.NotIn):
            return a not in b
        if isinstance(op, ast.Is):
            return a is b
        if isinstance(op, ast.IsNot):
            return a is not b
        raise _Unresolvable("unsupported comparison")

    def _eval_ifexp(self, node: ast.IfExp, env):
        cond = yield from self.eval(node.test, env)
        try:
            truthy = bool(_deep(cond))
        except _NotConcrete:
            truthy = None
        if truthy is None:
            arms = [ast.Expr(value=node.body),
                    ast.Expr(value=node.orelse)]
            if _contains(arms, ast.Yield, ast.YieldFrom):
                raise _Unresolvable(
                    "conditional expression with communication on "
                    "unproven condition")
            a = yield from self.eval(node.body, env)
            b = yield from self.eval(node.orelse, env)
            try:
                if _deep(a) == _deep(b):
                    return AV(a.value, _taint(cond, a, b))
            except (_NotConcrete, Exception):
                pass
            return AV(UNKNOWN, _taint(cond, a, b))
        chosen = node.body if truthy else node.orelse
        return (yield from self.eval(chosen, env))

    def _eval_subscript(self, node: ast.Subscript, env):
        obj = yield from self.eval(node.value, env)
        idx = yield from self.eval(node.slice, env)
        if not obj.known:
            return AV(UNKNOWN, _taint(obj, idx))
        try:
            key = _deep(idx)
        except _NotConcrete:
            return AV(UNKNOWN, _taint(obj, idx))
        value = obj.value
        try:
            if isinstance(value, (tuple, list)):
                item = value[key]
                if isinstance(key, slice):
                    return AV(item, obj.rankdep)
                return _wrap(item, obj.rankdep)
            if isinstance(value, dict):
                return _wrap(value[key], obj.rankdep)
            if isinstance(value, (str, range)):
                return AV(value[key], _taint(obj, idx))
        except Exception:
            raise _Unresolvable("indexing error in skeleton") from None
        return AV(UNKNOWN, _taint(obj, idx))

    def _eval_comp(self, node, env):
        """List/set/dict comprehensions and generator expressions over
        provably concrete iterables; anything else is UNKNOWN."""
        scope = dict(env)

        def gens(i: int):
            if i == len(node.generators):
                if isinstance(node, ast.DictComp):
                    k = yield from self.eval(node.key, scope)
                    v = yield from self.eval(node.value, scope)
                    out.append((k, v))
                else:
                    out.append((yield from self.eval(node.elt, scope)))
                return
            gen = node.generators[i]
            iterable = yield from self.eval(gen.iter, scope)
            if not iterable.known or not isinstance(
                    iterable.value, (list, tuple, range, dict, set,
                                     frozenset)):
                raise _NotConcrete()
            for item in list(iterable.value)[:UNROLL_CAP * 4]:
                self._assign(gen.target,
                             _wrap(item, iterable.rankdep), scope)
                keep = True
                for cond in gen.ifs:
                    c = yield from self.eval(cond, scope)
                    keep = bool(_deep(c))
                    if not keep:
                        break
                if keep:
                    yield from gens(i + 1)

        out: list = []
        try:
            yield from gens(0)
        except _NotConcrete:
            return AV(UNKNOWN, False)
        if isinstance(node, ast.DictComp):
            try:
                return AV({_deep(k): v for k, v in out}, False)
            except (_NotConcrete, TypeError):
                return AV(UNKNOWN, False)
        if isinstance(node, ast.SetComp):
            try:
                return AV(frozenset(_deep(v) for v in out), False)
            except (_NotConcrete, TypeError):
                return AV(UNKNOWN, False)
        return AV([v for v in out] if isinstance(node, ast.ListComp)
                  else tuple(out), False)

    # -- names, attributes, calls ---------------------------------------------

    def _load_name(self, name: str, env: dict[str, AV]) -> AV:
        if name in env:
            return env[name]
        menv = self.index.module_env(self.relpath)
        if name in menv:
            return menv[name]
        target = self.index.aliases.get(self.relpath, {}).get(name)
        if target is not None:
            return self._external(target)
        if name in _BUILTINS:
            return AV(("builtin", name), False)
        if self.index.resolve(self.relpath, name) is not None:
            return AV(("fn", name), False)
        return AV(UNKNOWN, False)

    def _external(self, dotted: str) -> AV:
        """An imported name, canonicalised; only pure, well-known
        origins fold to concrete values."""
        parts = dotted.split(".")
        if parts[-1] == "Phantom":
            return AV(("phantom",), False)
        if "units" in parts[:-1] or (len(parts) == 2 and
                                     parts[0] == "units"):
            try:
                from .. import units as _units
                value = getattr(_units, parts[-1])
            except AttributeError:
                return AV(UNKNOWN, False)
            if isinstance(value, (int, float, str)):
                return AV(value, False)
            return AV(UNKNOWN, False)
        if parts[0] == "math":
            value = getattr(math, parts[-1], None)
            if isinstance(value, float):
                return AV(value, False)
            if callable(value):
                return AV(("mathfn", parts[-1]), False)
            return AV(UNKNOWN, False)
        if parts[0] == "numpy" and parts[-1] in (
                "sqrt", "floor", "ceil", "log", "log2", "exp"):
            # scalar numpy math folds like math.* on concrete args
            return AV(("mathfn", parts[-1]), False)
        if self.index.resolve(self.relpath, dotted) is not None:
            return AV(("fn", dotted), False)
        return AV(UNKNOWN, False)

    def _eval_attribute(self, node: ast.Attribute, env):
        # math.fn / module.helper style dotted loads first
        dotted = _dotted(node)
        if dotted is not None:
            head = dotted.split(".")[0]
            if head not in env:
                alias = self.index.aliases.get(self.relpath, {}).get(head)
                if alias is not None:
                    return self._external(
                        ".".join([alias] + dotted.split(".")[1:]))
        obj = yield from self.eval(node.value, env)
        if not obj.known:
            return AV(UNKNOWN, obj.rankdep)
        value = obj.value
        if isinstance(value, SymComm):
            if node.attr == "rank":
                return AV(value.rank, True)
            if node.attr == "size":
                return AV(value.size, value.comm_id != 0)
            if node.attr == "members":
                return AV(value.members, value.comm_id != 0)
            if node.attr == "comm_id":
                return AV(value.comm_id, False)
            if node.attr in COMM_METHODS:
                return AV(("commop", value, node.attr), False)
            raise _Unresolvable(f"unknown Comm attribute {node.attr!r}")
        if isinstance(value, PhantomV):
            if node.attr == "nbytes":
                return _wrap(value.nbytes, obj.rankdep)
            return AV(UNKNOWN, obj.rankdep)
        if isinstance(value, (list, dict, set, str, tuple)):
            return AV(("method", obj, node.attr), obj.rankdep)
        return AV(UNKNOWN, obj.rankdep)

    def _eval_call(self, node: ast.Call, env):
        func = yield from self.eval(node.func, env)
        args: list[AV] = []
        for a in node.args:
            if isinstance(a, ast.Starred):
                inner = yield from self.eval(a.value, env)
                if inner.known and isinstance(inner.value,
                                              (tuple, list)):
                    args.extend(_wrap(v, inner.rankdep)
                                for v in inner.value)
                    continue
                return AV(UNKNOWN, True)
            args.append((yield from self.eval(a, env)))
        kwargs: dict[str, AV] = {}
        for kw in node.keywords:
            if kw.arg is None:
                return AV(UNKNOWN, True)
            kwargs[kw.arg] = yield from self.eval(kw.value, env)
        if not func.known:
            return AV(UNKNOWN,
                      func.rankdep or _taint(*args) or
                      _taint(*kwargs.values()))
        target = func.value
        if isinstance(target, tuple) and target and \
                target[0] == "commop":
            _, symcomm, mname = target
            return self._comm_call(symcomm, mname, args, kwargs, node)
        if isinstance(target, tuple) and target and \
                target[0] == "phantom":
            size = args[0] if args else kwargs.get("nbytes",
                                                   AV(UNKNOWN, False))
            return AV(PhantomV(size), size.rankdep)
        if isinstance(target, tuple) and target and \
                target[0] == "builtin":
            return self._apply_concrete(_BUILTINS[target[1]], args,
                                        kwargs)
        if isinstance(target, tuple) and target and \
                target[0] == "mathfn":
            return self._apply_concrete(getattr(math, target[1]), args,
                                        kwargs)
        if isinstance(target, tuple) and target and \
                target[0] == "method":
            return self._apply_method(target[1], target[2], args,
                                      kwargs)
        if isinstance(target, tuple) and target and target[0] == "fn":
            resolved = self.index.resolve(self.relpath, target[1])
            if resolved is None:
                return AV(UNKNOWN, _taint(*args))
            relpath, fnnode = resolved
            if _is_generator(fnnode):
                # a generator called without ``yield from`` is an
                # opaque generator object
                return AV(UNKNOWN, _taint(*args))
            return (yield from self._call_plain(fnnode, relpath, args,
                                                kwargs))
        return AV(UNKNOWN, _taint(*args))

    def _apply_concrete(self, fn, args: list[AV],
                        kwargs: dict[str, AV]) -> AV:
        rankdep = (_taint(*args) or _taint(*kwargs.values()) or
                   any(_deep_taint(a) for a in args))
        try:
            concrete_args = [_deep(a) for a in args]
            concrete_kwargs = {k: _deep(v) for k, v in kwargs.items()}
        except _NotConcrete:
            return AV(UNKNOWN, rankdep)
        try:
            result = fn(*concrete_args, **concrete_kwargs)
        except Exception:
            raise _Unresolvable(
                f"{getattr(fn, '__name__', fn)}() failed on folded "
                f"arguments") from None
        if isinstance(result, (enumerate, zip, reversed)):
            result = list(result)
        return AV(result, rankdep)

    def _apply_method(self, obj: AV, name: str, args: list[AV],
                      kwargs: dict[str, AV]) -> AV:
        value = obj.value
        if name in _MUTATORS:
            method = getattr(value, name, None)
            if method is None:
                return AV(UNKNOWN, obj.rankdep)
            try:
                method(*args) if len(args) != 1 else method(args[0])
            except Exception:
                return AV(UNKNOWN, obj.rankdep)
            return AV(None, False)
        method = getattr(value, name, None)
        if method is None or not callable(method):
            return AV(UNKNOWN, obj.rankdep)
        av = self._apply_concrete(method, args, kwargs)
        return AV(av.value, av.rankdep or obj.rankdep or
                  _deep_taint(obj))

    def _call_plain(self, fnnode: ast.FunctionDef, relpath: str,
                    args: list[AV], kwargs: dict[str, AV]):
        """Inline a project-local plain function."""
        self.depth += 1
        if self.depth > MAX_DEPTH:
            self.depth -= 1
            raise _Unresolvable("call depth exceeded")
        prev = self.relpath
        self.relpath = relpath
        try:
            env = dict(self.index.module_env(relpath))
            self._bind_params(fnnode, args, kwargs, env)
            try:
                yield from self.exec_block(fnnode.body, env)
            except _Return as ret:
                return ret.value
            return AV(None, False)
        finally:
            self.relpath = prev
            self.depth -= 1

    def _bind_params(self, fnnode: ast.FunctionDef, args: list[AV],
                     kwargs: dict[str, AV], env: dict[str, AV]) -> None:
        params = fnnode.args.posonlyargs + fnnode.args.args
        if fnnode.args.vararg or fnnode.args.kwarg:
            raise _Unresolvable("*args/**kwargs in inlined helper")
        defaults = fnnode.args.defaults
        split = len(params) - len(defaults)
        for i, param in enumerate(params):
            if i < len(args):
                env[param.arg] = args[i]
            elif param.arg in kwargs:
                env[param.arg] = kwargs.pop(param.arg)
            elif i >= split:
                env[param.arg] = _drive(self.eval(defaults[i - split],
                                                  env))
            else:
                raise _Unresolvable(
                    f"missing argument {param.arg!r} in inlined call")
        kw_defaults = fnnode.args.kw_defaults
        for param, default in zip(fnnode.args.kwonlyargs, kw_defaults):
            if param.arg in kwargs:
                env[param.arg] = kwargs.pop(param.arg)
            elif default is not None:
                env[param.arg] = _drive(self.eval(default, env))
            else:
                raise _Unresolvable(
                    f"missing keyword argument {param.arg!r}")

    # -- yields ---------------------------------------------------------------

    def _eval_yield(self, node: ast.Yield, env):
        value = AV(None, False)
        if node.value is not None:
            value = yield from self.eval(node.value, env)
        ops, batch = self._as_ops(value)
        result = yield _Post(ops, batch)
        return result

    def _eval_yield_from(self, node: ast.YieldFrom, env):
        inner = node.value
        if isinstance(inner, ast.Call):
            func = yield from self.eval(inner.func, env)
            if func.known and isinstance(func.value, tuple) and \
                    func.value and func.value[0] == "fn":
                resolved = self.index.resolve(self.relpath,
                                              func.value[1])
                if resolved is not None and _is_generator(resolved[1]):
                    args = []
                    for a in inner.args:
                        if isinstance(a, ast.Starred):
                            raise _Unresolvable(
                                "starred args in delegated call")
                        args.append((yield from self.eval(a, env)))
                    kwargs = {}
                    for kw in inner.keywords:
                        if kw.arg is None:
                            raise _Unresolvable(
                                "**kwargs in delegated call")
                        kwargs[kw.arg] = yield from self.eval(kw.value,
                                                              env)
                    return (yield from self._call_generator(
                        resolved[1], resolved[0], args, kwargs))
        raise _Unresolvable("yield from a non-inlinable generator")

    def _call_generator(self, fnnode: ast.FunctionDef, relpath: str,
                        args: list[AV], kwargs: dict[str, AV]):
        self.depth += 1
        if self.depth > MAX_DEPTH:
            self.depth -= 1
            raise _Unresolvable("call depth exceeded")
        prev = self.relpath
        self.relpath = relpath
        try:
            env = dict(self.index.module_env(relpath))
            self._bind_params(fnnode, args, kwargs, env)
            try:
                yield from self.exec_block(fnnode.body, env)
            except _Return as ret:
                return ret.value
            return AV(None, False)
        finally:
            self.relpath = prev
            self.depth -= 1

    def _as_ops(self, value: AV) -> tuple[list[SOp], bool]:
        if value.known and isinstance(value.value, SOp):
            return [value.value], False
        if value.known and isinstance(value.value, (tuple, list)):
            ops = []
            for item in value.value:
                item = item.value if isinstance(item, AV) else item
                if not isinstance(item, SOp):
                    raise _Unresolvable(
                        "yielded batch contains an unresolvable op")
                ops.append(item)
            return ops, True
        raise _Unresolvable("yielded an unresolvable op")

    # -- op construction ------------------------------------------------------

    def _comm_call(self, symcomm: SymComm, mname: str, args: list[AV],
                   kwargs: dict[str, AV], node: ast.Call) -> AV:
        spec = COMM_METHODS[mname]
        bound: dict[str, AV] = {}
        params = spec["params"]
        if len(args) > len(params):
            raise _Unresolvable(f"too many arguments to comm.{mname}")
        for name, av in zip(params, args):
            bound[name] = av
        for name, av in kwargs.items():
            if name not in params:
                raise _Unresolvable(
                    f"unknown argument {name!r} to comm.{mname}")
            bound[name] = av
        for name, default in spec["defaults"].items():
            bound.setdefault(name, AV(default, False))
        for name in params:
            if name not in bound:
                raise _Unresolvable(
                    f"missing argument {name!r} to comm.{mname}")
        kind = spec["kind"]
        site = (self.relpath, getattr(node, "lineno", 1))
        op = SOp(kind=kind, comm=symcomm, site=site)
        if kind in ("compute", "elapse"):
            op.comm = None
            return AV(op, False)
        if kind in ("send", "isend"):
            op.dest = self._peer(symcomm, bound["dest"])
            op.tag = self._tag(bound["tag"])
            op.payload = bound["payload"]
            return AV(op, False)
        if kind in ("recv", "irecv"):
            op.source = self._peer(symcomm, bound["source"])
            op.tag = self._tag(bound["tag"])
            return AV(op, False)
        if kind == "sendrecv":
            op.dest = self._peer(symcomm, bound["dest"])
            op.source = self._peer(symcomm, bound["source"])
            op.tag = self._tag(bound["tag"])
            op.payload = bound["payload"]
            return AV(op, False)
        if kind == "exchange":
            op.tag = self._tag(bound["tag"])
            sends = bound["sends"]
            recvs = bound["recvs"]
            if not sends.known or not recvs.known or not \
                    isinstance(sends.value, (tuple, list)) or not \
                    isinstance(recvs.value, (tuple, list)):
                raise _Unresolvable("exchange lists are unresolvable")
            pairs = []
            for item in sends.value:
                item = item.value if isinstance(item, AV) else item
                if not isinstance(item, (tuple, list)) or \
                        len(item) != 2:
                    raise _Unresolvable("malformed exchange send pair")
                dest, payload = item
                pairs.append((self._peer(symcomm, _wrap(dest)),
                              payload))
            op.sends = tuple(pairs)
            op.recvs = tuple(self._peer(symcomm, _wrap(s))
                             for s in recvs.value)
            return AV(op, False)
        if kind in ("wait", "waitall"):
            if kind == "wait":
                op.requests = (bound["request"],)
            else:
                reqs = bound["requests"]
                if not reqs.known or not isinstance(reqs.value,
                                                    (tuple, list)):
                    raise _Unresolvable("waitall on unresolvable list")
                op.requests = tuple(reqs.value)
            return AV(op, False)
        if kind == "split":
            op.color = bound["color"]
            op.key = bound["key"]
            return AV(op, False)
        # collectives
        op.label = ""
        op.payload = bound.get("payload", bound.get("payloads"))
        if kind in REDUCING_KINDS:
            opname = bound["op"]
            try:
                op.reduce_op = str(_deep(opname))
            except _NotConcrete:
                raise _Unresolvable(
                    "reduce op is unresolvable") from None
        if kind in ROOTED_KINDS:
            op.root = self._peer(symcomm, bound["root"])
        if kind == "alltoall":
            payload = op.payload
            if isinstance(payload, AV) and payload.known and \
                    isinstance(payload.value, (tuple, list)) and \
                    len(payload.value) != symcomm.size:
                raise _Unresolvable("alltoall payload count mismatch")
        return AV(op, False)

    @staticmethod
    def _peer(symcomm: SymComm, av: AV) -> int:
        try:
            value = _deep(av)
        except _NotConcrete:
            raise _Unresolvable("peer rank is unresolvable") from None
        if isinstance(value, bool) or not isinstance(value, int):
            if isinstance(value, float) and value.is_integer():
                value = int(value)
            else:
                raise _Unresolvable(f"peer rank {value!r} is not an int")
        if not 0 <= value < symcomm.size:
            # the facade raises at construction; a crash, not a
            # protocol bug -- stay quiet at this size
            raise _Unresolvable(
                f"peer {value} outside communicator of size "
                f"{symcomm.size}")
        return value

    @staticmethod
    def _tag(av: AV) -> int:
        try:
            value = _deep(av)
        except _NotConcrete:
            raise _Unresolvable("tag is unresolvable") from None
        if isinstance(value, bool) or not isinstance(value, int) or \
                value < 0:
            raise _Unresolvable(f"invalid tag {value!r}")
        return value


def _dotted(node: ast.AST) -> str | None:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# findings


@dataclass
class ProtocolFinding:
    """One statically derived protocol violation."""

    rule_id: str
    relpath: str
    line: int
    message: str
    program: str = ""
    program_relpath: str = ""
    program_line: int = 0
    nranks: int = 0
    trace: list[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# the replay simulator


class _Msg:
    __slots__ = ("payload", "nbytes", "site", "consumed", "eager",
                 "src_local", "dst_local")

    def __init__(self, payload, nbytes, site, eager, src_local,
                 dst_local):
        self.payload = payload
        self.nbytes = nbytes
        self.site = site
        self.eager = eager
        self.consumed = False
        self.src_local = src_local
        self.dst_local = dst_local


class _RecvSlot:
    __slots__ = ("done", "payload", "site", "src_local", "dst_local")

    def __init__(self, site, src_local, dst_local):
        self.done = False
        self.payload = AV(UNKNOWN, True)
        self.site = site
        self.src_local = src_local
        self.dst_local = dst_local


class _GroupWait:
    __slots__ = ("done", "result")

    def __init__(self):
        self.done = False
        self.result = AV(None, False)


@dataclass(frozen=True)
class SReqV:
    """Abstract request handle resumed from isend/irecv."""

    is_send: bool
    part: Any            # _Msg or _RecvSlot
    op: SOp


class _Slot:
    """One posted op of a batch and its completion dependencies."""

    __slots__ = ("op", "parts", "result", "immediate")

    def __init__(self, op: SOp):
        self.op = op
        self.parts: list = []
        self.result: AV = AV(None, False)
        self.immediate = False

    def satisfied(self) -> bool:
        if self.immediate:
            return True
        for part in self.parts:
            if isinstance(part, _Msg):
                if not (part.eager or part.consumed):
                    return False
            elif isinstance(part, _RecvSlot):
                if not part.done:
                    return False
            elif isinstance(part, _GroupWait):
                if not part.done:
                    return False
        return True


class _Rank:
    __slots__ = ("gen", "slots", "batch", "done", "failed", "started")

    def __init__(self, gen):
        self.gen = gen
        self.slots: list[_Slot] = []
        self.batch = False
        self.done = False
        self.failed = False
        self.started = False


class _ReplayAbort(Exception):
    """Replay produced verdicts; stop this (program, size)."""


class Replay:
    """Lockstep abstract replay of one program at one size, mirroring
    the engine's matching semantics."""

    def __init__(self, nranks: int) -> None:
        self.n = nranks
        self.ranks: list[_Rank] = []
        self.chan: dict = {}
        self.prq: dict = {}
        self.colls: dict = {}
        self.cseq: dict = {}
        self.xseq: dict = {}
        self.xgroups: dict = {}
        self.next_comm_id = 1
        self.events: list[ProtocolFinding] = []
        self._event_keys: set = set()

    # -- events ---------------------------------------------------------------

    def _event(self, rule_id: str, site: tuple[str, int], message: str,
               trace: list[str] | None = None) -> None:
        key = (rule_id, site)
        if key in self._event_keys:
            return
        self._event_keys.add(key)
        self.events.append(ProtocolFinding(
            rule_id=rule_id, relpath=site[0], line=site[1],
            message=message, nranks=self.n, trace=list(trace or ())))

    # -- driving --------------------------------------------------------------

    def run(self, generators: list) -> None:
        self.ranks = [_Rank(gen) for gen in generators]
        progress = True
        while progress:
            progress = False
            for r, rank in enumerate(self.ranks):
                if self._advance(r):
                    progress = True
            if all(rank.done for rank in self.ranks):
                self._at_exit()
                return
        self._classify_stuck()

    def _advance(self, r: int) -> bool:
        rank = self.ranks[r]
        moved = False
        while not rank.done:
            if rank.started and not all(s.satisfied()
                                        for s in rank.slots):
                break
            if not rank.started:
                rank.started = True
                payload = None
            else:
                results = [self._slot_result(s) for s in rank.slots]
                payload = (AV(tuple(results), _taint(*results))
                           if rank.batch else
                           (results[0] if results else AV(None, False)))
            try:
                post = (rank.gen.send(payload) if payload is not None
                        or rank.started and rank.slots
                        else next(rank.gen))
            except StopIteration:
                rank.done = True
                rank.slots = []
                moved = True
                break
            moved = True
            rank.slots = []
            rank.batch = post.batch
            self._check_batch_collisions(r, post.ops)
            for op in post.ops:
                rank.slots.append(self._post(r, op))
        return moved

    def _slot_result(self, slot: _Slot) -> AV:
        # results are derived at resume time: completion mutates the
        # shared _RecvSlot/_GroupWait parts, not the (frozen) AVs
        op = slot.op
        if op.kind == "recv":
            return slot.parts[0].payload
        if op.kind == "sendrecv":
            return slot.parts[1].payload
        if op.kind == "wait":
            part = slot.parts[0]
            return (part.payload if isinstance(part, _RecvSlot)
                    else AV(None, False))
        if op.kind == "waitall":
            values = tuple(
                part.payload if isinstance(part, _RecvSlot)
                else AV(None, False) for part in slot.parts)
            return AV(values, True)
        for part in slot.parts:
            if isinstance(part, _GroupWait):
                return part.result
        return slot.result

    # -- posting --------------------------------------------------------------

    def _post(self, r: int, op: SOp) -> _Slot:
        slot = _Slot(op)
        kind = op.kind
        if kind in ("compute", "elapse"):
            slot.immediate = True
            return slot
        comm = op.comm
        my_local = comm.rank
        if kind in ("send", "isend"):
            msg = self._send(op, my_local, op.dest)
            if kind == "send":
                slot.parts.append(msg)
            else:
                slot.immediate = True
                slot.result = AV(SReqV(True, msg, op), True)
            return slot
        if kind in ("recv", "irecv"):
            rslot = self._recv(op, op.source, my_local)
            if kind == "recv":
                slot.parts.append(rslot)
                slot.result = AV(UNKNOWN, True)
            else:
                slot.immediate = True
                slot.result = AV(SReqV(False, rslot, op), True)
            return slot
        if kind == "sendrecv":
            msg = self._send(op, my_local, op.dest)
            rslot = self._recv(op, op.source, my_local)
            slot.parts.extend([msg, rslot])
            slot.result = AV(UNKNOWN, True)
            return slot
        if kind in ("wait", "waitall"):
            reqs = []
            for req in op.requests:
                value = req.value if isinstance(req, AV) else req
                if not isinstance(value, SReqV):
                    raise _Unresolvable("waiting on a non-request")
                reqs.append(value)
            for req in reqs:
                slot.parts.append(req.part)
            slot.result = AV(UNKNOWN, True)
            return slot
        if kind == "exchange":
            self._post_exchange(r, op, slot)
            return slot
        # collectives (incl. split)
        self._post_collective(r, op, slot)
        return slot

    def _send(self, op: SOp, src_local: int, dst_local: int) -> _Msg:
        comm = op.comm
        nbytes = _abstract_nbytes(op.payload)
        eager = nbytes is None or nbytes <= EAGER_LIMIT
        msg = _Msg(op.payload, nbytes, op.site, eager, src_local,
                   dst_local)
        key = (comm.comm_id, src_local, dst_local, op.tag)
        pending = self.prq.get(key)
        if pending:
            rslot = pending.popleft()
            self._match(msg, rslot)
        else:
            self.chan.setdefault(key, deque()).append(msg)
        return msg

    def _recv(self, op: SOp, src_local: int, dst_local: int) -> _RecvSlot:
        comm = op.comm
        rslot = _RecvSlot(op.site, src_local, dst_local)
        key = (comm.comm_id, src_local, dst_local, op.tag)
        queued = self.chan.get(key)
        if queued:
            msg = queued.popleft()
            self._match(msg, rslot)
        else:
            self.prq.setdefault(key, deque()).append(rslot)
        return rslot

    @staticmethod
    def _match(msg: _Msg, rslot: _RecvSlot) -> None:
        msg.consumed = True
        rslot.done = True
        payload = msg.payload
        if isinstance(payload, AV):
            rslot.payload = AV(payload.value, True)
        else:
            rslot.payload = AV(payload, True)

    # -- collectives ----------------------------------------------------------

    def _post_collective(self, r: int, op: SOp, slot: _Slot) -> None:
        comm = op.comm
        seq = self.cseq.get((r, comm.comm_id), 0)
        self.cseq[(r, comm.comm_id)] = seq + 1
        gw = _GroupWait()
        slot.parts.append(gw)
        key = (comm.comm_id, seq)
        group = self.colls.setdefault(key, {})
        group[comm.rank] = (op, gw, r)
        if len(group) == comm.size:
            self._complete_collective(key, group)
        slot.result = gw.result

    def _complete_collective(self, key, group) -> None:
        ops = [group[local][0] for local in sorted(group)]
        kinds = {op.kind for op in ops}
        if len(kinds) > 1:
            by_kind = {}
            for local in sorted(group):
                by_kind.setdefault(group[local][0].kind,
                                   []).append(local)
            parts = "; ".join(
                f"{kind} at {group[locals_[0]][0].site[0]}:"
                f"{group[locals_[0]][0].site[1]} (local ranks "
                f"{locals_})" for kind, locals_ in sorted(
                    by_kind.items()))
            self._event(
                "COMM502", ops[0].site,
                f"collective order diverges across ranks of one "
                f"communicator: sequence position {key[1]} mixes "
                f"{parts}",
                trace=[f"communicator id {key[0]}, "
                       f"sequence position {key[1]}"])
            raise _ReplayAbort()
        kind = ops[0].kind
        if kind in REDUCING_KINDS:
            reduce_ops = {op.reduce_op for op in ops}
            if len(reduce_ops) > 1:
                self._event(
                    "COMM505", ops[0].site,
                    f"{kind} reduce op diverges across ranks: "
                    f"{sorted(reduce_ops)}",
                    trace=[f"sequence position {key[1]}"])
                raise _ReplayAbort()
        if kind in ROOTED_KINDS:
            roots = {op.root for op in ops}
            if len(roots) > 1:
                self._event(
                    "COMM505", ops[0].site,
                    f"{kind} root is not consistent across ranks "
                    f"(derived roots {sorted(roots)}); rooted "
                    f"collectives need one rank-invariant root",
                    trace=[f"sequence position {key[1]}"])
                raise _ReplayAbort()
        if kind == "split":
            self._complete_split(group)
            return
        results = self._collective_results(kind, group)
        for local in group:
            _op, gw, _r = group[local]
            gw.done = True
            gw.result = results[local]

    def _collective_results(self, kind: str, group) -> dict[int, AV]:
        locals_ = sorted(group)
        payloads = {local: group[local][0].payload for local in locals_}
        out: dict[int, AV] = {}
        if kind == "barrier":
            return {local: AV(None, False) for local in locals_}
        if kind == "allreduce":
            op0 = group[locals_[0]][0]
            try:
                values = [_deep(payloads[local]) for local in locals_]
                if all(isinstance(v, (int, float)) and not
                       isinstance(v, bool) for v in values):
                    fn = {"sum": sum, "min": min, "max": max}.get(
                        op0.reduce_op)
                    if fn is not None:
                        total = fn(values)
                        return {local: AV(total, False)
                                for local in locals_}
            except _NotConcrete:
                pass
            return {local: AV(UNKNOWN, False) for local in locals_}
        if kind == "allgather":
            gathered = tuple(_wrap(payloads[local], True)
                             for local in locals_)
            return {local: AV(gathered, False) for local in locals_}
        if kind == "bcast":
            root = group[locals_[0]][0].root
            rootval = payloads.get(root)
            value = rootval.value if isinstance(rootval, AV) \
                else rootval
            return {local: AV(value, False) for local in locals_}
        if kind == "reduce":
            root = group[locals_[0]][0].root
            for local in locals_:
                out[local] = (AV(UNKNOWN, True) if local == root
                              else AV(None, True))
            return out
        if kind == "gather":
            root = group[locals_[0]][0].root
            gathered = tuple(_wrap(payloads[local], True)
                             for local in locals_)
            for local in locals_:
                out[local] = (AV(gathered, True) if local == root
                              else AV(None, True))
            return out
        if kind == "scatter":
            root = group[locals_[0]][0].root
            rootval = payloads.get(root)
            items = rootval.value if isinstance(rootval, AV) \
                else rootval
            for local in locals_:
                if isinstance(items, (tuple, list)) and \
                        len(items) == len(locals_):
                    out[local] = _wrap(items[local], True)
                else:
                    out[local] = AV(UNKNOWN, True)
            return out
        # alltoall
        for local in locals_:
            out[local] = AV(UNKNOWN, True)
        return out

    def _complete_split(self, group) -> None:
        locals_ = sorted(group)
        colors: dict[int, tuple] = {}
        for local in locals_:
            op = group[local][0]
            try:
                color_key = _deep(op.color), _deep(op.key)
            except _NotConcrete:
                raise _Unresolvable("split color/key unresolvable") \
                    from None
            color, key = color_key
            if key is None:
                key = local
            colors[local] = (color, key)
        parent = group[locals_[0]][0].comm
        by_color: dict = {}
        for local in locals_:
            by_color.setdefault(colors[local][0], []).append(local)
        for color in sorted(by_color, key=repr):
            members_local = sorted(
                by_color[color],
                key=lambda lo: (colors[lo][1], lo))
            members_world = tuple(parent.members[lo]
                                  for lo in members_local)
            comm_id = self.next_comm_id
            self.next_comm_id += 1
            for newrank, lo in enumerate(members_local):
                op, gw, _r = group[lo]
                gw.done = True
                gw.result = AV(SymComm(comm_id, newrank,
                                       members_world), True)

    # -- exchange rounds ------------------------------------------------------

    def _post_exchange(self, r: int, op: SOp, slot: _Slot) -> None:
        comm = op.comm
        rnd = self.xseq.get((r, comm.comm_id, op.tag), 0)
        self.xseq[(r, comm.comm_id, op.tag)] = rnd + 1
        gw = _GroupWait()
        slot.parts.append(gw)
        key = (comm.comm_id, op.tag, rnd)
        group = self.xgroups.setdefault(key, {})
        group[comm.rank] = (op, gw)
        self._sweep_exchanges(key)
        slot.result = gw.result

    @staticmethod
    def _x_touched(op: SOp) -> set[int]:
        return {d for d, _ in op.sends} | set(op.recvs)

    def _sweep_exchanges(self, key) -> None:
        group = self.xgroups[key]
        for local in sorted(group):
            op, gw = group[local]
            if gw.done:
                continue
            ready = True
            for peer in sorted(self._x_touched(op)):
                if peer not in group:
                    ready = False
                    continue
                peer_op = group[peer][0]
                s_out = sum(1 for d, _ in op.sends if d == peer)
                r_in = sum(1 for s in peer_op.recvs if s == local)
                s_in = sum(1 for d, _ in peer_op.sends if d == local)
                r_out = sum(1 for s in op.recvs if s == peer)
                if s_out != r_in or s_in != r_out:
                    self._event(
                        "COMM506", op.site,
                        f"exchange transfer counts disagree between "
                        f"local ranks {local} and {peer} on tag "
                        f"{op.tag}: {local} sends {s_out} / expects "
                        f"{r_out}, {peer} sends {s_in} / expects "
                        f"{r_in}",
                        trace=[f"round {key[2]} on communicator "
                               f"{key[0]}",
                               f"counterpart at {peer_op.site[0]}:"
                               f"{peer_op.site[1]}"])
                    raise _ReplayAbort()
            if ready:
                gw.done = True
                gw.result = AV(tuple(AV(UNKNOWN, True)
                                     for _ in op.recvs), True)

    # -- COMM504: concurrent-channel collisions -------------------------------

    def _check_batch_collisions(self, r: int, ops: list[SOp]) -> None:
        seen: dict = {}
        for op in ops:
            keys = []
            comm = op.comm
            if op.kind in ("send", "isend"):
                keys.append(("s", comm.comm_id, comm.rank, op.dest,
                             op.tag))
            elif op.kind in ("recv", "irecv"):
                keys.append(("r", comm.comm_id, op.source, comm.rank,
                             op.tag))
            elif op.kind == "sendrecv":
                keys.append(("s", comm.comm_id, comm.rank, op.dest,
                             op.tag))
                keys.append(("r", comm.comm_id, op.source, comm.rank,
                             op.tag))
            elif op.kind == "exchange":
                keys.append(("x", comm.comm_id, op.tag))
            for key in keys:
                prev = seen.get(key)
                if prev is not None and prev is not op:
                    what = ("concurrent exchanges share"
                            if key[0] == "x" else
                            "two concurrent point-to-point transfers "
                            "share")
                    self._event(
                        "COMM504", op.site,
                        f"{what} one (communicator, "
                        f"{'tag' if key[0] == 'x' else 'channel, tag'}"
                        f") in a single batch; the tag no longer "
                        f"discriminates the messages (matching falls "
                        f"back to posting order)",
                        trace=[f"first use at {prev.site[0]}:"
                               f"{prev.site[1]}",
                               f"colliding key {key}"])
                else:
                    seen[key] = op

    # -- termination ----------------------------------------------------------

    def _at_exit(self) -> None:
        for key, queue in sorted(self.chan.items(),
                                 key=lambda kv: repr(kv[0])):
            for msg in queue:
                if not msg.consumed:
                    self._event(
                        "COMM506", msg.site,
                        f"send on tag {key[3]} (local {key[1]} -> "
                        f"{key[2]}) is never received: every rank "
                        f"terminated with the message still queued",
                        trace=[f"channel {key}"])

    def _classify_stuck(self) -> None:
        blocked = {r: rank for r, rank in enumerate(self.ranks)
                   if not rank.done}
        edges: dict[int, set[int]] = {}
        p2p_edges: dict[int, set[int]] = {}
        sites: dict[int, tuple[str, int]] = {}
        for r, rank in blocked.items():
            waits: set[int] = set()
            pw: set[int] = set()
            for slot in rank.slots:
                if slot.satisfied():
                    continue
                op = slot.op
                sites.setdefault(r, op.site)
                for part in slot.parts:
                    if isinstance(part, _Msg) and not part.eager and \
                            not part.consumed:
                        peer = op.comm.members[part.dst_local]
                        waits.add(peer)
                        pw.add(peer)
                        self._p2p_stuck(r, op, part.dst_local,
                                        is_send=True)
                    elif isinstance(part, _RecvSlot) and not part.done:
                        peer = op.comm.members[part.src_local]
                        waits.add(peer)
                        pw.add(peer)
                        self._p2p_stuck(r, op, part.src_local,
                                        is_send=False)
                    elif isinstance(part, _GroupWait) and \
                            not part.done:
                        waits |= self._group_waits(r, slot)
            edges[r] = waits
            p2p_edges[r] = pw
        if self.events:
            return
        # no terminated-peer or collective verdicts: a wait-for cycle
        # among blocked ranks is a genuine deadlock
        cycle = self._find_cycle(
            {r: {p for p in peers if p in blocked}
             for r, peers in edges.items()})
        if cycle:
            chain = []
            for r in cycle:
                rank = self.ranks[r]
                pending = [s.op.describe() for s in rank.slots
                           if not s.satisfied()]
                chain.append(f"rank {r} blocked at "
                             f"{'; '.join(pending)}")
            anchor = sites.get(cycle[0])
            self._event(
                "COMM503", anchor,
                f"send/recv wait-for cycle across ranks "
                f"{list(cycle)}: no rank can progress (deadlock)",
                trace=chain)

    def _p2p_stuck(self, r: int, op: SOp, peer_local: int, *,
                   is_send: bool) -> None:
        peer_world = op.comm.members[peer_local]
        if self.ranks[peer_world].done:
            what = "send" if is_send else "receive"
            other = "receive" if is_send else "send"
            self._event(
                "COMM506", op.site,
                f"{what} on tag {op.tag} can never complete: local "
                f"rank {peer_local} already terminated without the "
                f"matching {other} (orphan endpoint)",
                trace=[f"blocked world rank {r}",
                       f"peer world rank {peer_world} terminated"])

    def _group_waits(self, r: int, slot: _Slot) -> set[int]:
        op = slot.op
        comm = op.comm
        waits: set[int] = set()
        if op.kind == "exchange":
            rnd = self.xseq[(r, comm.comm_id, op.tag)] - 1
            group = self.xgroups.get((comm.comm_id, op.tag, rnd), {})
            for peer in sorted(self._x_touched(op)):
                if peer not in group:
                    world = comm.members[peer]
                    waits.add(world)
                    if self.ranks[world].done:
                        self._event(
                            "COMM506", op.site,
                            f"exchange on tag {op.tag} waits for "
                            f"local rank {peer}, which terminated "
                            f"without posting its round (orphan "
                            f"exchange endpoint)",
                            trace=[f"round {rnd}"])
            return waits
        # collective: find the group this rank is parked in
        seq = self.cseq[(r, comm.comm_id)] - 1
        group = self.colls.get((comm.comm_id, seq), {})
        missing = [lo for lo in range(comm.size) if lo not in group]
        done_missing = [lo for lo in missing
                        if self.ranks[comm.members[lo]].done]
        live_missing = [lo for lo in missing
                        if not self.ranks[comm.members[lo]].done]
        for lo in missing:
            waits.add(comm.members[lo])
        if done_missing:
            self._event(
                "COMM501", op.site,
                f"collective {op.kind!r} (sequence position {seq} on "
                f"this communicator) is posted by local ranks "
                f"{sorted(group)} but rank(s) "
                f"{sorted(done_missing)} terminated without posting "
                f"it: the collective sits under rank-divergent "
                f"control flow with non-covering branches",
                trace=[f"posted by local ranks {sorted(group)}",
                       f"never posted by local ranks "
                       f"{sorted(done_missing)} (terminated)"])
        elif live_missing:
            details = []
            for lo in live_missing[:4]:
                world = comm.members[lo]
                pending = [s.op.describe()
                           for s in self.ranks[world].slots
                           if not s.satisfied()]
                details.append(
                    f"local rank {lo} is blocked at "
                    f"{'; '.join(pending) if pending else '<start>'}")
            self._event(
                "COMM501", op.site,
                f"collective {op.kind!r} (sequence position {seq}) "
                f"is posted by local ranks {sorted(group)} while "
                f"rank(s) {sorted(live_missing)} took a different "
                f"communication path: rank-divergent control flow "
                f"splits the collective",
                trace=details)
        return waits

    @staticmethod
    def _find_cycle(edges: dict[int, set[int]]) -> list[int]:
        state: dict[int, int] = {}
        stack: list[int] = []

        def visit(node: int) -> list[int] | None:
            state[node] = 1
            stack.append(node)
            for succ in sorted(edges.get(node, ())):
                if state.get(succ) == 1:
                    return stack[stack.index(succ):]
                if state.get(succ, 0) == 0:
                    found = visit(succ)
                    if found:
                        return found
            stack.pop()
            state[node] = 2
            return None

        for start in sorted(edges):
            if state.get(start, 0) == 0:
                found = visit(start)
                if found:
                    return found
        return []


# ---------------------------------------------------------------------------
# top-level driver


def analyze_modules(modules: Iterable[tuple[str, ast.Module]],
                    sizes: tuple[int, ...] = DEFAULT_SIZES,
                    ) -> list[ProtocolFinding]:
    """Extract and verify every rank program of ``modules``.

    Returns deduplicated findings (one per rule/site), each stamped
    with the program and the smallest communicator size that exposed
    it -- the differential suite replays exactly that configuration
    through the real engine.
    """
    index = ProjectIndex(modules)
    found: dict[tuple, ProtocolFinding] = {}
    for relpath, tree in index.modules:
        for fn in rank_programs(tree):
            for size in sizes:
                events, approx = _replay_program(index, relpath, fn,
                                                 size)
                for event in events:
                    if approx and event.rule_id in ("COMM503",
                                                    "COMM506"):
                        # exact-trace verdicts need an exact trace
                        continue
                    key = (event.rule_id, event.relpath, event.line)
                    if key in found:
                        continue
                    event.program = fn.name
                    event.program_relpath = relpath
                    event.program_line = fn.lineno
                    event.trace = [
                        f"program {fn.name} ({relpath}:{fn.lineno})",
                        f"nranks={size}",
                        *event.trace,
                    ]
                    if approx:
                        event.trace.append(
                            "replay approximated unknown loop "
                            "bounds/parameters")
                    found[key] = event
    return sorted(found.values(),
                  key=lambda f: (f.relpath, f.line, f.rule_id))


def _replay_program(index: ProjectIndex, relpath: str,
                    fn: ast.FunctionDef,
                    size: int) -> tuple[list[ProtocolFinding], bool]:
    """One (program, size) replay; unresolvable programs stay quiet."""
    interps = [_Interp(index, relpath, rank=r, size=size)
               for r in range(size)]
    gens = [interp.run_program(
        fn, relpath, SymComm(0, r, tuple(range(size))))
        for r, interp in enumerate(interps)]
    replay = Replay(size)
    try:
        replay.run(gens)
    except _ReplayAbort:
        pass
    except (_Unresolvable, _NotConcrete, RecursionError):
        return [], True
    approx = any(interp.approx for interp in interps)
    return replay.events, approx
