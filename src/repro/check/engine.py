"""The analyzer engine: walk a tree, run rules, classify findings.

The engine parses every ``*.py`` file under a root, runs each enabled
rule over the ASTs, then classifies the raw findings three ways:

* **suppressed** -- an inline ``# repro: allow(RULE-ID): why`` comment
  on the finding line (or the line above) opts one site out;
* **baselined** -- the committed ``check-baseline.json`` covers known,
  justified findings so legacy sites never fail CI;
* **active** -- everything else; any active finding fails the run.

``--strict`` additionally fails suppressions and baseline entries that
carry no justification text: an exemption without a reason is a bug.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from .findings import Baseline, BaselineEntry, Finding, Severity
from .rules import Collector, ModuleInfo, Rule, default_rules

_ALLOW = re.compile(
    r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_*,\s-]+?)\s*\)(?:\s*:\s*(\S.*))?")


@dataclass
class CheckReport:
    """Classified outcome of one analyzer run."""

    active: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    unused_baseline: list[BaselineEntry] = field(default_factory=list)
    files_checked: int = 0
    rules_run: list[Rule] = field(default_factory=list)

    def strict_violations(self) -> list[Finding]:
        """Suppressed/baselined findings carrying no justification."""
        out = []
        for f in self.suppressed + self.baselined:
            if not f.justification.strip():
                out.append(Finding(
                    rule="SUP001", severity=Severity.ERROR, path=f.path,
                    line=f.line, snippet=f.snippet,
                    message=f"suppression of {f.rule} has no "
                            f"justification text (--strict)"))
        return sorted(out, key=Finding.sort_key)

    def failed(self, strict: bool = False) -> bool:
        if self.active:
            return True
        return strict and bool(self.strict_violations())

    def counts(self) -> dict[str, int]:
        return {"active": len(self.active),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
                "unused_baseline": len(self.unused_baseline),
                "files": self.files_checked}


class _ParseErrorRule(Rule):
    """Synthetic rule id for files the parser rejects."""

    id = "ENG001"
    name = "parse-error"
    severity = Severity.ERROR
    description = "A source file under analysis failed to parse."


class Analyzer:
    """Run a set of rules over a source tree.

    ``only``/``disable`` filter by rule id (the per-rule
    enable/disable switch); ``baseline`` holds the committed known
    findings.
    """

    def __init__(self, rules: Iterable[Rule] | None = None, *,
                 baseline: Baseline | None = None,
                 only: Iterable[str] = (),
                 disable: Iterable[str] = ()) -> None:
        self.rules = list(rules) if rules is not None else default_rules()
        only_set = set(only)
        disable_set = set(disable)
        known = {r.id for r in self.rules}
        unknown = (only_set | disable_set) - known
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}")
        if only_set:
            self.rules = [r for r in self.rules if r.id in only_set]
        self.rules = [r for r in self.rules if r.id not in disable_set]
        self.baseline = baseline or Baseline()

    # -- running -------------------------------------------------------------

    def run(self, root: str | Path,
            rel_base: str | Path | None = None) -> CheckReport:
        """Analyze every ``*.py`` under ``root``.

        ``rel_base`` anchors reported paths (default: ``root``'s
        parent, so findings read ``repro/...``); pass the repository
        root to get ``src/repro/...`` paths that match the baseline.
        """
        root = Path(root).resolve()
        base = Path(rel_base).resolve() if rel_base else root.parent
        out = Collector()
        modules: list[ModuleInfo] = []
        parse_rule = _ParseErrorRule()
        files = sorted(p for p in root.rglob("*.py") if p.is_file())
        for path in files:
            try:
                relpath = path.relative_to(base).as_posix()
            except ValueError:
                relpath = path.as_posix()
            text = path.read_text(encoding="utf-8")
            lines = text.splitlines()
            out.register_source(relpath, lines)
            try:
                tree = ast.parse(text, filename=str(path))
            except SyntaxError as exc:
                out.add(parse_rule, relpath, exc.lineno or 1,
                        f"syntax error: {exc.msg}")
                continue
            modules.append(ModuleInfo(path=path, relpath=relpath,
                                      tree=tree, lines=lines))
        for module in modules:
            for rule in self.rules:
                if rule.applies_to(module.relpath):
                    rule.check_module(module, out)
        for rule in self.rules:
            rule.finalize(out)
        report = self._classify(out, files_checked=len(files))
        report.rules_run = list(self.rules)
        return report

    # -- classification ------------------------------------------------------

    def classify(self, findings: Iterable[Finding],
                 sources: dict[str, list[str]]) -> CheckReport:
        """Classify externally produced findings (tests, runtime checks)."""
        out = Collector(findings=list(findings), _sources=dict(sources))
        return self._classify(out, files_checked=0)

    def _classify(self, out: Collector, *,
                  files_checked: int) -> CheckReport:
        report = CheckReport(files_checked=files_checked)
        for finding in sorted(out.findings, key=Finding.sort_key):
            suppression = self._suppression_for(finding, out)
            if suppression is not None:
                finding.justification = suppression
                report.suppressed.append(finding)
                continue
            entry = self.baseline.match(finding)
            if entry is not None:
                finding.justification = entry.justification
                report.baselined.append(finding)
                continue
            report.active.append(finding)
        report.unused_baseline = self.baseline.unused()
        return report

    @staticmethod
    def _suppression_for(finding: Finding,
                         out: Collector) -> str | None:
        """The inline-allow justification covering a finding, if any.

        Looks at the finding line itself, then at an immediately
        preceding pure-comment line.  Returns the justification text
        (possibly empty) when a matching allow comment exists.
        """
        lines = out._sources.get(finding.path)
        if not lines:
            return None
        candidates = []
        if 0 < finding.line <= len(lines):
            candidates.append(lines[finding.line - 1])
        prev = finding.line - 2
        if 0 <= prev < len(lines) and lines[prev].lstrip().startswith("#"):
            candidates.append(lines[prev])
        for text in candidates:
            match = _ALLOW.search(text)
            if match is None:
                continue
            ids = {part.strip() for part in match.group(1).split(",")}
            if finding.rule in ids or "*" in ids:
                return match.group(2) or ""
        return None


def runtime_contract_findings() -> list[Finding]:
    """Dynamic contract verification against the *live* registry.

    Complements the AST rules: catches FOMs assigned in ``__init__``,
    variants built dynamically, and anything else static analysis
    cannot see.  Clean at HEAD; any regression shows up as a CON101 /
    CON102 finding anchored at the registry module.
    """
    from ..core.benchmark import Category
    from ..core.fom import FigureOfMerit
    from ..core.registry import BENCHMARKS
    from ..core.suite import load_suite

    registry_path = "src/repro/core/registry.py"
    findings: list[Finding] = []
    for info in BENCHMARKS:
        if Category.HIGH_SCALING not in info.categories:
            continue
        fractions = [v.fraction for v in info.variants]
        if not fractions:
            findings.append(Finding(
                rule="CON102", severity=Severity.ERROR,
                path=registry_path, line=1,
                snippet=f"<runtime: {info.name}>",
                message=f"{info.name}: High-Scaling benchmark has no "
                        f"memory variants at runtime"))
        elif any(b <= a for a, b in zip(fractions, fractions[1:])):
            findings.append(Finding(
                rule="CON102", severity=Severity.ERROR,
                path=registry_path, line=1,
                snippet=f"<runtime: {info.name}>",
                message=f"{info.name}: memory-variant fractions "
                        f"{fractions} are not strictly increasing"))
    suite = load_suite()
    for name in suite.names():
        bench = suite.get(name)
        fom = getattr(bench, "fom", None)
        if not isinstance(fom, FigureOfMerit):
            findings.append(Finding(
                rule="CON101", severity=Severity.ERROR,
                path=registry_path, line=1,
                snippet=f"<runtime: {name}>",
                message=f"{name}: registered implementation "
                        f"{type(bench).__name__} has no FigureOfMerit"))
    return findings
