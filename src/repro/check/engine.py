"""The analyzer engine: walk a tree, run rules, classify findings.

The engine parses every ``*.py`` file under a root, runs each enabled
rule over the ASTs, then classifies the raw findings three ways:

* **suppressed** -- an inline ``# repro: allow(RULE-ID): why`` comment
  on the finding line (or the line above) opts one site out;
* **baselined** -- the committed ``check-baseline.json`` covers known,
  justified findings so legacy sites never fail CI;
* **active** -- everything else; any active finding fails the run.

``--strict`` additionally fails suppressions and baseline entries that
carry no justification text: an exemption without a reason is a bug.
"""

from __future__ import annotations

import ast
import functools
import re
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..exec.cache import CODE_VERSION, ResultCache, stable_hash
from .dims import build_registry
from .findings import Baseline, BaselineEntry, Finding, Severity
from .rules import Collector, ModuleInfo, ProjectContext, Rule, default_rules

_ALLOW = re.compile(
    r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_*,\s-]+?)\s*\)(?:\s*:\s*(\S.*))?")


@functools.lru_cache(maxsize=1)
def _ruleset_fingerprint() -> str:
    """Content hash of the check package's own sources.

    Enters every incremental cache key as the "rule-set version": any
    edit to a rule, the engine, or the dimension model invalidates all
    cached per-module results, so stale findings can never be replayed.
    """
    package = Path(__file__).resolve().parent
    sources = {p.relative_to(package).as_posix():
               p.read_text(encoding="utf-8")
               for p in sorted(package.rglob("*.py"))}
    return stable_hash({"version": CODE_VERSION, "sources": sources})


@dataclass
class CheckReport:
    """Classified outcome of one analyzer run."""

    active: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    unused_baseline: list[BaselineEntry] = field(default_factory=list)
    files_checked: int = 0
    rules_run: list[Rule] = field(default_factory=list)
    #: incremental-cache counters; deliberately NOT part of counts()
    #: or any reporter output, so cold and warm runs stay byte-identical
    cache_hits: int = 0
    cache_misses: int = 0

    def strict_violations(self) -> list[Finding]:
        """Suppressed/baselined findings carrying no justification."""
        out = []
        for f in self.suppressed + self.baselined:
            if not f.justification.strip():
                out.append(Finding(
                    rule="SUP001", severity=Severity.ERROR, path=f.path,
                    line=f.line, snippet=f.snippet,
                    message=f"suppression of {f.rule} has no "
                            f"justification text (--strict)"))
        return sorted(out, key=Finding.sort_key)

    def failed(self, strict: bool = False) -> bool:
        if self.active:
            return True
        return strict and bool(self.strict_violations())

    def counts(self) -> dict[str, int]:
        return {"active": len(self.active),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
                "unused_baseline": len(self.unused_baseline),
                "files": self.files_checked}


class _ParseErrorRule(Rule):
    """Synthetic rule id for files the parser rejects."""

    id = "ENG001"
    name = "parse-error"
    severity = Severity.ERROR
    description = "A source file under analysis failed to parse."


class Analyzer:
    """Run a set of rules over a source tree.

    ``only``/``disable`` filter by rule id (the per-rule
    enable/disable switch); ``baseline`` holds the committed known
    findings.
    """

    def __init__(self, rules: Iterable[Rule] | None = None, *,
                 baseline: Baseline | None = None,
                 only: Iterable[str] = (),
                 disable: Iterable[str] = ()) -> None:
        self.rules = list(rules) if rules is not None else default_rules()
        only_set = set(only)
        disable_set = set(disable)
        known: set[str] = set()
        for r in self.rules:
            known.update(r.all_ids())
        unknown = (only_set | disable_set) - known
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}")
        kept: list[Rule] = []
        for rule in self.rules:
            enabled = set(rule.all_ids())
            if only_set:
                enabled &= only_set
            enabled -= disable_set
            if not enabled:
                continue
            rule.enabled_ids = frozenset(enabled)
            kept.append(rule)
        self.rules = kept
        self._enabled_ids = frozenset().union(
            *(r.enabled_ids for r in kept)) if kept else frozenset()
        self.baseline = baseline or Baseline()

    # -- running -------------------------------------------------------------

    def run(self, root: str | Path,
            rel_base: str | Path | None = None, *,
            workers: int = 1,
            cache: ResultCache | None = None) -> CheckReport:
        """Analyze every ``*.py`` under ``root``.

        ``rel_base`` anchors reported paths (default: ``root``'s
        parent, so findings read ``repro/...``); pass the repository
        root to get ``src/repro/...`` paths that match the baseline.

        ``workers`` > 1 analyzes modules with *local* rules from a
        thread pool; ``cache`` enables incremental analysis -- each
        module's local-rule findings are stored under a content hash of
        its source, the rule-set version (the check package's own
        sources), the enabled rule ids and the project annotation
        registry, so a warm run only re-analyzes what changed.
        Project-scoped rules (cross-module state) always run.
        Classification is order-insensitive, so cold, warm and parallel
        runs produce identical reports.
        """
        root = Path(root).resolve()
        base = Path(rel_base).resolve() if rel_base else root.parent
        out = Collector()
        modules: list[ModuleInfo] = []
        parse_rule = _ParseErrorRule()
        files = sorted(p for p in root.rglob("*.py") if p.is_file())
        for path in files:
            try:
                relpath = path.relative_to(base).as_posix()
            except ValueError:
                relpath = path.as_posix()
            text = path.read_text(encoding="utf-8")
            lines = text.splitlines()
            out.register_source(relpath, lines)
            try:
                tree = ast.parse(text, filename=str(path))
            except SyntaxError as exc:
                out.add(parse_rule, relpath, exc.lineno or 1,
                        f"syntax error: {exc.msg}")
                continue
            modules.append(ModuleInfo(path=path, relpath=relpath,
                                      tree=tree, lines=lines))
        ctx = ProjectContext(root=root, rel_base=base, modules=modules,
                             registry=build_registry(
                                 (m.relpath, m.tree) for m in modules))
        for rule in self.rules:
            rule.prepare(ctx)
        local = [r for r in self.rules if r.scope == "local"]
        project = [r for r in self.rules if r.scope != "local"]
        registry_hash = stable_hash(ctx.registry.content())
        # rules with cross-module state (interprocedural summaries)
        # contribute a fingerprint so editing a helper in one module
        # invalidates cached verdicts that depended on it
        fingerprints = {r.id: fp for r in local
                        if (fp := r.cache_fingerprint())}

        stats_before = (cache.stats.snapshot() if cache is not None
                        else None)

        def analyze(module: ModuleInfo) -> list[Finding]:
            rules = [r for r in local if r.applies_to(module.relpath)]
            if not rules:
                return []
            key = None
            if cache is not None:
                key = "check-" + stable_hash({
                    "relpath": module.relpath,
                    "source": "\n".join(module.lines),
                    "ruleset": _ruleset_fingerprint(),
                    "registry": registry_hash,
                    "rules": sorted(i for r in rules
                                    for i in (r.enabled_ids or
                                              r.all_ids())),
                    "fingerprints": {r.id: fingerprints[r.id]
                                     for r in rules
                                     if r.id in fingerprints},
                })
                found, value = cache.get(key)
                if found:
                    return [Finding.from_dict(d) for d in value]
            col = Collector(_sources=out._sources)
            for rule in rules:
                rule.check_module(module, col)
            if cache is not None and key is not None:
                cache.put(key, [f.to_dict() for f in col.findings])
            return col.findings

        if workers > 1 and len(modules) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                for findings in pool.map(analyze, modules):
                    out.findings.extend(findings)
        else:
            for module in modules:
                out.findings.extend(analyze(module))
        for module in modules:
            for rule in project:
                if rule.applies_to(module.relpath):
                    rule.check_module(module, out)
        for rule in self.rules:
            rule.finalize(out)
        report = self._classify(out, files_checked=len(files))
        report.rules_run = list(self.rules)
        if cache is not None and stats_before is not None:
            report.cache_hits = cache.stats.hits - stats_before["hits"]
            report.cache_misses = (cache.stats.misses -
                                   stats_before["misses"])
        return report

    # -- classification ------------------------------------------------------

    def classify(self, findings: Iterable[Finding],
                 sources: dict[str, list[str]]) -> CheckReport:
        """Classify externally produced findings (tests, runtime checks)."""
        out = Collector(findings=list(findings), _sources=dict(sources))
        return self._classify(out, files_checked=0)

    def _classify(self, out: Collector, *,
                  files_checked: int) -> CheckReport:
        report = CheckReport(files_checked=files_checked)
        for finding in sorted(out.findings, key=Finding.sort_key):
            suppression = self._suppression_for(finding, out)
            if suppression is not None:
                finding.justification = suppression
                report.suppressed.append(finding)
                continue
            entry = self.baseline.match(finding)
            if entry is not None:
                finding.justification = entry.justification
                report.baselined.append(finding)
                continue
            report.active.append(finding)
        # entries of rules that did not run cannot have matched; only
        # entries the enabled rule set could have covered count as stale
        report.unused_baseline = [
            e for e in self.baseline.unused()
            if e.rule in self._enabled_ids]
        return report

    @staticmethod
    def _suppression_for(finding: Finding,
                         out: Collector) -> str | None:
        """The inline-allow justification covering a finding, if any.

        Looks at the finding line itself, then at an immediately
        preceding pure-comment line.  Returns the justification text
        (possibly empty) when a matching allow comment exists.
        """
        lines = out._sources.get(finding.path)
        if not lines:
            return None
        candidates = []
        if 0 < finding.line <= len(lines):
            candidates.append(lines[finding.line - 1])
        prev = finding.line - 2
        if 0 <= prev < len(lines) and lines[prev].lstrip().startswith("#"):
            candidates.append(lines[prev])
        for text in candidates:
            match = _ALLOW.search(text)
            if match is None:
                continue
            ids = {part.strip() for part in match.group(1).split(",")}
            if finding.rule in ids or "*" in ids:
                return match.group(2) or ""
        return None


def runtime_contract_findings() -> list[Finding]:
    """Dynamic contract verification against the *live* registry.

    Complements the AST rules: catches FOMs assigned in ``__init__``,
    variants built dynamically, and anything else static analysis
    cannot see.  Clean at HEAD; any regression shows up as a CON101 /
    CON102 finding anchored at the registry module.
    """
    from ..core.benchmark import Category
    from ..core.fom import FigureOfMerit
    from ..core.registry import BENCHMARKS
    from ..core.suite import load_suite

    registry_path = "src/repro/core/registry.py"
    findings: list[Finding] = []
    for info in BENCHMARKS:
        if Category.HIGH_SCALING not in info.categories:
            continue
        fractions = [v.fraction for v in info.variants]
        if not fractions:
            findings.append(Finding(
                rule="CON102", severity=Severity.ERROR,
                path=registry_path, line=1,
                snippet=f"<runtime: {info.name}>",
                message=f"{info.name}: High-Scaling benchmark has no "
                        f"memory variants at runtime"))
        elif any(b <= a for a, b in zip(fractions, fractions[1:])):
            findings.append(Finding(
                rule="CON102", severity=Severity.ERROR,
                path=registry_path, line=1,
                snippet=f"<runtime: {info.name}>",
                message=f"{info.name}: memory-variant fractions "
                        f"{fractions} are not strictly increasing"))
    suite = load_suite()
    for name in suite.names():
        bench = suite.get(name)
        fom = getattr(bench, "fom", None)
        if not isinstance(fom, FigureOfMerit):
            findings.append(Finding(
                rule="CON101", severity=Severity.ERROR,
                path=registry_path, line=1,
                snippet=f"<runtime: {name}>",
                message=f"{name}: registered implementation "
                        f"{type(bench).__name__} has no FigureOfMerit"))
    return findings
