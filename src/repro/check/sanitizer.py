"""Runtime sanitizers: the lock-order watcher.

Static analysis proves lock *presence*; it cannot prove lock *order*.
:class:`LockOrderWatcher` wraps a real lock and records, per thread,
which locks are held when another is acquired.  The resulting
acquisition graph must stay acyclic: an ``A -> B`` edge (B acquired
while holding A) followed by a ``B -> A`` edge somewhere else is a
deadlock schedule waiting to happen, and the watcher raises
:class:`LockOrderError` naming both acquisition sites the moment the
second edge appears -- no need to actually hit the deadlock.

:func:`install` swaps :func:`threading.Lock` / :func:`threading.RLock`
for watcher factories process-wide, so every lock created afterwards
(engine pools, caches, tracers) is checked.  Tests opt in with
``REPRO_SANITIZE=1`` (see ``tests/conftest.py``); the CLI exposes it as
``jubench check --sanitize``.
"""

from __future__ import annotations

import sys
import threading

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


class LockOrderError(RuntimeError):
    """A lock-acquisition ordering cycle (potential deadlock)."""


def _call_site(skip_module: str = __name__) -> str:
    """``file:line`` of the first frame outside this module."""
    frame = sys._getframe(1)
    while frame is not None:
        module = frame.f_globals.get("__name__", "")
        if module != skip_module:
            return f"{frame.f_code.co_filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class LockGraph:
    """The process-wide acquisition graph shared by all watchers.

    Nodes are individual lock objects (by name); a directed edge
    ``A -> B`` records that some thread acquired B while holding A,
    together with both acquisition sites.  The graph must stay acyclic.
    """

    def __init__(self) -> None:
        # must be a *real* lock: watchers call in here on every acquire
        self._mutex = _REAL_LOCK()
        self._tls = threading.local()
        #: (held_name, acquired_name) -> (held_site, acquire_site)
        self.edges: dict[tuple[str, str], tuple[str, str]] = {}
        self.locks_created = 0
        self.acquisitions = 0

    # -- per-thread held stack ----------------------------------------------

    def _held(self) -> list[tuple["LockOrderWatcher", str]]:
        stack = getattr(self._tls, "held", None)
        if stack is None:
            stack = self._tls.held = []
        return stack

    def holds(self, watcher: "LockOrderWatcher") -> bool:
        return any(w is watcher for w, _ in self._held())

    def push(self, watcher: "LockOrderWatcher", site: str) -> None:
        self._held().append((watcher, site))

    def pop(self, watcher: "LockOrderWatcher") -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i][0] is watcher:
                del held[i]
                return

    # -- ordering ------------------------------------------------------------

    def before_acquire(self, watcher: "LockOrderWatcher",
                       site: str) -> None:
        """Record edges held -> watcher; raise on an ordering cycle."""
        held = [(w, s) for w, s in self._held() if w is not watcher]
        if not held:
            with self._mutex:
                self.acquisitions += 1
            return
        with self._mutex:
            self.acquisitions += 1
            for held_watcher, held_site in held:
                edge = (held_watcher.name, watcher.name)
                if edge in self.edges:
                    continue
                path = self._find_path(watcher.name, held_watcher.name)
                if path is not None:
                    raise self._cycle_error(held_watcher, held_site,
                                            watcher, site, path)
                self.edges[edge] = (held_site, site)

    def _find_path(self, start: str, goal: str) -> list[str] | None:
        """A directed path start -> ... -> goal in the edge graph."""
        adjacency: dict[str, list[str]] = {}
        for a, b in self.edges:
            adjacency.setdefault(a, []).append(b)
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for nxt in adjacency.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    def _cycle_error(self, held: "LockOrderWatcher", held_site: str,
                     acquiring: "LockOrderWatcher", site: str,
                     path: list[str]) -> LockOrderError:
        reverse_sites = []
        for a, b in zip(path, path[1:]):
            sa, sb = self.edges[(a, b)]
            reverse_sites.append(f"  {a} (held, acquired at {sa}) -> "
                                 f"{b} (acquired at {sb})")
        chain = " -> ".join(path)
        return LockOrderError(
            f"lock-order cycle: acquiring {acquiring.name} at {site} "
            f"while holding {held.name} (acquired at {held_site}) "
            f"inverts the established order {chain}:\n"
            + "\n".join(reverse_sites))

    def snapshot(self) -> dict[str, int]:
        with self._mutex:
            return {"locks": self.locks_created,
                    "acquisitions": self.acquisitions,
                    "edges": len(self.edges)}


_DEFAULT_GRAPH = LockGraph()


def default_graph() -> LockGraph:
    return _DEFAULT_GRAPH


class LockOrderWatcher:
    """A lock that participates in lock-order checking.

    Wraps a real :func:`threading.Lock` (or RLock when ``reentrant``);
    implements the full lock protocol including the private methods
    :class:`threading.Condition` relies on, so watchers are drop-in
    even inside stdlib machinery (queues, executors).
    """

    def __init__(self, name: str | None = None, *,
                 reentrant: bool = False,
                 graph: LockGraph | None = None) -> None:
        self._graph = graph if graph is not None else default_graph()
        self._inner = _REAL_RLOCK() if reentrant else _REAL_LOCK()
        self._reentrant = reentrant
        with self._graph._mutex:
            self._graph.locks_created += 1
            serial = self._graph.locks_created
        kind = "rlock" if reentrant else "lock"
        self.name = name or f"{kind}#{serial}@{_call_site()}"

    # -- core protocol -------------------------------------------------------

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        site = _call_site()
        already_held = self._graph.holds(self)
        if already_held and not self._reentrant and blocking:
            raise LockOrderError(
                f"self-deadlock: thread re-acquiring non-reentrant "
                f"{self.name} at {site} while already holding it")
        if not already_held:
            self._graph.before_acquire(self, site)
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._graph.push(self, site)
        return ok

    def release(self) -> None:
        self._inner.release()
        self._graph.pop(self)

    def __enter__(self) -> "LockOrderWatcher":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def locked(self) -> bool:
        locked = getattr(self._inner, "locked", None)
        if locked is not None:
            return locked()
        # pre-3.12 RLock: no locked(); a non-blocking probe would
        # succeed reentrantly, so check ownership first
        if self._reentrant and self._inner._is_owned():
            return True
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __repr__(self) -> str:
        return f"<LockOrderWatcher {self.name}>"

    # -- threading.Condition protocol ---------------------------------------

    def _at_fork_reinit(self) -> None:
        self._inner._at_fork_reinit()
        self._graph.pop(self)

    def _is_owned(self) -> bool:
        if self._reentrant:
            return self._inner._is_owned()
        return self._graph.holds(self)

    def _release_save(self):  # noqa: ANN201 - opaque stdlib state
        self._graph.pop(self)
        if self._reentrant:
            return self._inner._release_save()
        self._inner.release()
        return None

    def _acquire_restore(self, state) -> None:
        if self._reentrant:
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        self._graph.push(self, _call_site())


# -- process-wide installation ----------------------------------------------

_STATE_LOCK = _REAL_LOCK()
_INSTALLED_GRAPH: LockGraph | None = None


def install(graph: LockGraph | None = None) -> LockGraph:
    """Replace threading.Lock/RLock with watcher factories.

    Locks that already exist keep working untouched; every lock
    created after this point joins the shared acquisition graph.
    Idempotent; returns the active graph.
    """
    global _INSTALLED_GRAPH
    with _STATE_LOCK:
        if _INSTALLED_GRAPH is not None:
            return _INSTALLED_GRAPH
        active = graph if graph is not None else LockGraph()

        def make_lock() -> LockOrderWatcher:
            return LockOrderWatcher(graph=active)

        def make_rlock() -> LockOrderWatcher:
            return LockOrderWatcher(reentrant=True, graph=active)

        threading.Lock = make_lock  # type: ignore[assignment]
        threading.RLock = make_rlock  # type: ignore[assignment]
        _INSTALLED_GRAPH = active
        return active


def uninstall() -> None:
    """Restore the real lock factories (existing watchers keep working)."""
    global _INSTALLED_GRAPH
    with _STATE_LOCK:
        threading.Lock = _REAL_LOCK  # type: ignore[assignment]
        threading.RLock = _REAL_RLOCK  # type: ignore[assignment]
        _INSTALLED_GRAPH = None


def installed_graph() -> LockGraph | None:
    """The active process-wide graph, if :func:`install` ran."""
    with _STATE_LOCK:
        return _INSTALLED_GRAPH


def install_from_env(env_var: str = "REPRO_SANITIZE") -> LockGraph | None:
    """Install when the environment opts in (``REPRO_SANITIZE=1``)."""
    import os

    if os.environ.get(env_var, "").strip() in {"1", "true", "yes", "on"}:
        return install()
    return None
