"""The dimensional model behind the UNIT3xx dataflow rules.

The paper's FOM methodology normalises every benchmark to a *time*
metric while mixing decimal prefixes (HPL's 1 EFLOP/s target, HDR200's
25 GB/s links) with binary ones (JUQCS' ``16 B * 2**n`` state-vector
law).  ``repro/units.py`` documents the convention; this module makes
it machine-checkable: a tiny dimension algebra over the three base
quantities the suite computes with -- seconds, bytes and FLOP -- plus
the plumbing that assigns dimensions to names:

* the ``repro.units`` constants (prefix family si/binary, byte sizes),
* conservative parameter-name heuristics (``*_seconds``, ``nbytes``,
  ``*_bandwidth``, ...),
* an opt-in annotation registry: modules declare
  ``DIMS = register_dims(__name__, {"p2p_time.return": "s", ...})``
  (see :func:`repro.units.register_dims`) and the analyzer reads the
  dict literal straight from the AST -- no import of analysed code.

Everything here is pure data + pure functions so the dataflow rule can
be cached per module (`repro.check.engine` keys on the registry hash).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

#: base quantities, in canonical order: seconds, bytes, FLOP
BASES = ("s", "B", "FLOP")


@dataclass(frozen=True)
class Dim:
    """A physical dimension as integer exponents over :data:`BASES`.

    ``Dim((−1, 1, 0))`` is bytes/second; the all-zero dimension is a
    dimensionless fraction/count.  The algebra is exactly what the
    dataflow pass needs: multiply/divide combine exponents, add/sub
    require equality.
    """

    exps: tuple[int, int, int]

    def __mul__(self, other: "Dim") -> "Dim":
        return Dim(tuple(a + b for a, b in zip(self.exps, other.exps)))

    def __truediv__(self, other: "Dim") -> "Dim":
        return Dim(tuple(a - b for a, b in zip(self.exps, other.exps)))

    def pow(self, n: int) -> "Dim":
        return Dim(tuple(a * n for a in self.exps))

    @property
    def is_dimensionless(self) -> bool:
        return all(e == 0 for e in self.exps)

    @property
    def is_rate(self) -> bool:
        """Anything *per second* (bandwidth, FLOP/s, 1/s)."""
        return self.exps[BASES.index("s")] < 0

    def __str__(self) -> str:
        num = [b if e == 1 else f"{b}^{e}"
               for b, e in zip(BASES, self.exps) if e > 0]
        den = [b if e == -1 else f"{b}^{-e}"
               for b, e in zip(BASES, self.exps) if e < 0]
        if not num and not den:
            return "1"
        head = "*".join(num) if num else "1"
        return head + ("/" + "/".join(den) if den else "")


ONE = Dim((0, 0, 0))
TIME = Dim((1, 0, 0))
BYTES = Dim((0, 1, 0))
FLOP = Dim((0, 0, 1))
BANDWIDTH = BYTES / TIME
FLOPS = FLOP / TIME
PER_SECOND = ONE / TIME

#: the dimension vocabulary of ``DIMS`` annotations and heuristics
_NAMED: dict[str, Dim] = {
    "1": ONE, "s": TIME, "B": BYTES, "FLOP": FLOP,
    "B/s": BANDWIDTH, "FLOP/s": FLOPS, "1/s": PER_SECOND,
}


def parse_dim(text: str) -> Dim:
    """Parse a dimension string (``'s'``, ``'B/s'``, ``'FLOP*s'``).

    Grammar: ``token(*token)*(/token)*`` over the base tokens plus
    ``1``; anything else raises ``ValueError`` (annotations must come
    from the shared vocabulary so typos fail loudly).
    """
    s = text.strip()
    if s in _NAMED:
        return _NAMED[s]
    num, slash, rest = s.partition("/")
    if slash and not rest.strip():
        raise ValueError(f"empty dimension token after '/' in {text!r}")
    dim = ONE
    for tok in filter(None, num.split("*")):
        if tok not in _NAMED or "/" in tok:
            raise ValueError(f"unknown dimension token {tok!r} in {text!r}")
        dim = dim * _NAMED[tok]
    for tok in filter(None, rest.split("/")):
        if tok not in _NAMED:
            raise ValueError(f"unknown dimension token {tok!r} in {text!r}")
        dim = dim / _NAMED[tok]
    return dim


# -- the repro.units constants ----------------------------------------------

#: decimal-prefix constants from repro.units (scale factors, SI family)
SI_PREFIXES = frozenset({"KILO", "MEGA", "GIGA", "TERA", "PETA", "EXA"})
#: binary-prefix constants from repro.units (scale factors, binary family)
BIN_PREFIXES = frozenset({"KIB", "MIB", "GIB", "TIB", "PIB"})
#: byte-size constants: genuine byte quantities, no prefix family
BYTE_CONSTANTS = frozenset({"BYTES_PER_COMPLEX128", "BYTES_PER_FLOAT64"})


def units_constant(name: str | None) -> tuple[Dim, frozenset] | None:
    """``(dim, prefix families)`` of a ``repro.units`` constant.

    Prefix constants are *scale factors*: their dimension is unknown
    (they adapt to the quantity they scale) but they stamp the
    expression with a prefix family for the UNIT303 mixing check --
    returned dim ``None``-like is expressed as dimensionless here and
    ignored by the caller; byte constants are real byte quantities.
    """
    if name is None:
        return None
    head, _, last = name.rpartition(".")
    if not head.endswith("units"):
        return None
    if last in SI_PREFIXES:
        return (ONE, frozenset({"si"}))
    if last in BIN_PREFIXES:
        return (ONE, frozenset({"bin"}))
    if last in BYTE_CONSTANTS:
        return (BYTES, frozenset())
    return None


# -- name heuristics ---------------------------------------------------------

#: exact variable/parameter/attribute names with an unambiguous dimension
EXACT_NAMES: dict[str, Dim] = {
    "nbytes": BYTES, "bytes_moved": BYTES, "nbytes_total": BYTES,
    "nbytes_per_rank": BYTES, "nbytes_per_pair": BYTES,
    "seconds": TIME, "elapsed": TIME, "latency": TIME, "walltime": TIME,
    "duration": TIME, "timeout": TIME,
    "bw": BANDWIDTH, "bandwidth": BANDWIDTH,
    "flops": FLOP,
    "efficiency": ONE, "fraction": ONE, "utilization": ONE,
    "nranks": ONE, "nnodes": ONE,     # counts: dimensionless by fiat
}

#: name suffixes with an unambiguous dimension (checked on ``_``-suffix
#: boundaries; the ISSUE-mandated ``*_s`` / ``*_bytes`` / ``*_gbps`` set)
SUFFIX_DIMS: tuple[tuple[str, Dim], ...] = (
    ("_seconds", TIME), ("_latency", TIME), ("_walltime", TIME),
    ("_duration", TIME), ("_s", TIME),
    ("_bytes", BYTES), ("_capacity", BYTES), ("_mem", BYTES),
    ("_bandwidth", BANDWIDTH), ("_bw", BANDWIDTH),
    ("_gbps", BANDWIDTH), ("_bps", BANDWIDTH),
    ("_flops", FLOPS),
)

#: function-name suffixes implying the *return* dimension
RETURN_SUFFIXES: tuple[tuple[str, Dim], ...] = (
    ("_seconds", TIME), ("_time", TIME), ("_latency", TIME),
    ("_bytes", BYTES), ("_bandwidth", BANDWIDTH),
)


def dim_of_name(name: str) -> Dim | None:
    """Heuristic dimension of a bare name, or None when ambiguous.

    Matching is case-insensitive so module constants follow the same
    conventions as locals (``MESSAGE_BYTES`` and ``message_bytes``).
    """
    name = name.lower()
    if name in EXACT_NAMES:
        return EXACT_NAMES[name]
    for suffix, dim in SUFFIX_DIMS:
        if name.endswith(suffix) and len(name) > len(suffix):
            return dim
    return None


def dim_of_return(func_name: str) -> Dim | None:
    """Heuristic return dimension of a function name, or None."""
    for suffix, dim in RETURN_SUFFIXES:
        if func_name.endswith(suffix) and len(func_name) > len(suffix):
            return dim
    return None


# -- the annotation registry -------------------------------------------------

#: annotations shipped for the ``repro.units`` helpers themselves, so
#: call sites seed dimensions even when units.py is outside the tree
#: under analysis (e.g. fixture runs)
BUILTIN_ANNOTATIONS: dict[str, str] = {
    "fmt_seconds.seconds": "s",
    "fmt_bytes.nbytes": "B",
    "parse_bytes.return": "B",
    "parse_bin.return": "B",
}


class DimRegistry:
    """Merged ``DIMS`` annotations plus function signatures.

    Keys are dotted annotation names -- ``"p2p_time.nbytes"``,
    ``"p2p_time.return"``, ``"DeviceSpec.peak_flops"`` or a bare
    attribute name.  Lookup resolves the most specific key first and
    falls back to the *tail* (last one/two components), but only when
    every registration of that tail agrees -- ambiguous tails resolve
    to nothing rather than to a guess.
    """

    def __init__(self) -> None:
        self._exact: dict[str, Dim] = {}
        self._by_tail: dict[str, Dim | None] = {}
        self._sources: dict[str, str] = {}
        self.signatures: dict[str, tuple[str, ...] | None] = {}
        self.add_annotations("<builtin>", BUILTIN_ANNOTATIONS)

    def add_annotations(self, module: str,
                        annotations: dict[str, str]) -> None:
        for key, text in sorted(annotations.items()):
            dim = parse_dim(text)
            self._exact[key] = dim
            self._sources[key] = module
            for tail in _tails(key):
                if tail in self._by_tail and self._by_tail[tail] != dim:
                    self._by_tail[tail] = None      # ambiguous: disabled
                else:
                    self._by_tail.setdefault(tail, dim)

    def add_signature(self, func_name: str,
                      params: tuple[str, ...]) -> None:
        """Record a function's positional parameter names (tail-keyed;
        conflicting signatures disable the entry)."""
        if func_name in self.signatures and \
                self.signatures[func_name] != params:
            self.signatures[func_name] = None
        else:
            self.signatures.setdefault(func_name, params)

    def lookup(self, *candidates: str) -> Dim | None:
        """First match over exact keys, then unambiguous tails."""
        for key in candidates:
            if key in self._exact:
                return self._exact[key]
        for key in candidates:
            hit = self._by_tail.get(key)
            if hit is not None:
                return hit
        return None

    def params_of(self, func_name: str) -> tuple[str, ...] | None:
        return self.signatures.get(func_name)

    def content(self) -> dict:
        """Canonical content for cache-key hashing."""
        return {"annotations": {k: str(v)
                                for k, v in sorted(self._exact.items())},
                "signatures": {k: list(v) if v else []
                               for k, v in sorted(self.signatures.items())}}


def _tails(key: str) -> Iterable[str]:
    parts = key.split(".")
    for start in range(1, len(parts)):
        yield ".".join(parts[start:])


# -- AST extraction ----------------------------------------------------------

def module_annotations(tree: ast.Module) -> dict[str, str]:
    """The ``DIMS = register_dims(__name__, {...})`` dict of a module.

    Accepts a plain dict literal too (``DIMS = {...}``); only constant
    string keys/values are taken, anything dynamic is ignored (the
    analyzer never imports analysed code).
    """
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "DIMS"):
            continue
        value = stmt.value
        if isinstance(value, ast.Call) and value.args:
            value = value.args[-1]
        if not isinstance(value, ast.Dict):
            continue
        out: dict[str, str] = {}
        for k, v in zip(value.keys, value.values):
            if isinstance(k, ast.Constant) and isinstance(k.value, str) \
                    and isinstance(v, ast.Constant) \
                    and isinstance(v.value, str):
                out[k.value] = v.value
        return out
    return {}


def module_signatures(tree: ast.Module) -> dict[str, tuple[str, ...]]:
    """Positional parameter names of every function/method, tail-keyed.

    ``self``/``cls`` are dropped so call-site argument positions line
    up with method calls.  Methods are keyed both bare and as
    ``Class.method``.
    """
    out: dict[str, tuple[str, ...]] = {}

    def params_of(fn: ast.AST) -> tuple[str, ...]:
        names = [a.arg for a in fn.args.posonlyargs + fn.args.args]
        if names and names[0] in ("self", "cls"):
            names = names[1:]
        return tuple(names)

    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out[f"{node.name}.{stmt.name}"] = params_of(stmt)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.setdefault(node.name, params_of(node))
    return out


def build_registry(trees: Iterable[tuple[str, ast.Module]]) -> DimRegistry:
    """The project-wide registry over ``(module name, tree)`` pairs."""
    registry = DimRegistry()
    for name, tree in trees:
        annotations = module_annotations(tree)
        if annotations:
            registry.add_annotations(name, annotations)
        for func, params in module_signatures(tree).items():
            registry.add_signature(func, params)
    return registry
