"""Reporters: human-readable, JSON, and SARIF 2.1.0 output.

The SARIF document is what the CI ``check`` job uploads through
``github/codeql-action/upload-sarif`` -- findings then appear as code
scanning alerts on the PR.  Suppressed and baselined findings are
included with SARIF ``suppressions`` records (``inSource`` for inline
allows, ``external`` for baseline entries) so the alert history stays
complete without failing the run.
"""

from __future__ import annotations

import json
from typing import Any

from .engine import CheckReport
from .findings import Finding

SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "repro.check"
TOOL_VERSION = "1.0.0"


def render_human(report: CheckReport, *, strict: bool = False,
                 explain: str | None = None) -> str:
    """Terminal rendering: findings, then a one-line verdict.

    ``explain`` names a rule id whose findings get their inference
    trace printed inline (indented under the finding line) -- the
    same derivation chain JSON and SARIF always carry.
    """
    lines: list[str] = []

    def _explain(finding: Finding) -> None:
        if explain is None or finding.rule != explain:
            return
        if not finding.trace:
            lines.append("    (no recorded inference trace)")
            return
        for step in finding.trace:
            lines.append(f"    trace: {step}")

    for finding in report.active:
        lines.append(finding.render())
        _explain(finding)
    if strict:
        for finding in report.strict_violations():
            lines.append(finding.render())
    for finding in report.suppressed:
        note = finding.justification or "(no justification)"
        lines.append(f"{finding.path}:{finding.line}: suppressed "
                     f"{finding.rule}: {note}")
        _explain(finding)
    for finding in report.baselined:
        note = finding.justification or "(no justification)"
        lines.append(f"{finding.path}:{finding.line}: baselined "
                     f"{finding.rule}: {note}")
        _explain(finding)
    for entry in report.unused_baseline:
        lines.append(f"stale baseline entry: {entry.rule} at "
                     f"{entry.path} ({entry.snippet!r}) matched "
                     f"nothing; prune it")
    counts = report.counts()
    verdict = "FAILED" if report.failed(strict) else "ok"
    lines.append(f"check {verdict}: {counts['files']} files, "
                 f"{counts['active']} finding(s), "
                 f"{counts['suppressed']} suppressed, "
                 f"{counts['baselined']} baselined")
    return "\n".join(lines)


def render_json(report: CheckReport, *, strict: bool = False) -> str:
    """Machine-readable JSON (stable ordering, trailing newline)."""
    payload = {
        "tool": {"name": TOOL_NAME, "version": TOOL_VERSION},
        "summary": dict(report.counts(), failed=report.failed(strict)),
        "findings": [f.to_dict() for f in report.active],
        "strict_violations": [f.to_dict()
                              for f in report.strict_violations()]
        if strict else [],
        "suppressed": [f.to_dict() for f in report.suppressed],
        "baselined": [f.to_dict() for f in report.baselined],
        "unused_baseline": [e.to_dict()
                            for e in report.unused_baseline],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sarif_result(finding: Finding, rule_index: dict[str, int],
                  suppression: dict[str, Any] | None) -> dict[str, Any]:
    region: dict[str, Any] = {"startLine": max(1, finding.line)}
    if finding.snippet:
        region["snippet"] = {"text": finding.snippet}
    result: dict[str, Any] = {
        "ruleId": finding.rule,
        "level": finding.severity.value,
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": region,
            },
        }],
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    if finding.trace:
        result["properties"] = {"trace": list(finding.trace)}
    if suppression is not None:
        result["suppressions"] = [suppression]
    return result


def render_sarif(report: CheckReport) -> str:
    """A valid SARIF 2.1.0 document covering the whole run."""
    rules = [{
        "id": desc["id"],
        "name": desc["name"],
        "shortDescription": {"text": desc["description"]},
        "defaultConfiguration": {"level": desc["severity"].value},
    } for rule in report.rules_run for desc in rule.descriptors()]
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results: list[dict[str, Any]] = []
    for finding in report.active:
        results.append(_sarif_result(finding, rule_index, None))
    for finding in report.suppressed:
        results.append(_sarif_result(finding, rule_index, {
            "kind": "inSource",
            "justification": finding.justification or ""}))
    for finding in report.baselined:
        results.append(_sarif_result(finding, rule_index, {
            "kind": "external",
            "justification": finding.justification or ""}))
    document = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": TOOL_NAME,
                "version": TOOL_VERSION,
                "informationUri": "https://github.com/FZJ-JSC/"
                                  "jubench",
                "rules": rules,
            }},
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
