"""Determinism rules: wall clocks and unseeded RNG in model code.

The content-addressed result cache (``repro.exec.cache``) assumes that
a benchmark's output is a pure function of its cache key.  A wall-clock
reading or an unseeded random generator inside model code breaks that
assumption silently: the cache returns a result the current code could
never reproduce.  These rules police the model-code packages
(``vmpi/``, ``apps/``, ``synthetic/``, ``core/``); ``telemetry/``,
``exec/`` and ``faults/`` are exempt because their clocks are
injectable by design (fault schedules fire from the injected fault
clock and seeded / content-hash draws, never from wall time).
"""

from __future__ import annotations

import ast

from ..findings import Severity
from .base import Collector, ModuleInfo, Rule, canonical_name, import_aliases

#: path segments that mark model code (cache-key relevant)
MODEL_SEGMENTS = frozenset({"vmpi", "apps", "synthetic", "core"})
#: path segments exempt from determinism rules (injectable clocks).
#: ``faults`` mirrors telemetry's exemption: fault schedules fire from
#: the injectable fault clock and seeded/content-hash draws, so its
#: clock and RNG uses are deterministic by construction.
EXEMPT_SEGMENTS = frozenset({"telemetry", "exec", "check", "faults"})

WALL_CLOCKS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: module-level numpy.random functions driven by hidden global state
NP_GLOBAL_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "normal", "uniform", "choice", "shuffle", "permutation",
    "seed", "standard_normal", "exponential", "poisson",
})

#: stdlib ``random`` module functions driven by the global Mersenne state
PY_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "gauss",
    "normalvariate", "choice", "choices", "shuffle", "sample", "seed",
    "betavariate", "expovariate", "triangular", "vonmisesvariate",
})


def _model_scope(relpath: str) -> bool:
    segments = set(relpath.split("/"))
    if segments & EXEMPT_SEGMENTS:
        return False
    return bool(segments & MODEL_SEGMENTS)


class WallClockRule(Rule):
    """DET001: wall-clock reads in model code poison the cache key."""

    id = "DET001"
    name = "wall-clock-call"
    severity = Severity.WARNING
    description = ("Model code reads a wall clock (time.time, "
                   "perf_counter, datetime.now, ...); results become "
                   "irreproducible and the content-addressed cache key "
                   "is dishonest. Inject a clock instead.")

    def applies_to(self, relpath: str) -> bool:
        return _model_scope(relpath)

    def check_module(self, module: ModuleInfo, out: Collector) -> None:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_name(node.func, aliases)
            if name in WALL_CLOCKS:
                out.add(self, module.relpath, node.lineno,
                        f"call to {name}() in model code; inject a "
                        f"clock so cached results stay reproducible")


class UnseededRngRule(Rule):
    """DET002: unseeded or global-state RNG use in model code."""

    id = "DET002"
    name = "unseeded-rng"
    severity = Severity.ERROR
    description = ("Model code draws randomness from an unseeded "
                   "generator or the module-level global RNG state; "
                   "two runs with the same cache key diverge. Thread a "
                   "seeded numpy.random.Generator through instead.")

    def applies_to(self, relpath: str) -> bool:
        return _model_scope(relpath)

    def check_module(self, module: ModuleInfo, out: Collector) -> None:
        aliases = import_aliases(module.tree)
        call_funcs = {id(n.func) for n in ast.walk(module.tree)
                      if isinstance(n, ast.Call)}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                self._check_call(node, aliases, module, out)
            elif isinstance(node, (ast.Attribute, ast.Name)) and \
                    id(node) not in call_funcs:
                self._check_reference(node, aliases, module, out)

    def _check_call(self, node: ast.Call, aliases: dict[str, str],
                    module: ModuleInfo, out: Collector) -> None:
        name = canonical_name(node.func, aliases)
        if name is None:
            return
        if name == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                out.add(self, module.relpath, node.lineno,
                        "numpy.random.default_rng() without a seed; "
                        "pass an explicit seed or thread a Generator "
                        "through")
            return
        if name == "random.Random" and not node.args and not node.keywords \
                and aliases.get("random") == "random":
            out.add(self, module.relpath, node.lineno,
                    "random.Random() without a seed")
            return
        parts = name.split(".")
        if len(parts) == 3 and parts[:2] == ["numpy", "random"] and \
                parts[2] in NP_GLOBAL_FNS:
            out.add(self, module.relpath, node.lineno,
                    f"numpy.random.{parts[2]}() uses the hidden global "
                    f"RNG state; use a seeded Generator")
            return
        if len(parts) == 2 and parts[0] == "random" and \
                parts[1] in PY_RANDOM_FNS and \
                aliases.get("random") == "random":
            out.add(self, module.relpath, node.lineno,
                    f"random.{parts[1]}() uses the global Mersenne "
                    f"state; use a seeded generator instance")

    def _check_reference(self, node: ast.AST, aliases: dict[str, str],
                         module: ModuleInfo, out: Collector) -> None:
        """Flag ``default_rng`` passed by reference (e.g. as a dataclass
        ``default_factory``) -- it constructs an unseeded generator."""
        if isinstance(node, ast.Attribute) and node.attr != "default_rng":
            return
        name = canonical_name(node, aliases)
        if name == "numpy.random.default_rng":
            out.add(self, module.relpath, node.lineno,
                    "numpy.random.default_rng passed by reference "
                    "constructs an unseeded generator (e.g. "
                    "default_factory); use a seeded factory")
