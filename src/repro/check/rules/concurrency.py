"""Concurrency rule: module-level mutable state wants a lock.

The engine runs benchmarks from many worker threads; every module that
creates a :class:`threading.Lock` has already opted into that world.
Inside such modules, mutating module-level state (reassigning a
``global``, or calling a mutator on a module-level container) outside a
``with <lock>:`` block is a data race waiting for a thread schedule.
Import-time initialisation is exempt (single-threaded by construction);
instance state guarded by ``self._lock`` is out of scope here -- this
rule only polices *module* globals.
"""

from __future__ import annotations

import ast

from ..findings import Severity
from .base import (
    Collector,
    ModuleInfo,
    Rule,
    assigned_names,
    canonical_name,
    import_aliases,
)

LOCK_FACTORIES = frozenset({"threading.Lock", "threading.RLock"})

#: container methods that mutate in place
MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "appendleft", "popleft",
})

CONTAINER_FACTORIES = frozenset({
    "list", "dict", "set", "collections.defaultdict", "collections.deque",
    "collections.OrderedDict", "collections.Counter",
})


def _creates_lock(tree: ast.Module, aliases: dict[str, str]) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and \
                canonical_name(node.func, aliases) in LOCK_FACTORIES:
            return True
    return False


def _module_containers(tree: ast.Module,
                       aliases: dict[str, str]) -> set[str]:
    """Names bound at module level to mutable containers."""
    names: set[str] = set()
    for stmt in tree.body:
        value = getattr(stmt, "value", None)
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)) or value is None:
            continue
        is_container = isinstance(value, (ast.List, ast.Dict, ast.Set,
                                          ast.ListComp, ast.DictComp,
                                          ast.SetComp))
        if isinstance(value, ast.Call):
            is_container = canonical_name(value.func, aliases) \
                in CONTAINER_FACTORIES
        if not is_container:
            continue
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        for target in targets:
            names.update(n.id for n in assigned_names(target))
    return names


def _locky_with(node: ast.With) -> bool:
    """Whether a ``with`` statement plausibly holds a lock."""
    return any("lock" in ast.unparse(item.context_expr).lower()
               for item in node.items)


class UnlockedModuleStateRule(Rule):
    """LCK201: module-level state mutated outside a lock."""

    id = "LCK201"
    name = "unlocked-module-state"
    severity = Severity.ERROR
    description = ("In a Lock-using module, module-level mutable state "
                   "is mutated outside any 'with <lock>:' block; under "
                   "the threaded execution engine this is a data race.")

    def check_module(self, module: ModuleInfo, out: Collector) -> None:
        aliases = import_aliases(module.tree)
        if not _creates_lock(module.tree, aliases):
            return
        containers = _module_containers(module.tree, aliases)
        for fn in ast.walk(module.tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(fn, containers, module, out)

    def _check_function(self, fn: ast.AST, containers: set[str],
                        module: ModuleInfo, out: Collector) -> None:
        """One function body; nested defs are visited independently."""
        globals_here: set[str] = set()
        statements: list[tuple[ast.AST, bool]] = []

        def walk(node: ast.AST, in_lock: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.Lambda)):
                    continue  # separate scope, separate pass
                if isinstance(child, ast.Global):
                    globals_here.update(child.names)
                    continue
                if isinstance(child, ast.With):
                    walk(child, in_lock or _locky_with(child))
                    continue
                statements.append((child, in_lock))
                walk(child, in_lock)

        walk(fn, False)
        for node, in_lock in statements:
            if in_lock:
                continue
            self._check_node(node, globals_here, containers, module, out)

    def _check_node(self, node: ast.AST, globals_here: set[str],
                    containers: set[str], module: ModuleInfo,
                    out: Collector) -> None:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                for name in assigned_names(target):
                    if name.id in globals_here:
                        out.add(self, module.relpath, node.lineno,
                                f"module global {name.id!r} reassigned "
                                f"outside a lock")
                if isinstance(target, ast.Subscript) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id in containers:
                    out.add(self, module.relpath, node.lineno,
                            f"module-level container "
                            f"{target.value.id!r} written outside a "
                            f"lock")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id in containers:
                    out.add(self, module.relpath, node.lineno,
                            f"module-level container "
                            f"{target.value.id!r} mutated (del) "
                            f"outside a lock")
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in MUTATORS and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id in containers:
            out.add(self, module.relpath, node.lineno,
                    f"module-level container {node.func.value.id!r}."
                    f"{node.func.attr}() outside a lock")
