"""COMM5xx: static MPI-protocol verification of vmpi rank programs.

One project-scoped rule lifts every rank program's communication
skeleton out of the AST (``repro.check.protocol``) and replays it at
small concrete sizes against an abstract model of the engine's exact
matching semantics.  Six rule ids:

* **COMM501** -- a collective sits under rank-dependent control flow
  with non-covering branches: some ranks post it, some never do (or
  take a different communication path), so the collective can never
  complete;
* **COMM502** -- ranks of one communicator disagree on the *order* of
  collectives: the same sequence position mixes different kinds;
* **COMM503** -- a send/recv wait-for cycle in the per-tag channel
  graph: a genuine deadlock.  Every COMM503 verdict is backed by the
  differential oracle -- the flagged configuration deadlocks in
  ``VmpiEngine(mode="step")``;
* **COMM504** -- two concurrent transfers of one batch share a
  (communicator, channel, tag): the tag no longer discriminates the
  messages and matching silently falls back to posting order;
* **COMM505** -- a rooted/reducing collective's root or reduce op is
  not derivably consistent across ranks (subset-participation
  mismatch);
* **COMM506** -- an orphan endpoint: a send nobody receives, a receive
  whose peer already terminated, or asymmetric exchange counts.

The pass is deliberately quiet at its soundness boundary: programs it
cannot resolve (rank-dependent branching around communication on
unproven values, opaque generators, out-of-range peers that would
crash before communicating) produce *no* findings, and replays that
had to approximate unknown loop bounds suppress the exact-trace
verdicts (COMM503/COMM506).  See DESIGN.md §12.
"""

from __future__ import annotations

from ..findings import Severity
from ..protocol import DEFAULT_SIZES, analyze_modules
from .base import Collector, ModuleInfo, Rule

ID_SEVERITY = {
    "COMM501": Severity.ERROR,
    "COMM502": Severity.ERROR,
    "COMM503": Severity.ERROR,
    "COMM504": Severity.WARNING,
    "COMM505": Severity.ERROR,
    "COMM506": Severity.ERROR,
}

ID_DESCRIPTIONS = {
    "COMM501": ("A collective is issued under rank-dependent control "
                "flow with non-covering branches; ranks that skip it "
                "leave the collective incomplete forever."),
    "COMM502": ("Ranks of one communicator post collectives in "
                "different orders: the same sequence position mixes "
                "different collective kinds."),
    "COMM503": ("Send/recv wait-for cycle in the per-tag channel "
                "graph: no rank in the cycle can progress (deadlock, "
                "differentially validated against the step engine)."),
    "COMM504": ("Concurrent transfers in one batch share a "
                "(communicator, channel, tag); the tag no longer "
                "discriminates the messages and matching falls back "
                "to posting order."),
    "COMM505": ("A rooted or reducing collective's root/reduce op is "
                "not derivably consistent across ranks "
                "(subset-participation mismatch)."),
    "COMM506": ("Unmatched point-to-point endpoint: a send nobody "
                "receives, a receive whose peer terminated without "
                "sending, or asymmetric exchange transfer counts."),
}


class CommProtocolRule(Rule):
    """COMM501..COMM506: protocol replay over extracted skeletons."""

    id = "COMM501"
    ids = ("COMM502", "COMM503", "COMM504", "COMM505", "COMM506")
    name = "comm-protocol"
    severity = Severity.ERROR
    description = ID_DESCRIPTIONS["COMM501"]
    #: project scope: verdicts depend on *all* modules (helpers are
    #: inlined across module boundaries), so per-module caching would
    #: be unsound -- and cold/warm output is trivially identical
    scope = "project"

    #: communicator sizes each program is replayed at
    sizes = DEFAULT_SIZES

    def __init__(self) -> None:
        self._modules: list[ModuleInfo] = []

    def descriptors(self) -> list[dict]:
        return [{"id": rid, "name": f"{self.name}-{rid[-3:]}",
                 "description": ID_DESCRIPTIONS[rid],
                 "severity": ID_SEVERITY[rid]}
                for rid in sorted(ID_SEVERITY)]

    def applies_to(self, relpath: str) -> bool:
        # the analyzer's own code and its fixtures talk *about*
        # protocols; only model/app code communicates
        return "check/" not in relpath

    def check_module(self, module: ModuleInfo, out: Collector) -> None:
        self._modules.append(module)

    def finalize(self, out: Collector) -> None:
        modules = sorted(self._modules, key=lambda m: m.relpath)
        findings = analyze_modules(
            [(m.relpath, m.tree) for m in modules], sizes=self.sizes)
        for finding in findings:
            if not self.emits(finding.rule_id):
                continue
            out.add(self, finding.relpath, finding.line,
                    finding.message, rule_id=finding.rule_id,
                    severity=ID_SEVERITY[finding.rule_id],
                    trace=list(finding.trace))
        self._modules = []
