"""UNIT3xx: flow-sensitive dimensional analysis over the model code.

One rule class runs a lightweight abstract interpretation per module
and emits five rule ids:

* **UNIT301** -- adding/subtracting quantities of different dimensions
  (seconds to bytes, time to bandwidth, ...);
* **UNIT302** -- multiplying two rates (B/s * FLOP/s has no physical
  meaning in the cost model);
* **UNIT303** -- mixing SI and binary prefix constants in one product
  (``GIB * GIGA``); division is exempt because ``x * GIB / GIGA`` is
  the sanctioned conversion idiom;
* **UNIT304** -- passing a quantity of the wrong dimension to an
  annotated parameter (``DIMS`` registry or the ``fmt_si`` unit
  string);
* **UNIT305** -- a time-valued function (annotated ``.return: s`` or
  named ``*_seconds``/``*_time``) returning a non-time quantity: the
  FOM pipeline normalises everything to seconds, so these are the
  load-bearing sinks.

Dimensions come from four seed layers, weakest last: the ``DIMS``
annotation registry, ``repro.units`` constants, ``fmt_si``/``fmt_bytes``
call sites, and parameter-name heuristics.  The analysis is
flow-sensitive within a function (assignments update the environment
in statement order) and interprocedural-lite: call results and callee
parameters resolve through the project-wide registry built from every
module's annotations and signatures.  Unknown stays unknown -- every
check requires *proven* dimensions on both sides, so the rule is quiet
on code that never opted in.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace

from ..dims import (
    ONE,
    TIME,
    Dim,
    DimRegistry,
    dim_of_name,
    dim_of_return,
    parse_dim,
    units_constant,
)
from ..findings import Severity
from .base import (
    Collector,
    ModuleInfo,
    ProjectContext,
    Rule,
    canonical_name,
    import_aliases,
)

#: per-id severities; prefix mixing is style-adjacent, the rest are
#: genuine unit errors
ID_SEVERITY = {
    "UNIT301": Severity.ERROR,
    "UNIT302": Severity.ERROR,
    "UNIT303": Severity.WARNING,
    "UNIT304": Severity.ERROR,
    "UNIT305": Severity.ERROR,
}

ID_DESCRIPTIONS = {
    "UNIT301": ("Quantities of different physical dimensions are added "
                "or subtracted (e.g. seconds + bytes); the result has "
                "no meaning in the cost model."),
    "UNIT302": ("Two rates are multiplied (e.g. B/s * FLOP/s); rates "
                "compose with times and counts, never with each other."),
    "UNIT303": ("SI and binary prefix constants are mixed in one "
                "product (e.g. GIB * GIGA); pick one family, or divide "
                "to convert."),
    "UNIT304": ("A quantity of the wrong dimension is passed to a "
                "dimension-annotated parameter (DIMS registry or "
                "fmt_si unit string)."),
    "UNIT305": ("A time-valued function (annotated '.return: s' or "
                "named *_seconds/*_time) returns a non-time quantity; "
                "the FOM pipeline normalises everything to seconds."),
}


@dataclass(frozen=True)
class DimValue:
    """Abstract value of one expression.

    ``dim`` is None when unproven.  ``weak`` marks purely-literal
    dimensionless values (``0.5``, ``2 ** n``): they may stand for any
    quantity, so mismatch checks skip them.  ``families`` carries the
    SI/binary prefix provenance for UNIT303.  ``trace`` is the
    provenance chain rendered into the finding.
    """

    dim: Dim | None = None
    weak: bool = False
    families: frozenset = frozenset()
    trace: tuple[str, ...] = ()

    @property
    def known(self) -> bool:
        return self.dim is not None


UNKNOWN = DimValue()
LITERAL = DimValue(dim=ONE, weak=True)


def _seed(dim: Dim, why: str) -> DimValue:
    return DimValue(dim=dim, trace=(why,))


class DimensionalDataflowRule(Rule):
    """UNIT301..UNIT305: dimension checking over names and expressions."""

    id = "UNIT301"
    ids = ("UNIT302", "UNIT303", "UNIT304", "UNIT305")
    name = "dimensional-dataflow"
    severity = Severity.ERROR
    description = ID_DESCRIPTIONS["UNIT301"]
    scope = "local"

    def __init__(self) -> None:
        self._registry = DimRegistry()

    def descriptors(self) -> list[dict]:
        return [{"id": rid, "name": f"{self.name}-{rid[-3:]}",
                 "description": ID_DESCRIPTIONS[rid],
                 "severity": ID_SEVERITY[rid]}
                for rid in sorted(ID_SEVERITY)]

    def prepare(self, ctx: ProjectContext) -> None:
        self._registry = ctx.registry

    def applies_to(self, relpath: str) -> bool:
        # the analyzer's own code talks *about* dimensions, not with them
        return "check/" not in relpath

    def check_module(self, module: ModuleInfo, out: Collector) -> None:
        _ModuleFlow(self, module, out, self._registry).run()

    # -- reporting -----------------------------------------------------------

    def report(self, out: Collector, rule_id: str, module: ModuleInfo,
               node: ast.AST, message: str,
               *operands: DimValue) -> None:
        if not self.emits(rule_id):
            return
        trace: list[str] = []
        for op in operands:
            for step in op.trace:
                if step not in trace:
                    trace.append(step)
        out.add(self, module.relpath, node.lineno, message,
                rule_id=rule_id, severity=ID_SEVERITY[rule_id],
                trace=trace)


class _ModuleFlow:
    """One module's dataflow pass: module env, then each function."""

    def __init__(self, rule: DimensionalDataflowRule, module: ModuleInfo,
                 out: Collector, registry: DimRegistry) -> None:
        self.rule = rule
        self.module = module
        self.out = out
        self.registry = registry
        self.aliases = import_aliases(module.tree)

    def run(self) -> None:
        module_env: dict[str, DimValue] = {}
        self._exec_block(self.module.tree.body, module_env,
                         expect_return=None, func_label=None)
        for node in ast.walk(self.module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(node, dict(module_env))

    # -- function-level flow -------------------------------------------------

    def _check_function(self, fn: ast.AST,
                        env: dict[str, DimValue]) -> None:
        for arg in fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs:
            if arg.arg in ("self", "cls"):
                continue
            dim = self.registry.lookup(f"{fn.name}.{arg.arg}")
            if dim is not None:
                env[arg.arg] = _seed(
                    dim, f"{arg.arg}: {dim} (DIMS annotation "
                         f"{fn.name}.{arg.arg})")
                continue
            dim = dim_of_name(arg.arg)
            if dim is not None:
                env[arg.arg] = _seed(
                    dim, f"{arg.arg}: {dim} (parameter-name heuristic)")
        expect = self.registry.lookup(f"{fn.name}.return")
        why = f"DIMS annotation {fn.name}.return"
        if expect is None:
            expect = dim_of_return(fn.name)
            why = f"function name {fn.name!r}"
        self._exec_block(fn.body, env, expect_return=expect,
                         func_label=f"{fn.name} ({why})"
                         if expect is not None else None)

    def _exec_block(self, stmts: list[ast.stmt],
                    env: dict[str, DimValue],
                    expect_return: Dim | None,
                    func_label: str | None) -> None:
        """Linear, flow-sensitive walk; nested defs are skipped (they
        get their own pass with the module env)."""
        for stmt in stmts:
            self._exec_stmt(stmt, env, expect_return, func_label)

    def _exec_stmt(self, stmt: ast.stmt, env: dict[str, DimValue],
                   expect_return: Dim | None,
                   func_label: str | None) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            if len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                env[name] = self._bind(name, value)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = self.eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                env[name] = self._bind(name, value)
            return
        if isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                synthetic = ast.BinOp(left=ast.Name(id=stmt.target.id,
                                                    ctx=ast.Load()),
                                      op=stmt.op, right=stmt.value)
                ast.copy_location(synthetic, stmt)
                ast.fix_missing_locations(synthetic)
                env[stmt.target.id] = self.eval(synthetic, env)
            else:
                self.eval(stmt.value, env)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self.eval(stmt.value, env)
                self._check_return(stmt, value, expect_return, func_label)
            return
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self.eval(stmt.test, env)
            self._exec_block(stmt.body, env, expect_return, func_label)
            self._exec_block(stmt.orelse, env, expect_return, func_label)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval(stmt.iter, env)
            for name in ast.walk(stmt.target):
                if isinstance(name, ast.Name):
                    env[name.id] = UNKNOWN
            self._exec_block(stmt.body, env, expect_return, func_label)
            self._exec_block(stmt.orelse, env, expect_return, func_label)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr, env)
            self._exec_block(stmt.body, env, expect_return, func_label)
            return
        if isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, env, expect_return, func_label)
            for handler in stmt.handlers:
                self._exec_block(handler.body, env, expect_return,
                                 func_label)
            self._exec_block(stmt.orelse, env, expect_return, func_label)
            self._exec_block(stmt.finalbody, env, expect_return,
                             func_label)
            return
        # assert/raise/del/...: evaluate child expressions for their
        # arithmetic checks, without tracking any binding
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.eval(child, env)

    def _bind(self, name: str, value: DimValue) -> DimValue:
        """Binding an unproven value to a dimension-named variable adopts
        the name's declared dimension: in ``MESSAGE_BYTES = 16 * MIB``
        the literal is polymorphic and in ``flops = F * batch`` the
        factors are opaque -- the name states the intent either way.
        Known (non-weak) values keep their computed dimension, so a
        mismatching assignment still surfaces downstream."""
        if value.known and not value.weak:
            return value
        declared = dim_of_name(name)
        if declared is None or (value.weak and declared == value.dim):
            return value
        return DimValue(
            dim=declared, weak=False, families=value.families,
            trace=value.trace + (
                f"{name}: {declared} (assignment adopts name heuristic)",))

    def _check_return(self, stmt: ast.Return, value: DimValue,
                      expect: Dim | None, func_label: str | None) -> None:
        if expect is None or func_label is None:
            return
        if not value.known or value.weak or value.dim == expect:
            return
        rule_id = "UNIT305" if expect == TIME else "UNIT304"
        self.rule.report(
            self.out, rule_id, self.module, stmt,
            f"{func_label} must return {expect} but this return "
            f"value has dimension {value.dim}", value)

    # -- expression evaluation -----------------------------------------------

    def eval(self, node: ast.expr, env: dict[str, DimValue]) -> DimValue:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or \
                    not isinstance(node.value, (int, float)):
                return UNKNOWN
            return LITERAL
        if isinstance(node, ast.Name):
            return self._eval_name(node, env)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            body = self.eval(node.body, env)
            orelse = self.eval(node.orelse, env)
            if body.dim == orelse.dim:
                return body
            # `x / bw if bw else 0.0`: the literal arm is polymorphic
            if orelse.weak and body.known:
                return body
            if body.weak and orelse.known:
                return orelse
            return UNKNOWN
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self.eval(elt, env)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for v in node.values:
                if v is not None:
                    self.eval(v, env)
            return UNKNOWN
        if isinstance(node, ast.Compare):
            self.eval(node.left, env)
            for comp in node.comparators:
                self.eval(comp, env)
            return UNKNOWN
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                self.eval(v, env)
            return UNKNOWN
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                             ast.DictComp)):
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
            # the SPMD rank programs charge their costs through yielded
            # op constructors -- walk them, but the resumed value is
            # whatever the engine sends back
            if node.value is not None:
                self.eval(node.value, env)
            return UNKNOWN
        return UNKNOWN

    def _eval_name(self, node: ast.Name,
                   env: dict[str, DimValue]) -> DimValue:
        const = units_constant(canonical_name(node, self.aliases))
        if const is not None:
            dim, families = const
            if dim == ONE:    # prefix constant: scale factor, family only
                return DimValue(dim=ONE, weak=True, families=families,
                                trace=(f"{node.id}: "
                                       f"{'/'.join(sorted(families))} "
                                       f"prefix constant (repro.units)",))
            return DimValue(dim=dim,
                            trace=(f"{node.id}: {dim} (repro.units)",))
        if node.id in env:
            return env[node.id]
        dim = dim_of_name(node.id)
        if dim is not None:
            return _seed(dim, f"{node.id}: {dim} (name heuristic)")
        return UNKNOWN

    def _eval_attribute(self, node: ast.Attribute,
                        env: dict[str, DimValue]) -> DimValue:
        const = units_constant(canonical_name(node, self.aliases))
        if const is not None:
            dim, families = const
            if dim == ONE:
                return DimValue(dim=ONE, weak=True, families=families,
                                trace=(f"{node.attr}: "
                                       f"{'/'.join(sorted(families))} "
                                       f"prefix constant (repro.units)",))
            return DimValue(dim=dim,
                            trace=(f"{node.attr}: {dim} (repro.units)",))
        candidates = [node.attr]
        if isinstance(node.value, ast.Name):
            candidates.insert(0, f"{node.value.id}.{node.attr}")
        dim = self.registry.lookup(*candidates)
        if dim is not None:
            return _seed(dim, f"{node.attr}: {dim} (DIMS annotation)")
        dim = dim_of_name(node.attr)
        if dim is not None:
            return _seed(dim, f"{node.attr}: {dim} (attribute-name "
                              f"heuristic)")
        self.eval(node.value, env)
        return UNKNOWN

    def _eval_binop(self, node: ast.BinOp,
                    env: dict[str, DimValue]) -> DimValue:
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        if isinstance(node.op, ast.Mult):
            return self._eval_mult(node, left, right)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if left.known and right.known:
                return DimValue(dim=left.dim / right.dim,
                                weak=left.weak and right.weak,
                                trace=left.trace + right.trace)
            return UNKNOWN
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return self._eval_addsub(node, left, right)
        if isinstance(node.op, ast.Pow):
            if left.known and isinstance(node.right, ast.Constant) and \
                    isinstance(node.right.value, int):
                return replace(left, dim=left.dim.pow(node.right.value))
            return LITERAL if left.weak else UNKNOWN
        if isinstance(node.op, ast.Mod):
            return left
        return UNKNOWN

    def _eval_mult(self, node: ast.BinOp, left: DimValue,
                   right: DimValue) -> DimValue:
        families = left.families | right.families
        if ("si" in left.families and "bin" in right.families) or \
                ("bin" in left.families and "si" in right.families):
            self.rule.report(
                self.out, "UNIT303", self.module, node,
                "SI and binary prefix constants mixed in one "
                "product; pick one family or divide to convert",
                left, right)
        if left.known and right.known:
            if left.dim.is_rate and right.dim.is_rate and \
                    not left.weak and not right.weak:
                self.rule.report(
                    self.out, "UNIT302", self.module, node,
                    f"multiplying two rates ({left.dim} * "
                    f"{right.dim}); rates compose with times and "
                    f"counts, not with each other", left, right)
            return DimValue(dim=left.dim * right.dim,
                            weak=left.weak and right.weak,
                            families=families,
                            trace=left.trace + right.trace)
        return DimValue(dim=None, families=families,
                        trace=left.trace + right.trace)

    def _eval_addsub(self, node: ast.BinOp, left: DimValue,
                     right: DimValue) -> DimValue:
        if left.known and right.known and not left.weak and \
                not right.weak and left.dim != right.dim:
            op = "+" if isinstance(node.op, ast.Add) else "-"
            self.rule.report(
                self.out, "UNIT301", self.module, node,
                f"'{op}' combines {left.dim} with {right.dim}; "
                f"addition needs operands of one dimension",
                left, right)
            return UNKNOWN
        if left.known and right.known:
            strong = left if not left.weak else right
            return DimValue(dim=strong.dim,
                            weak=left.weak and right.weak,
                            families=left.families | right.families,
                            trace=strong.trace)
        return UNKNOWN

    # -- calls ---------------------------------------------------------------

    def _eval_call(self, node: ast.Call,
                   env: dict[str, DimValue]) -> DimValue:
        # evaluate each argument exactly once: evaluation both infers
        # and reports, so re-walking an argument would double findings
        arg_values = [self.eval(a, env) for a in node.args]
        kw_values = [(kw.arg, self.eval(kw.value, env))
                     for kw in node.keywords]
        name = canonical_name(node.func, self.aliases)
        tail = name.rsplit(".", 1)[-1] if name else None
        if tail == "fmt_si":
            self._check_fmt_si(node, arg_values, kw_values)
        if tail is not None:
            self._check_annotated_args(node, tail, arg_values, kw_values)
        if tail in ("min", "max", "abs", "round", "ceil", "floor",
                    "sorted"):
            strong = [v for v in arg_values if v.known and not v.weak]
            if strong and all(v.dim == strong[0].dim for v in strong):
                return replace(strong[0], families=frozenset())
            if arg_values and all(v.weak for v in arg_values):
                return LITERAL
            return UNKNOWN
        if tail in ("log", "log2", "log10", "exp", "len"):
            return LITERAL    # dimensionless, polymorphic like a literal
        if tail is not None:
            dim = self.registry.lookup(f"{tail}.return")
            if dim is not None:
                return _seed(dim, f"{tail}(): {dim} (DIMS annotation "
                                  f"{tail}.return)")
            dim = dim_of_return(tail)
            if dim is not None:
                return _seed(dim, f"{tail}(): {dim} (callee-name "
                                  f"heuristic)")
        return UNKNOWN

    def _check_fmt_si(self, node: ast.Call, arg_values: list[DimValue],
                      kw_values: list[tuple[str | None, DimValue]]
                      ) -> None:
        """``fmt_si(x, 'FLOP/s')``: the unit string is an assertion."""
        unit_arg = None
        if len(node.args) >= 2:
            unit_arg = node.args[1]
        else:
            for kw in node.keywords:
                if kw.arg == "unit":
                    unit_arg = kw.value
        if not (isinstance(unit_arg, ast.Constant) and
                isinstance(unit_arg.value, str)) or not arg_values:
            return
        try:
            expect = parse_dim(unit_arg.value)
        except ValueError:
            return    # free-form unit label ('ranks', 'W', ...): no claim
        value = arg_values[0]
        if value.known and not value.weak and value.dim != expect:
            self.rule.report(
                self.out, "UNIT304", self.module, node,
                f"fmt_si() formats this value as "
                f"{unit_arg.value!r} ({expect}) but its inferred "
                f"dimension is {value.dim}", value)

    def _check_annotated_args(self, node: ast.Call, tail: str,
                              arg_values: list[DimValue],
                              kw_values: list[tuple[str | None, DimValue]]
                              ) -> None:
        """UNIT304 on arguments to DIMS-annotated parameters."""
        bindings: list[tuple[str, ast.expr, DimValue]] = []
        params = self.registry.params_of(tail)
        if params:
            for pos, (arg, value) in enumerate(zip(node.args,
                                                   arg_values)):
                if pos < len(params) and \
                        not isinstance(arg, ast.Starred):
                    bindings.append((params[pos], arg, value))
        for kw, (kw_name, value) in zip(node.keywords, kw_values):
            if kw_name is not None:
                bindings.append((kw_name, kw.value, value))
        for param, arg, value in bindings:
            expect = self.registry.lookup(f"{tail}.{param}")
            if expect is None:
                continue
            if value.known and not value.weak and value.dim != expect:
                self.rule.report(
                    self.out, "UNIT304", self.module, arg,
                    f"argument {param!r} of {tail}() expects "
                    f"{expect} but this value has dimension "
                    f"{value.dim}",
                    value,
                    DimValue(trace=(f"{param}: {expect} (DIMS "
                                    f"annotation {tail}.{param})",)))
