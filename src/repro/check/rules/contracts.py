"""Contract rules: the suite invariants the paper's methodology relies on.

* CON101 -- every benchmark implementation class (non-empty ``NAME``)
  declares a class-level FOM, and its ``NAME`` is a registered Table II
  benchmark.
* CON102 -- High-Scaling registry entries declare memory variants, in
  strictly increasing T < S < M < L fraction order; entries shipping
  fewer than the full four variants are reported at note level (the
  paper's Table II legitimately has such rows -- baseline them with a
  justification).
* CON103 -- ``$param`` / ``${param}`` references inside JUBE-style
  parameter sets resolve to parameters defined in the same spec.
* CON104 -- unit-prefix constants from ``repro.units`` scale values
  (``*``/``/``); adding them to bare numbers is a category error.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from ..findings import Severity
from .base import (
    Collector,
    ModuleInfo,
    Rule,
    assigned_names,
    canonical_name,
    dotted_parts,
    import_aliases,
)

#: memory fraction per MemoryVariant member (mirrors core.variants)
VARIANT_FRACTIONS = {"TINY": 0.25, "SMALL": 0.50,
                     "MEDIUM": 0.75, "LARGE": 1.00}

_PARAM_REF = re.compile(r"\$\{(\w+)\}|\$(\w+)")


@dataclass
class _ClassRecord:
    relpath: str
    lineno: int
    bases: tuple[str, ...]
    name_value: str | None      # the NAME = "..." constant, if any
    has_fom: bool


class FomDeclaredRule(Rule):
    """CON101: registered benchmark classes must declare a FOM."""

    id = "CON101"
    name = "fom-declared"
    severity = Severity.ERROR
    scope = "project"     # accumulates the cross-module class table
    description = ("Every benchmark implementation (a class with a "
                   "non-empty NAME) must declare a class-level "
                   "FigureOfMerit and use a registered Table II name; "
                   "the procurement methodology needs every FOM "
                   "normalised to a time metric.")

    def __init__(self) -> None:
        self._classes: dict[str, _ClassRecord] = {}
        self._registry_names: set[str] = set()
        self._saw_registry = False

    def check_module(self, module: ModuleInfo, out: Collector) -> None:
        if module.relpath.endswith("registry.py"):
            self._saw_registry = True
            self._registry_names |= set(registry_info_calls(module).keys())
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                self._record_class(node, module)

    def _record_class(self, node: ast.ClassDef, module: ModuleInfo) -> None:
        name_value: str | None = None
        has_fom = False
        for stmt in node.body:
            targets: list[ast.Name] = []
            if isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    targets.extend(assigned_names(t))
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets.extend(assigned_names(stmt.target))
            for t in targets:
                if t.id == "NAME" and isinstance(stmt, ast.Assign) and \
                        isinstance(stmt.value, ast.Constant) and \
                        isinstance(stmt.value.value, str):
                    name_value = stmt.value.value
                elif t.id == "fom":
                    has_fom = True
        bases = tuple(p[-1] for b in node.bases
                      if (p := dotted_parts(b)) is not None)
        self._classes[node.name] = _ClassRecord(
            relpath=module.relpath, lineno=node.lineno, bases=bases,
            name_value=name_value, has_fom=has_fom)

    def _inherits_fom(self, cls: str, seen: set[str] | None = None) -> bool:
        seen = seen or set()
        if cls in seen or cls not in self._classes:
            return False
        seen.add(cls)
        rec = self._classes[cls]
        if rec.has_fom:
            return True
        return any(self._inherits_fom(base, seen) for base in rec.bases)

    def finalize(self, out: Collector) -> None:
        for cls, rec in sorted(self._classes.items()):
            if not rec.name_value:
                continue
            if not self._inherits_fom(cls):
                out.add(self, rec.relpath, rec.lineno,
                        f"benchmark class {cls} (NAME="
                        f"{rec.name_value!r}) declares no class-level "
                        f"FOM; every registered benchmark needs one")
            if self._saw_registry and \
                    rec.name_value not in self._registry_names:
                out.add(self, rec.relpath, rec.lineno,
                        f"benchmark class {cls} uses NAME="
                        f"{rec.name_value!r}, which is not a registered "
                        f"Table II benchmark")


def registry_info_calls(module: ModuleInfo) -> dict[str, ast.Call]:
    """``BenchmarkInfo(...)`` calls in a registry module, keyed by name."""
    out: dict[str, ast.Call] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        parts = dotted_parts(node.func)
        if not parts or parts[-1] != "BenchmarkInfo":
            continue
        for kw in node.keywords:
            if kw.arg == "name" and isinstance(kw.value, ast.Constant):
                out[str(kw.value.value)] = node
    return out


def _module_aliases(tree: ast.Module) -> dict[str, tuple[str, ...]]:
    """Module-level name -> tuple of dotted values it aliases.

    Understands both ``_S = MemoryVariant.SMALL`` and the unpacking
    form ``_T, _S = (MemoryVariant.TINY, MemoryVariant.SMALL)``, plus
    tuple aliases like ``_BASE_HS = (Category.BASE, ...)``.
    """
    def dotted_of(node: ast.AST) -> tuple[str, ...] | None:
        if isinstance(node, (ast.Tuple, ast.List)):
            parts = []
            for elt in node.elts:
                p = dotted_parts(elt)
                if p is None:
                    return None
                parts.append(".".join(p))
            return tuple(parts)
        p = dotted_parts(node)
        return (".".join(p),) if p is not None else None

    aliases: dict[str, tuple[str, ...]] = {}
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                value = dotted_of(stmt.value)
                if value is not None:
                    aliases[target.id] = value
            elif isinstance(target, (ast.Tuple, ast.List)) and \
                    isinstance(stmt.value, (ast.Tuple, ast.List)) and \
                    len(target.elts) == len(stmt.value.elts):
                for t, v in zip(target.elts, stmt.value.elts):
                    if isinstance(t, ast.Name):
                        value = dotted_of(v)
                        if value is not None:
                            aliases[t.id] = value
    return aliases


class VariantOrderRule(Rule):
    """CON102: T/S/M/L memory variants are declared and ordered."""

    id = "CON102"
    name = "variant-order"
    severity = Severity.ERROR
    description = ("High-Scaling benchmarks must declare memory "
                   "variants with strictly increasing T<S<M<L memory "
                   "fractions; proposals pick 'the variant that best "
                   "exploits the available memory', which needs a "
                   "total order.")

    def applies_to(self, relpath: str) -> bool:
        return relpath.endswith("registry.py")

    def check_module(self, module: ModuleInfo, out: Collector) -> None:
        aliases = _module_aliases(module.tree)

        def resolve(node: ast.AST) -> tuple[str, ...] | None:
            """Dotted member names behind an expression (via aliases)."""
            if isinstance(node, (ast.Tuple, ast.List)):
                parts: list[str] = []
                for elt in node.elts:
                    sub = resolve(elt)
                    if sub is None:
                        return None
                    parts.extend(sub)
                return tuple(parts)
            p = dotted_parts(node)
            if p is None:
                return None
            if len(p) == 1 and p[0] in aliases:
                return aliases[p[0]]
            return (".".join(p),)

        for name, call in sorted(registry_info_calls(module).items()):
            # baseline identity: one entry per benchmark, not per line
            snippet = f"BenchmarkInfo(name={name!r})"
            kwargs = {kw.arg: kw.value for kw in call.keywords}
            variants = resolve(kwargs["variants"]) \
                if "variants" in kwargs else ()
            categories = resolve(kwargs.get("categories", ast.Tuple(elts=[])))
            if variants is None or categories is None:
                continue  # cannot prove anything about dynamic forms
            high_scaling = any(c.endswith("HIGH_SCALING")
                               for c in categories)
            members = [v.rsplit(".", 1)[-1] for v in variants]
            fractions = [VARIANT_FRACTIONS.get(m) for m in members]
            if high_scaling and not members:
                out.add(self, module.relpath, call.lineno,
                        f"{name}: High-Scaling benchmark declares no "
                        f"memory variants", snippet=snippet)
                continue
            if None in fractions:
                continue
            if any(b <= a for a, b in zip(fractions, fractions[1:])):
                labels = ",".join(members)
                out.add(self, module.relpath, call.lineno,
                        f"{name}: memory variants ({labels}) are not "
                        f"in strictly increasing T<S<M<L fraction "
                        f"order", snippet=snippet)
            elif high_scaling and len(members) < len(VARIANT_FRACTIONS):
                labels = ",".join(members)
                out.add(self, module.relpath, call.lineno,
                        f"{name}: High-Scaling benchmark ships only "
                        f"variants ({labels}); the full T/S/M/L set "
                        f"is the default expectation",
                        severity=Severity.NOTE, snippet=snippet)


class ParamResolutionRule(Rule):
    """CON103: ``$param`` references resolve within their spec."""

    id = "CON103"
    name = "param-resolution"
    severity = Severity.ERROR
    description = ("JUBE specs must resolve deterministically: every "
                   "$param / ${param} reference inside a parameter set "
                   "must name a parameter defined in the same spec.")

    def check_module(self, module: ModuleInfo, out: Collector) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Dict):
                self._check_spec_dict(node, module, out)
        scopes: list[ast.AST] = [module.tree]
        scopes += [n for n in ast.walk(module.tree)
                   if isinstance(n, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))]
        for scope in scopes:
            self._check_builder_scope(scope, module, out)

    # -- declarative dict specs --------------------------------------------

    @staticmethod
    def _dict_get(node: ast.Dict, key: str) -> ast.AST | None:
        for k, v in zip(node.keys, node.values):
            if isinstance(k, ast.Constant) and k.value == key:
                return v
        return None

    def _check_spec_dict(self, node: ast.Dict, module: ModuleInfo,
                         out: Collector) -> None:
        psets = self._dict_get(node, "parametersets")
        if not isinstance(psets, (ast.List, ast.Tuple)):
            return
        defined: set[str] = set()
        refs: list[tuple[str, int]] = []
        for pset in psets.elts:
            if not isinstance(pset, ast.Dict):
                continue
            params = self._dict_get(pset, "parameters")
            if not isinstance(params, (ast.List, ast.Tuple)):
                continue
            for param in params.elts:
                if not isinstance(param, ast.Dict):
                    continue
                pname = self._dict_get(param, "name")
                if isinstance(pname, ast.Constant) and \
                        isinstance(pname.value, str):
                    defined.add(pname.value)
                value = self._dict_get(param, "value")
                if value is not None:
                    refs.extend(self._string_refs(value))
        self._flag_unresolved(defined, refs, module, out)

    # -- ParameterSet.add() builder chains ---------------------------------

    def _check_builder_scope(self, scope: ast.AST, module: ModuleInfo,
                             out: Collector) -> None:
        defined: set[str] = set()
        refs: list[tuple[str, int]] = []
        # Stay inside this scope: nested functions are scanned as their
        # own scopes, so stop descending at their boundary.
        stack = list(ast.iter_child_nodes(scope))
        nodes: list[ast.AST] = []
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            nodes.append(node)
            stack.extend(ast.iter_child_nodes(node))
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Attribute) and
                    node.func.attr == "add" and len(node.args) >= 2):
                continue
            name_arg = node.args[0]
            if isinstance(name_arg, ast.Constant) and \
                    isinstance(name_arg.value, str):
                defined.add(name_arg.value)
            refs.extend(self._string_refs(node.args[1]))
        if defined:
            self._flag_unresolved(defined, refs, module, out)

    @staticmethod
    def _string_refs(value: ast.AST) -> list[tuple[str, int]]:
        refs = []
        for node in ast.walk(value):
            if isinstance(node, ast.Constant) and \
                    isinstance(node.value, str):
                for a, b in _PARAM_REF.findall(node.value):
                    refs.append((a or b, node.lineno))
        return refs

    def _flag_unresolved(self, defined: set[str],
                         refs: list[tuple[str, int]], module: ModuleInfo,
                         out: Collector) -> None:
        for ref, lineno in refs:
            if ref not in defined:
                out.add(self, module.relpath, lineno,
                        f"parameter reference ${ref} does not resolve "
                        f"to any parameter defined in this spec")


class UnitArithmeticRule(Rule):
    """CON104: unit-prefix constants scale; they are not quantities."""

    id = "CON104"
    name = "unit-arithmetic"
    severity = Severity.WARNING
    description = ("repro.units prefix constants (GIGA, GIB, ...) are "
                   "scale factors; adding or subtracting them against "
                   "bare numbers mixes a prefix with a quantity.")

    UNIT_CONSTS = frozenset({"KILO", "MEGA", "GIGA", "TERA", "PETA",
                             "EXA", "KIB", "MIB", "GIB", "TIB", "PIB"})

    def check_module(self, module: ModuleInfo, out: Collector) -> None:
        aliases = import_aliases(module.tree)

        def is_unit_const(node: ast.AST) -> str | None:
            name = canonical_name(node, aliases)
            if name is None:
                return None
            head, _, last = name.rpartition(".")
            # bare (unimported) names never resolve to a units module
            if last in self.UNIT_CONSTS and head.endswith("units"):
                return last
            return None

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.BinOp) or \
                    not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            left = is_unit_const(node.left)
            right = is_unit_const(node.right)
            if left or right:
                const = left or right
                op = "+" if isinstance(node.op, ast.Add) else "-"
                out.add(self, module.relpath, node.lineno,
                        f"unit constant {const} used with '{op}'; unit "
                        f"prefixes scale quantities (use '*' or '/')")
