"""REP6xx: interprocedural nondeterminism-taint analysis.

The whole repository rests on one invariant: every canonical artifact
(``canonical()`` / ``canonical_export()`` methods, journal digests,
content-addressed ``task_id`` / ``record_key`` / ``result_key``
computations, provenance stamps) must be byte-identical across worker
counts, cache temperature, replays and ``PYTHONHASHSEED`` values.  The
differential ``cmp`` suites can only sample that space; this rule
proves it per code path, the way COMM5xx lifted protocol correctness
out of the test suite.

One rule class runs a flow-sensitive taint interpretation per module
and emits six rule ids:

* **REP601** -- an environment- or identity-tainted value
  (``os.environ``, ``os.urandom``, ``uuid4``, ``id()``, string
  ``hash()``) reaches a canonical sink: the exported bytes change
  across processes;
* **REP602** -- iteration order of a ``set``/unordered view (or an
  order-sensitive consumer such as ``TopologicalSorter.static_order``)
  reaches serialized output: bytes depend on ``PYTHONHASHSEED``;
* **REP603** -- a wall-clock reading escapes a model function or
  reaches a canonical sink outside the declared volatile block;
* **REP604** -- process-global / unseeded RNG reaches a
  content-address hash (``stable_hash``, ``record_key``, ...): the
  same logical result gets a fresh address every run;
* **REP605** -- thread-completion order (``as_completed``,
  ``imap_unordered``) feeds an accumulation that reaches serialized
  output: bytes depend on scheduling;
* **REP606** -- a sink serializes an instance attribute assigned from
  a nondeterministic source: the field is volatile in all but name.

Taint *sources* are wall clocks, process-global RNG, the environment,
object identity, unordered iteration and thread-completion order.
*Sanitizers* clear order taints only: ``sorted()`` (with a
deterministic key), ``min``/``max``/``sum``/``len``/``any``/``all``
-- a value taint never washes out short of a volatile block.  Seeded
RNG (``Random(seed)``, ``default_rng(seed)``) and injectable clocks
are never sources; only the direct global-state reads are.  *Sinks*
are returns of functions named like canonical exporters or content
addresses, arguments of ``stable_hash``/``hash_fraction``/
``result_key``, and (for wall clocks) any model-code return.

The analysis is flow-sensitive within a function and interprocedural
through memoized per-function return-taint summaries resolved like the
COMM ``ProjectIndex`` (same module first, then a unique global match;
anything else stays clean -- unknown code is quiet at the boundary, so
constructors act as the sanctioned volatile boundary: taint handed to
an unresolved constructor is deliberately out of scope, which is
exactly the ``RunRecord(volatile=...)`` contract).  Because a module's
verdict depends on *other* modules' function bodies, the rule
contributes a summary-table fingerprint to the incremental cache key
(:meth:`ReproducibilityTaintRule.cache_fingerprint`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ...exec.cache import stable_hash
from ..findings import Severity
from .base import (
    Collector,
    ModuleInfo,
    ProjectContext,
    Rule,
    canonical_name,
    import_aliases,
    walk_functions,
)
from .determinism import (
    NP_GLOBAL_FNS,
    PY_RANDOM_FNS,
    WALL_CLOCKS,
    _model_scope,
)

ID_SEVERITY = {
    "REP601": Severity.ERROR,
    "REP602": Severity.ERROR,
    "REP603": Severity.WARNING,
    "REP604": Severity.ERROR,
    "REP605": Severity.ERROR,
    "REP606": Severity.ERROR,
}

ID_DESCRIPTIONS = {
    "REP601": ("A canonical/content-address sink returns or hashes a "
               "value tainted by the process environment or object "
               "identity (os.environ, os.urandom, uuid4, id(), string "
               "hash()); the exported bytes change across processes."),
    "REP602": ("Iteration order of a set/unordered view (or an "
               "order-sensitive consumer such as "
               "TopologicalSorter.static_order) reaches serialized "
               "output; bytes depend on PYTHONHASHSEED. Sort before "
               "serializing."),
    "REP603": ("A wall-clock reading escapes a model function or "
               "reaches a canonical sink outside the declared "
               "volatile block; reruns produce different bytes."),
    "REP604": ("Process-global or unseeded RNG reaches a "
               "content-address hash (stable_hash, record_key, "
               "task_id); the same logical result gets a fresh "
               "address every run."),
    "REP605": ("Thread/process completion order (as_completed, "
               "imap_unordered) feeds an accumulation that reaches "
               "serialized output; bytes depend on scheduling. "
               "Collect in submission order instead."),
    "REP606": ("A sink serializes an instance attribute assigned from "
               "a nondeterministic source; the field is volatile in "
               "all but name. Declare it in the volatile block or "
               "drop it from the canonical form."),
}

# -- taint categories --------------------------------------------------------

WALL = "wall-clock"
RNG = "rng"
ENV = "environment"
IDENT = "identity"
SET_ORDER = "set-order"
FS_ORDER = "fs-order"
THREAD_ORDER = "thread-order"

#: categories that taint the *value* itself; a sort cannot wash these out
VALUE_CATS = frozenset({WALL, RNG, ENV, IDENT})
#: categories that taint only the *iteration order* of a container
ORDER_CATS = frozenset({SET_ORDER, FS_ORDER, THREAD_ORDER})

_CAT_RULE = {WALL: "REP603", RNG: "REP604", ENV: "REP601",
             IDENT: "REP601", SET_ORDER: "REP602", FS_ORDER: "REP602",
             THREAD_ORDER: "REP605"}

# -- source tables -----------------------------------------------------------

#: environment reads; ``os.environ`` itself taints through attribute eval
ENV_CALLS = frozenset({
    "os.getenv", "os.urandom", "os.getpid", "os.getcwd", "os.uname",
    "socket.gethostname", "platform.node", "platform.platform",
    "uuid.uuid1", "uuid.uuid4",
})

FS_ORDER_CALLS = frozenset({"os.listdir", "os.scandir", "glob.glob",
                            "glob.iglob"})
FS_ORDER_METHODS = frozenset({"iterdir", "glob", "rglob", "scandir"})

THREAD_ORDER_CALLS = frozenset({"concurrent.futures.as_completed",
                                "as_completed"})
THREAD_ORDER_METHODS = frozenset({"as_completed", "imap_unordered"})

#: builtins whose result forgets iteration order (the sanitizer set)
ORDER_CLEARING = frozenset({"sorted", "min", "max", "sum", "len",
                            "any", "all"})
#: calls that pass taint through unchanged
PRESERVING = frozenset({
    "list", "tuple", "dict", "str", "repr", "float", "int", "bool",
    "abs", "round", "zip", "map", "filter", "enumerate", "reversed",
    "iter", "next", "json.dumps", "json.loads", "copy.copy",
    "copy.deepcopy", "format",
})
#: constructors whose *output order* follows their input's iteration
#: order (Name-calls are otherwise a quiet boundary)
PROPAGATING_CTORS = frozenset({"TopologicalSorter",
                               "graphlib.TopologicalSorter"})
#: method calls whose *result order* is their receiver's insertion
#: order; consuming an order-tainted receiver here is already the bug
ORDER_SENSITIVE_METHODS = frozenset({"static_order"})

#: list/set mutators that fold argument taint into the receiver
_MUTATORS = frozenset({"append", "add", "update", "extend", "insert",
                       "setdefault", "appendleft"})

# -- sink tables -------------------------------------------------------------

#: functions whose return value is a canonical, golden-compared export
CANONICAL_SINKS = frozenset({"canonical", "canonical_export", "stamp",
                             "to_line", "to_wire"})
#: functions whose return value is a content address / identity hash
ADDRESS_SINKS = frozenset({"digest", "task_id", "record_key",
                           "series_key", "run_key", "result_key",
                           "result_id", "cache_key", "content_key"})
#: call tails whose arguments feed a content-address hash directly
HASH_CALLEES = frozenset({"stable_hash", "hash_fraction", "result_key"})

_MAX_TRACE = 12


@dataclass(frozen=True)
class Taint:
    """Abstract taint of one expression.

    ``sources`` holds the category constants above; ``trace`` the
    provenance chain rendered into findings; ``fields`` the instance
    attributes the taint flowed through (drives REP606).
    """

    sources: frozenset = frozenset()
    trace: tuple = ()
    fields: frozenset = frozenset()

    def __bool__(self) -> bool:
        return bool(self.sources)

    def merged(self, *others: "Taint") -> "Taint":
        sources = set(self.sources)
        trace = list(self.trace)
        fields = set(self.fields)
        for other in others:
            sources |= other.sources
            for step in other.trace:
                if step not in trace:
                    trace.append(step)
            fields |= other.fields
        return Taint(frozenset(sources), tuple(trace[:_MAX_TRACE]),
                     frozenset(fields))

    def without_order(self, why: str) -> "Taint":
        kept = self.sources - ORDER_CATS
        if kept == self.sources:
            return self
        if not kept:
            return CLEAN
        return Taint(kept, (*self.trace[:_MAX_TRACE - 1], why),
                     self.fields)


CLEAN = Taint()


def _source(cat: str, step: str) -> Taint:
    return Taint(frozenset({cat}), (step,))


def _merge(taints) -> Taint:
    taints = [t for t in taints if t]
    if not taints:
        return CLEAN
    return taints[0].merged(*taints[1:])


def _sink_kind(fn_name: str) -> str | None:
    if fn_name in CANONICAL_SINKS:
        return "canonical"
    if fn_name in ADDRESS_SINKS:
        return "address"
    return None


# -- interprocedural summaries -----------------------------------------------

class _ProjectTaints:
    """Per-function return-taint summaries over the whole tree.

    Calls resolve like the COMM ``ProjectIndex``: candidates in the
    *same module* win (all of them, merged -- method names repeat
    across classes); otherwise a unique global name match; otherwise
    the callee stays clean.  Summaries treat parameters and ``self``
    attributes as clean, so they capture taint the callee *introduces*,
    never taint it merely passes through -- that flow is the caller's.
    """

    def __init__(self, modules: list[ModuleInfo]) -> None:
        self.aliases: dict[str, dict[str, str]] = {}
        self.globals: dict[str, dict[str, Taint]] = {}
        self._functions: dict[str, list[tuple[str, ast.AST]]] = {}
        self._modules: dict[str, ModuleInfo] = {}
        self._memo: dict[tuple[str, int], Taint] = {}
        self._active: set[tuple[str, int]] = set()
        for module in modules:
            self._modules[module.relpath] = module
            self.aliases[module.relpath] = import_aliases(module.tree)
            for fn in walk_functions(module.tree):
                self._functions.setdefault(fn.name, []).append(
                    (module.relpath, fn))
        # module-level environments come first (no summary resolution,
        # so there is no cycle with the function summaries below)
        for module in modules:
            flow = _TaintFlow(module, self.aliases[module.relpath],
                              index=None)
            flow.exec_body(module.tree.body)
            self.globals[module.relpath] = flow.env
        # eagerly materialize every summary in deterministic order so
        # check_module() is read-only and thread-safe afterwards
        for module in modules:
            for fn in walk_functions(module.tree):
                self.summary(module.relpath, fn)

    def call_taint(self, relpath: str, tail: str) -> Taint:
        candidates = self._functions.get(tail, [])
        local = [(rel, fn) for rel, fn in candidates if rel == relpath]
        chosen = local or (candidates if len(candidates) == 1 else [])
        return _merge(self.summary(rel, fn) for rel, fn in chosen)

    def summary(self, relpath: str, fn: ast.AST) -> Taint:
        key = (relpath, id(fn))
        if key in self._memo:
            return self._memo[key]
        if key in self._active:
            return CLEAN
        self._active.add(key)
        try:
            flow = _TaintFlow(self._modules[relpath],
                              self.aliases[relpath], index=self,
                              genv=self.globals.get(relpath))
            flow.exec_body(fn.body)
            taint = _merge(flow.returned)
            if taint:
                taint = Taint(taint.sources,
                              (*taint.trace[:_MAX_TRACE - 1],
                               f"returned by {fn.name}() "
                               f"({relpath}:{fn.lineno})"),
                              frozenset())
        finally:
            self._active.discard(key)
        self._memo[key] = taint
        return taint

    def fingerprint(self) -> str:
        table = sorted(
            (rel, fn.name, fn.lineno,
             sorted(self._memo[(rel, id(fn))].sources),
             list(self._memo[(rel, id(fn))].trace))
            for cands in self._functions.values()
            for rel, fn in cands)
        return stable_hash(table)


# -- the flow interpreter ----------------------------------------------------

class _TaintFlow:
    """Statement-ordered taint interpretation of one body.

    Three uses share it: module-level environments (``index=None``,
    known tables only), function summaries (collect ``returned``), and
    the reporting pass (``sink`` wired up).  ``attrs`` carries the
    enclosing class's attribute taints; when ``collect_attrs`` is set,
    ``self.X = tainted`` assignments are recorded there instead of
    findings being emitted.
    """

    def __init__(self, module: ModuleInfo, aliases: dict[str, str], *,
                 index: "_ProjectTaints | None",
                 genv: dict[str, Taint] | None = None,
                 attrs: dict[str, Taint] | None = None,
                 collect_attrs: bool = False,
                 sink=None) -> None:
        self.module = module
        self.aliases = aliases
        self.index = index
        self.env: dict[str, Taint] = dict(genv or {})
        self.attrs = attrs if attrs is not None else {}
        self.collect_attrs = collect_attrs
        self.sink = sink
        self.returned: list[Taint] = []

    def _at(self, node: ast.AST) -> str:
        return f"{self.module.relpath}:{getattr(node, 'lineno', 0)}"

    # -- statements ----------------------------------------------------------

    def exec_body(self, body) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import, ast.ImportFrom,
                             ast.Global, ast.Nonlocal, ast.Pass)):
            return
        if isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taint)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                prior = self.env.get(stmt.target.id, CLEAN)
                self.env[stmt.target.id] = prior.merged(taint)
            else:
                self._bind(stmt.target, taint)
        elif isinstance(stmt, ast.Return):
            taint = (self.eval(stmt.value)
                     if stmt.value is not None else CLEAN)
            self.returned.append(taint)
            if self.sink is not None:
                self.sink.on_return(stmt, taint)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self.eval(stmt.iter)
            for name in _target_names(stmt.target):
                self.env[name] = taint
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint)
            self.exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_body(stmt.body)
            for handler in stmt.handlers:
                self.exec_body(handler.body)
            self.exec_body(stmt.orelse)
            self.exec_body(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
        elif isinstance(stmt, (ast.Delete, ast.Match)):
            pass

    def _bind(self, target: ast.AST, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint)
            return
        if isinstance(target, ast.Starred):
            self._bind(target.value, taint)
            return
        attr = _self_attr(target)
        if attr is not None:
            if self.collect_attrs and taint:
                step = (f"assigned to self.{attr} "
                        f"({self._at(target)})")
                tagged = Taint(taint.sources,
                               (*taint.trace[:_MAX_TRACE - 1], step),
                               frozenset({attr}))
                self.attrs[attr] = self.attrs.get(attr,
                                                  CLEAN).merged(tagged)
            return
        if isinstance(target, ast.Subscript):
            # d[k] = tainted: the container accumulates the taint
            base = target.value
            if isinstance(base, ast.Name):
                prior = self.env.get(base.id, CLEAN)
                self.env[base.id] = prior.merged(taint)
            else:
                attr = _self_attr(base)
                if attr is not None and self.collect_attrs and taint:
                    self.attrs[attr] = self.attrs.get(
                        attr, CLEAN).merged(taint)

    # -- expressions ---------------------------------------------------------

    def eval(self, node: ast.AST) -> Taint:  # noqa: C901
        if isinstance(node, ast.Constant):
            return CLEAN
        if isinstance(node, ast.Name):
            return self.env.get(node.id, CLEAN)
        if isinstance(node, ast.Attribute):
            name = canonical_name(node, self.aliases)
            if name == "os.environ":
                return _source(ENV, f"os.environ ({self._at(node)})")
            attr = _self_attr(node)
            if attr is not None and attr in self.attrs:
                return self.attrs[attr]
            return self.eval(node.value)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.Set,)):
            inner = _merge(self.eval(e) for e in node.elts)
            return inner.merged(_source(
                SET_ORDER, f"set literal ({self._at(node)})"))
        if isinstance(node, ast.SetComp):
            inner = self._eval_comp(node)
            return inner.merged(_source(
                SET_ORDER, f"set comprehension ({self._at(node)})"))
        if isinstance(node, (ast.ListComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._eval_comp(node)
        if isinstance(node, (ast.List, ast.Tuple)):
            return _merge(self.eval(e) for e in node.elts)
        if isinstance(node, ast.Dict):
            parts = [self.eval(k) for k in node.keys if k is not None]
            parts += [self.eval(v) for v in node.values]
            return _merge(parts)
        if isinstance(node, ast.BinOp):
            return _merge((self.eval(node.left),
                           self.eval(node.right)))
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BoolOp):
            return _merge(self.eval(v) for v in node.values)
        if isinstance(node, ast.Compare):
            # a comparison yields a bool: order taints cannot survive,
            # value taints (t > deadline) do
            taint = _merge((self.eval(node.left),
                            *(self.eval(c) for c in node.comparators)))
            return taint.without_order("comparison result "
                                       f"({self._at(node)})")
        if isinstance(node, ast.IfExp):
            return _merge((self.eval(node.test), self.eval(node.body),
                           self.eval(node.orelse)))
        if isinstance(node, ast.JoinedStr):
            return _merge(self.eval(v.value) for v in node.values
                          if isinstance(v, ast.FormattedValue))
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, ast.Subscript):
            return _merge((self.eval(node.value),
                           self.eval(node.slice)))
        if isinstance(node, ast.Slice):
            return _merge(self.eval(p) for p in
                          (node.lower, node.upper, node.step)
                          if p is not None)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.eval(node.value)
            return CLEAN
        if isinstance(node, ast.Lambda):
            return CLEAN
        if isinstance(node, ast.NamedExpr):
            taint = self.eval(node.value)
            self._bind(node.target, taint)
            return taint
        return CLEAN

    def _eval_comp(self, node) -> Taint:
        parts = []
        for gen in node.generators:
            taint = self.eval(gen.iter)
            for name in _target_names(gen.target):
                self.env[name] = taint
            parts.append(taint)
            parts.extend(self.eval(c) for c in gen.ifs)
        if isinstance(node, ast.DictComp):
            parts.append(self.eval(node.key))
            parts.append(self.eval(node.value))
        else:
            parts.append(self.eval(node.elt))
        return _merge(parts)

    def _eval_call(self, node: ast.Call) -> Taint:  # noqa: C901
        args = [self.eval(a) for a in node.args]
        args += [self.eval(kw.value) for kw in node.keywords]
        arg_taint = _merge(args)
        name = canonical_name(node.func, self.aliases) or ""
        if isinstance(node.func, ast.Attribute):
            tail = node.func.attr
        elif isinstance(node.func, ast.Name):
            tail = node.func.id
        else:
            tail = name.rsplit(".", 1)[-1]
        at = self._at(node)

        source = self._call_source(node, name, tail, at)
        if source is not None:
            return arg_taint.merged(source)

        if tail in HASH_CALLEES and self.sink is not None and arg_taint:
            self.sink.on_hash_call(node, tail, arg_taint)

        if not isinstance(node.func, ast.Attribute):
            if tail == "sorted":
                return self._eval_sorted(node, args, at)
            if tail in ORDER_CLEARING:
                return arg_taint.without_order(f"{tail}() ({at})")
            if tail in PRESERVING or name in PRESERVING:
                return arg_taint
            if tail in PROPAGATING_CTORS or name in PROPAGATING_CTORS:
                return arg_taint
            if self.index is not None and isinstance(node.func,
                                                     ast.Name):
                return self.index.call_taint(self.module.relpath, tail)
            return CLEAN

        # attribute call: a method transforms its receiver's data, so
        # receiver and argument taints flow through by default
        if name in PRESERVING:
            return arg_taint
        receiver = self.eval(node.func.value)
        if tail in ORDER_SENSITIVE_METHODS:
            consumed = receiver.merged(arg_taint)
            if self.sink is not None and (consumed.sources
                                          & ORDER_CATS):
                self.sink.on_order_sensitive(node, tail, consumed)
            return consumed
        if tail == "sort" and isinstance(node.func.value, ast.Name):
            base = node.func.value.id
            if base in self.env:
                self.env[base] = self.env[base].without_order(
                    f".sort() ({at})")
            return CLEAN
        if tail in ORDER_CLEARING:
            return receiver.merged(arg_taint).without_order(
                f".{tail}() ({at})")
        if tail in _MUTATORS and isinstance(node.func.value, ast.Name):
            base = node.func.value.id
            prior = self.env.get(base, CLEAN)
            self.env[base] = prior.merged(arg_taint)
            return CLEAN
        summary = CLEAN
        if self.index is not None:
            summary = self.index.call_taint(self.module.relpath, tail)
        return receiver.merged(arg_taint, summary)

    def _call_source(self, node: ast.Call, name: str, tail: str,
                     at: str) -> Taint | None:
        if name in WALL_CLOCKS:
            return _source(WALL, f"{name}() ({at})")
        if name in ENV_CALLS:
            return _source(ENV, f"{name}() ({at})")
        if name in FS_ORDER_CALLS:
            return _source(FS_ORDER, f"{name}() ({at})")
        if (name in THREAD_ORDER_CALLS
                or tail in THREAD_ORDER_METHODS):
            return _source(THREAD_ORDER, f"{name or tail}() ({at})")
        if tail in FS_ORDER_METHODS and "." in name:
            return _source(FS_ORDER, f".{tail}() ({at})")
        if isinstance(node.func, ast.Name):
            if tail == "id":
                return _source(IDENT, f"id() ({at})")
            if tail == "hash":
                return _source(IDENT, f"hash() ({at})")
            if tail in {"set", "frozenset"}:
                return _source(SET_ORDER, f"{tail}() ({at})")
        if name.startswith("numpy.random.") and \
                name.rsplit(".", 1)[-1] in NP_GLOBAL_FNS:
            return _source(RNG, f"{name}() ({at})")
        if name.startswith("random.") and \
                name.rsplit(".", 1)[-1] in PY_RANDOM_FNS:
            return _source(RNG, f"{name}() ({at})")
        if name in {"numpy.random.default_rng", "random.Random"} and \
                not node.args and not node.keywords:
            return _source(RNG, f"unseeded {name}() ({at})")
        return None

    def _eval_sorted(self, node: ast.Call, args: list[Taint],
                     at: str) -> Taint:
        arg_taint = _merge(args)
        for kw in node.keywords:
            if kw.arg == "key" and _expr_has_source(kw.value,
                                                    self.aliases):
                return arg_taint.merged(_source(
                    IDENT, f"sorted() key is itself "
                           f"nondeterministic ({at})"))
        return arg_taint.without_order(f"sorted() ({at})")


def _target_names(target: ast.AST) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _self_attr(node: ast.AST) -> str | None:
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and \
            node.value.id == "self":
        return node.attr
    return None


def _expr_has_source(node: ast.AST, aliases: dict[str, str]) -> bool:
    """Does a sort-key expression read a nondeterministic source?"""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        name = canonical_name(sub.func, aliases) or ""
        tail = name.rsplit(".", 1)[-1]
        if name in WALL_CLOCKS or name in ENV_CALLS:
            return True
        if isinstance(sub.func, ast.Name) and tail in {"id", "hash"}:
            return True
        if name.startswith("random.") and tail in PY_RANDOM_FNS:
            return True
        if name.startswith("numpy.random.") and tail in NP_GLOBAL_FNS:
            return True
    return False


# -- the rule ----------------------------------------------------------------

class _SinkReporter:
    """Receives taint events from the flow and turns them into findings."""

    def __init__(self, rule: "ReproducibilityTaintRule",
                 module: ModuleInfo, out: Collector,
                 fn_name: str | None, sink_kind: str | None,
                 model: bool) -> None:
        self.rule = rule
        self.module = module
        self.out = out
        self.fn_name = fn_name
        self.sink_kind = sink_kind
        self.model = model
        self._seen: set[tuple[int, str]] = set()

    def _emit(self, node: ast.AST, rid: str, message: str,
              taint: Taint, *, severity: Severity | None = None) -> None:
        key = (node.lineno, rid)
        if key in self._seen or not self.rule.emits(rid):
            return
        self._seen.add(key)
        self.out.add(self.rule, self.module.relpath, node.lineno,
                     message, rule_id=rid,
                     severity=severity or ID_SEVERITY[rid],
                     trace=list(taint.trace))

    def on_return(self, node: ast.Return, taint: Taint) -> None:
        if not taint:
            return
        if self.sink_kind is not None:
            self._report_sink(node, taint,
                              f"{self.sink_kind} sink "
                              f"'{self.fn_name}' returns")
        elif self.model and WALL in taint.sources:
            self._emit(node, "REP603",
                       f"model function '{self.fn_name}' returns a "
                       f"wall-clock-tainted value; outside a volatile "
                       f"block this makes reruns diverge",
                       taint, severity=Severity.WARNING)

    def on_hash_call(self, node: ast.Call, callee: str,
                     taint: Taint) -> None:
        self._report_sink(node, taint,
                          f"content-address hash {callee}() consumes",
                          address=True)

    def on_order_sensitive(self, node: ast.Call, callee: str,
                           taint: Taint) -> None:
        self._emit(node, "REP602",
                   f"order-sensitive consumer .{callee}() receives "
                   f"data whose iteration order depends on "
                   f"{', '.join(sorted(taint.sources & ORDER_CATS))}; "
                   f"its output order is PYTHONHASHSEED-dependent",
                   taint)

    def _report_sink(self, node: ast.AST, taint: Taint,
                     what: str, *, address: bool = False) -> None:
        address = address or self.sink_kind == "address"
        if taint.fields and (taint.sources & VALUE_CATS):
            fields = ", ".join(sorted(taint.fields))
            self._emit(node, "REP606",
                       f"{what} instance attribute(s) {fields} "
                       f"assigned from a nondeterministic source; "
                       f"declare them in the volatile block",
                       taint)
            remaining = taint.sources - VALUE_CATS
        else:
            remaining = taint.sources
        emitted: set[str] = set()
        for cat in sorted(remaining):
            rid = _CAT_RULE[cat]
            if rid == "REP604" and not address:
                rid = "REP601"
            if rid in emitted:
                continue
            emitted.add(rid)
            self._emit(node, rid,
                       f"{what} a value tainted by {cat}; the "
                       f"exported bytes are not reproducible",
                       taint)


class ReproducibilityTaintRule(Rule):
    """REP601..REP606: nondeterminism-taint over canonical exports."""

    id = "REP601"
    ids = ("REP602", "REP603", "REP604", "REP605", "REP606")
    name = "reproducibility-taint"
    severity = Severity.ERROR
    description = ID_DESCRIPTIONS["REP601"]
    scope = "local"

    def __init__(self) -> None:
        self._index: _ProjectTaints | None = None
        self._fingerprint = ""

    def descriptors(self) -> list[dict]:
        return [{"id": rid, "name": f"{self.name}-{rid[-3:]}",
                 "description": ID_DESCRIPTIONS[rid],
                 "severity": ID_SEVERITY[rid]}
                for rid in sorted(ID_SEVERITY)]

    def applies_to(self, relpath: str) -> bool:
        # the analyzer's own code talks *about* taint, not with it
        return "check/" not in relpath

    def prepare(self, ctx: ProjectContext) -> None:
        modules = [m for m in ctx.modules
                   if self.applies_to(m.relpath)]
        self._index = _ProjectTaints(modules)
        self._fingerprint = self._index.fingerprint()

    def cache_fingerprint(self) -> str:
        return self._fingerprint

    def check_module(self, module: ModuleInfo, out: Collector) -> None:
        index = self._index
        if index is None or module.relpath not in index.aliases:
            index = _ProjectTaints([module])
        aliases = index.aliases[module.relpath]
        genv = index.globals.get(module.relpath, {})
        model = _model_scope(module.relpath)

        # module level: hash-callee and order-sensitive sinks only
        reporter = _SinkReporter(self, module, out, None, None, False)
        flow = _TaintFlow(module, aliases, index=index, sink=reporter)
        flow.exec_body(module.tree.body)

        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                self._check_function(stmt, module, out, aliases,
                                     index, genv, model, attrs={})
            elif isinstance(stmt, ast.ClassDef):
                self._check_class(stmt, module, out, aliases, index,
                                  genv, model)

    def _check_class(self, cls: ast.ClassDef, module: ModuleInfo,
                     out: Collector, aliases, index, genv,
                     model: bool) -> None:
        methods = [n for n in cls.body
                   if isinstance(n, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))]
        # pass 1: collect self-attribute taints across all methods
        attrs: dict[str, Taint] = {}
        for fn in methods:
            flow = _TaintFlow(module, aliases, index=index, genv=genv,
                              attrs=attrs, collect_attrs=True)
            flow.exec_body(fn.body)
        # pass 2: report, with the attribute channel visible
        for fn in methods:
            self._check_function(fn, module, out, aliases, index,
                                 genv, model, attrs=attrs)

    def _check_function(self, fn, module: ModuleInfo, out: Collector,
                        aliases, index, genv, model: bool,
                        *, attrs: dict[str, Taint]) -> None:
        reporter = _SinkReporter(self, module, out, fn.name,
                                 _sink_kind(fn.name), model)
        flow = _TaintFlow(module, aliases, index=index, genv=genv,
                          attrs=attrs, sink=reporter)
        flow.exec_body(fn.body)
        for nested in fn.body:
            if isinstance(nested, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                self._check_function(nested, module, out, aliases,
                                     index, genv, model, attrs=attrs)
