"""XLY4xx: consistency across layers that share a vocabulary.

Three contracts that no single module can check on its own:

* **XLY401** -- every telemetry event type emitted in code (a
  ``{"type": "..."}`` dict literal passed to ``.emit()`` or returned
  from an event builder) exists in ``telemetry/schema.py``'s
  ``_REQUIRED`` table; an unknown type crashes ``validate_file`` on
  the first trace that carries it.
* **XLY402** -- every ``--flag`` registered in ``cli.py`` is mentioned
  in the README; undocumented flags rot.
* **XLY403** -- every rule id is defined by exactly one rule class and
  every rule class is registered exactly once in ``RULE_CLASSES``;
  duplicate or orphan rules silently skew reports.

All three accumulate sightings in :meth:`check_module` and judge in
:meth:`finalize`, so they are ``scope = "project"`` and exempt from
the incremental per-module cache.  On trees that lack the counterpart
artifact (fixture trees without a schema module, a README, or a rule
registry) they emit nothing.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from ..findings import Severity
from .base import Collector, ModuleInfo, ProjectContext, Rule


def _dict_const(node: ast.Dict, key: str) -> str | None:
    """The constant string value of ``node[key]``, if present."""
    for k, v in zip(node.keys, node.values):
        if isinstance(k, ast.Constant) and k.value == key and \
                isinstance(v, ast.Constant) and isinstance(v.value, str):
            return v.value
    return None


class TelemetryEventTypeRule(Rule):
    """XLY401: emitted event types must exist in the telemetry schema."""

    id = "XLY401"
    name = "telemetry-event-schema"
    severity = Severity.ERROR
    scope = "project"
    description = ("Every telemetry event type emitted in code must be "
                   "declared in telemetry/schema.py; an undeclared type "
                   "makes validate_file reject the trace at runtime.")

    def __init__(self) -> None:
        self._schema_types: set[str] | None = None
        self._emitted: list[tuple[str, str, int]] = []

    def check_module(self, module: ModuleInfo, out: Collector) -> None:
        if module.relpath.endswith("telemetry/schema.py"):
            self._schema_types = _schema_event_types(module.tree)
            return
        for node in ast.walk(module.tree):
            for event in _emitted_event_dicts(node):
                etype = _dict_const(event, "type")
                if etype is not None:
                    self._emitted.append(
                        (etype, module.relpath, event.lineno))

    def finalize(self, out: Collector) -> None:
        if self._schema_types is None:
            return
        for etype, relpath, lineno in self._emitted:
            if etype not in self._schema_types:
                out.add(self, relpath, lineno,
                        f"telemetry event type {etype!r} is not "
                        f"declared in telemetry/schema.py (known: "
                        f"{', '.join(sorted(self._schema_types))})")


def _schema_event_types(tree: ast.Module) -> set[str]:
    """Keys of the module-level ``_REQUIRED`` dict literal."""
    for stmt in tree.body:
        target = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            value = stmt.value
        if isinstance(target, ast.Name) and target.id == "_REQUIRED" and \
                isinstance(value, ast.Dict):
            return {k.value for k in value.keys
                    if isinstance(k, ast.Constant) and
                    isinstance(k.value, str)}
    return set()


def _emitted_event_dicts(node: ast.AST) -> list[ast.Dict]:
    """Event-shaped dict literals: ``.emit({...})`` arguments and
    ``return {"type": ...}`` bodies of event builders."""
    if isinstance(node, ast.Call) and \
            isinstance(node.func, ast.Attribute) and \
            node.func.attr == "emit":
        return [a for a in node.args if isinstance(a, ast.Dict)]
    if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
        return [node.value]
    return []


class CliFlagDocumentedRule(Rule):
    """XLY402: every CLI flag appears in the README."""

    id = "XLY402"
    name = "cli-flag-documented"
    severity = Severity.WARNING
    scope = "project"
    description = ("Every --flag registered in cli.py must be "
                   "mentioned in README.md; flags that exist only in "
                   "--help go stale and unadvertised.")

    def __init__(self) -> None:
        self._readme: str | None = None
        self._flags: list[tuple[str, str, int]] = []

    def prepare(self, ctx: ProjectContext) -> None:
        readme = Path(ctx.rel_base) / "README.md"
        if readme.is_file():
            self._readme = readme.read_text(encoding="utf-8")

    def check_module(self, module: ModuleInfo, out: Collector) -> None:
        if not module.relpath.endswith("cli.py"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "add_argument" and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and \
                        isinstance(first.value, str) and \
                        first.value.startswith("--"):
                    self._flags.append(
                        (first.value, module.relpath, node.lineno))

    def finalize(self, out: Collector) -> None:
        if self._readme is None:
            return
        for flag, relpath, lineno in self._flags:
            # a longer flag sharing the prefix must not count as a
            # mention (--cache never documents --cache-dir)
            pattern = re.escape(flag) + r"(?![\w-])"
            if not re.search(pattern, self._readme):
                out.add(self, relpath, lineno,
                        f"CLI flag {flag} is not mentioned in "
                        f"README.md; document it or drop it")


class RuleRegistrationRule(Rule):
    """XLY403: rule ids defined once, rule classes registered once."""

    id = "XLY403"
    name = "rule-registered-once"
    severity = Severity.ERROR
    scope = "project"
    description = ("Every rule id must be defined by exactly one rule "
                   "class under check/rules/, and every rule class "
                   "must appear exactly once in RULE_CLASSES; "
                   "duplicates and orphans silently skew reports.")

    def __init__(self) -> None:
        #: rule id -> [(class name, relpath, lineno)]
        self._defined: dict[str, list[tuple[str, str, int]]] = {}
        #: class name -> (relpath, lineno)
        self._classes: dict[str, tuple[str, int]] = {}
        self._registered: list[tuple[str, str, int]] = []
        self._saw_registry = False

    def check_module(self, module: ModuleInfo, out: Collector) -> None:
        if "check/rules/" not in module.relpath:
            return
        if module.relpath.endswith("__init__.py"):
            self._saw_registry = True
            self._registered = _registered_classes(module)
            return
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                self._record_class(node, module)

    def _record_class(self, node: ast.ClassDef,
                      module: ModuleInfo) -> None:
        ids: set[str] = set()
        for stmt in node.body:
            if not isinstance(stmt, ast.Assign) or \
                    len(stmt.targets) != 1 or \
                    not isinstance(stmt.targets[0], ast.Name):
                continue
            target = stmt.targets[0].id
            if target == "id" and isinstance(stmt.value, ast.Constant) \
                    and isinstance(stmt.value.value, str) \
                    and stmt.value.value:
                ids.add(stmt.value.value)
            elif target == "ids" and \
                    isinstance(stmt.value, (ast.Tuple, ast.List)):
                ids |= {e.value for e in stmt.value.elts
                        if isinstance(e, ast.Constant) and
                        isinstance(e.value, str)}
        if not ids:
            return
        self._classes[node.name] = (module.relpath, node.lineno)
        for rule_id in ids:
            self._defined.setdefault(rule_id, []).append(
                (node.name, module.relpath, node.lineno))

    def finalize(self, out: Collector) -> None:
        if not self._saw_registry:
            return
        for rule_id, sites in sorted(self._defined.items()):
            if len(sites) > 1:
                owners = ", ".join(cls for cls, _, _ in sites)
                for cls, relpath, lineno in sites:
                    out.add(self, relpath, lineno,
                            f"rule id {rule_id} is defined by "
                            f"{len(sites)} classes ({owners}); ids "
                            f"must be unique")
        counts: dict[str, int] = {}
        for cls, _, _ in self._registered:
            counts[cls] = counts.get(cls, 0) + 1
        for cls, (relpath, lineno) in sorted(self._classes.items()):
            n = counts.get(cls, 0)
            if n == 0:
                out.add(self, relpath, lineno,
                        f"rule class {cls} is not registered in "
                        f"RULE_CLASSES; it never runs")
            elif n > 1:
                out.add(self, relpath, lineno,
                        f"rule class {cls} is registered {n} times in "
                        f"RULE_CLASSES; findings would duplicate")


def _registered_classes(module: ModuleInfo) -> list[tuple[str, str, int]]:
    """Entries of the ``RULE_CLASSES`` tuple literal, by class name."""
    out: list[tuple[str, str, int]] = []
    for stmt in module.tree.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
            value = stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and \
                    target.id == "RULE_CLASSES" and \
                    isinstance(value, (ast.Tuple, ast.List)):
                for elt in value.elts:
                    if isinstance(elt, ast.Name):
                        out.append((elt.id, module.relpath, elt.lineno))
    return out
