"""Rule plumbing: the visitor registry and shared AST helpers.

A :class:`Rule` inspects one module at a time through
:meth:`Rule.check_module` and may emit cross-module findings from
:meth:`Rule.finalize` (e.g. the FOM contract, which needs both the
registry and every benchmark class).  Findings are reported through the
:class:`Collector` the engine passes in; the engine fills in snippets,
applies inline suppressions and the baseline afterwards.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from ..findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..dims import DimRegistry


@dataclass
class ModuleInfo:
    """One parsed source module under analysis."""

    path: Path
    relpath: str          # posix path relative to the repository root
    tree: ast.Module
    lines: list[str]

    def segments(self) -> tuple[str, ...]:
        return tuple(self.relpath.split("/"))


@dataclass
class ProjectContext:
    """The whole-project view handed to :meth:`Rule.prepare`.

    Built once per run, after parsing and before any rule executes:
    the dimension-annotation registry aggregated over every module,
    plus the roots rules need to reach sibling artifacts (README for
    XLY402, ...).  ``rel_base`` is the directory findings' paths are
    relative to -- the repository root in real runs, the fixture root
    in tests.
    """

    root: Path
    rel_base: Path
    registry: "DimRegistry"
    modules: list[ModuleInfo] = field(default_factory=list)


@dataclass
class Collector:
    """Finding sink handed to rules; snippets come from module sources."""

    findings: list[Finding] = field(default_factory=list)
    _sources: dict[str, list[str]] = field(default_factory=dict)

    def register_source(self, relpath: str, lines: list[str]) -> None:
        self._sources[relpath] = lines

    def add(self, rule: "Rule", relpath: str, line: int,
            message: str, *, severity: Severity | None = None,
            snippet: str | None = None, rule_id: str | None = None,
            trace: list[str] | None = None) -> None:
        if snippet is None:
            lines = self._sources.get(relpath, ())
            snippet = (lines[line - 1].strip()
                       if 0 < line <= len(lines) else "")
        self.findings.append(Finding(
            rule=rule_id or rule.id, severity=severity or rule.severity,
            path=relpath, line=line, message=message, snippet=snippet,
            trace=list(trace or ())))


class Rule:
    """Base class of all static-analysis rules.

    Subclasses set the identity attributes and override
    :meth:`check_module` (and optionally :meth:`applies_to` /
    :meth:`finalize`).  One rule instance sees the whole run, so it may
    accumulate cross-module state for :meth:`finalize`.
    """

    id: str = ""
    name: str = ""
    severity: Severity = Severity.WARNING
    description: str = ""
    #: further ids a multi-id rule emits besides :attr:`id` (e.g. the
    #: dataflow rule owns UNIT301..UNIT305)
    ids: tuple[str, ...] = ()
    #: "local" rules look at one module at a time and emit nothing from
    #: finalize -- their per-module findings are safe to cache and to
    #: compute from worker threads.  "project" rules accumulate
    #: cross-module state and always run.
    scope: str = "local"
    #: ids left enabled after ``--rules``/``--disable`` filtering; None
    #: means all.  Set by the engine; multi-id rules consult
    #: :meth:`emits` before reporting under a given id.
    enabled_ids: frozenset[str] | None = None

    def all_ids(self) -> tuple[str, ...]:
        return (self.id, *self.ids) if self.ids else (self.id,)

    def emits(self, rule_id: str) -> bool:
        return self.enabled_ids is None or rule_id in self.enabled_ids

    def descriptors(self) -> list[dict]:
        """SARIF rule descriptors; multi-id rules return one per id."""
        return [{"id": self.id, "name": self.name,
                 "description": self.description,
                 "severity": self.severity}]

    def applies_to(self, relpath: str) -> bool:
        return True

    def cache_fingerprint(self) -> str:
        """Extra cache-key material for local rules whose per-module
        verdicts depend on cross-module state (e.g. interprocedural
        summaries).  The engine mixes it into each module's cache key,
        so editing a helper in one file invalidates dependent verdicts
        everywhere.  Must be stable across runs over the same tree;
        the default (no cross-module state) contributes nothing."""
        return ""

    def prepare(self, ctx: ProjectContext) -> None:
        """Receive the whole-project view before any module runs."""

    def check_module(self, module: ModuleInfo, out: Collector) -> None:
        raise NotImplementedError

    def finalize(self, out: Collector) -> None:
        """Emit findings that need the whole-project view."""


# -- shared AST helpers ------------------------------------------------------

def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to canonical dotted origins.

    ``import numpy as np`` -> ``np: numpy``; ``from time import
    perf_counter as pc`` -> ``pc: time.perf_counter``; relative imports
    are canonicalised by their module path with the dots stripped
    (``from ..units import GIGA`` -> ``GIGA: units.GIGA``).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.asname:
                    aliases[a.asname] = a.name
                else:
                    head = a.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for a in node.names:
                if a.name == "*":
                    continue
                full = f"{base}.{a.name}" if base else a.name
                aliases[a.asname or a.name] = full
    return aliases


def dotted_parts(node: ast.AST) -> list[str] | None:
    """The ``a.b.c`` name chain of an expression, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def canonical_name(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of an expression after alias resolution."""
    parts = dotted_parts(node)
    if not parts:
        return None
    head = aliases.get(parts[0])
    if head is None:
        return ".".join(parts)
    return ".".join([head, *parts[1:]])


def assigned_names(target: ast.AST) -> list[ast.Name]:
    """All plain names assigned by a target (handles tuple unpacking)."""
    if isinstance(target, ast.Name):
        return [target]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[ast.Name] = []
        for elt in target.elts:
            out.extend(assigned_names(elt))
        return out
    return []


def walk_functions(tree: ast.Module) -> list[ast.FunctionDef]:
    """Every function/method in the module, including nested ones."""
    return [n for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]


def iter_direct_body(fn: ast.AST,
                     skip: Callable[[ast.AST], bool]) -> list[ast.AST]:
    """All nodes reachable from ``fn`` without entering ``skip`` nodes."""
    out: list[ast.AST] = []
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if skip(node):
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out
