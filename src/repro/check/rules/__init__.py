"""The rule registry: every shipped rule, instantiable per run."""

from __future__ import annotations

from .base import Collector, ModuleInfo, ProjectContext, Rule
from .concurrency import UnlockedModuleStateRule
from .contracts import (
    FomDeclaredRule,
    ParamResolutionRule,
    UnitArithmeticRule,
    VariantOrderRule,
)
from .crosslayer import (
    CliFlagDocumentedRule,
    RuleRegistrationRule,
    TelemetryEventTypeRule,
)
from .dataflow import DimensionalDataflowRule
from .determinism import UnseededRngRule, WallClockRule

#: rule classes in id order; ``default_rules()`` instantiates fresh ones
RULE_CLASSES: tuple[type[Rule], ...] = (
    WallClockRule,        # DET001
    UnseededRngRule,      # DET002
    FomDeclaredRule,      # CON101
    VariantOrderRule,     # CON102
    ParamResolutionRule,  # CON103
    UnitArithmeticRule,   # CON104
    UnlockedModuleStateRule,  # LCK201
    DimensionalDataflowRule,  # UNIT301..UNIT305
    TelemetryEventTypeRule,   # XLY401
    CliFlagDocumentedRule,    # XLY402
    RuleRegistrationRule,     # XLY403
)


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule (they hold run state)."""
    return [cls() for cls in RULE_CLASSES]


def rule_ids() -> list[str]:
    out: list[str] = []
    for cls in RULE_CLASSES:
        out.append(cls.id)
        out.extend(cls.ids)
    return out


__all__ = ["Collector", "ModuleInfo", "ProjectContext", "Rule",
           "RULE_CLASSES", "default_rules", "rule_ids"]
