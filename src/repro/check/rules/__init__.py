"""The rule registry: every shipped rule, instantiable per run."""

from __future__ import annotations

from .base import Collector, ModuleInfo, ProjectContext, Rule
from .comm import CommProtocolRule
from .concurrency import UnlockedModuleStateRule
from .contracts import (
    FomDeclaredRule,
    ParamResolutionRule,
    UnitArithmeticRule,
    VariantOrderRule,
)
from .crosslayer import (
    CliFlagDocumentedRule,
    RuleRegistrationRule,
    TelemetryEventTypeRule,
)
from .dataflow import DimensionalDataflowRule
from .determinism import UnseededRngRule, WallClockRule
from .reproducibility import ReproducibilityTaintRule

#: rule classes in id order; ``default_rules()`` instantiates fresh ones
RULE_CLASSES: tuple[type[Rule], ...] = (
    WallClockRule,        # DET001
    UnseededRngRule,      # DET002
    FomDeclaredRule,      # CON101
    VariantOrderRule,     # CON102
    ParamResolutionRule,  # CON103
    UnitArithmeticRule,   # CON104
    UnlockedModuleStateRule,  # LCK201
    DimensionalDataflowRule,  # UNIT301..UNIT305
    CommProtocolRule,         # COMM501..COMM506
    ReproducibilityTaintRule,  # REP601..REP606
    TelemetryEventTypeRule,   # XLY401
    CliFlagDocumentedRule,    # XLY402
    RuleRegistrationRule,     # XLY403
)


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule (they hold run state)."""
    return [cls() for cls in RULE_CLASSES]


def rule_ids() -> list[str]:
    out: list[str] = []
    for cls in RULE_CLASSES:
        out.append(cls.id)
        out.extend(cls.ids)
    return out


def expand_rule_prefixes(prefixes: list[str]) -> list[str]:
    """Expand rule-family prefixes (``COMM``, ``UNIT3``) to rule ids.

    Exact ids pass through; a prefix matching nothing is an error so
    typos fail loudly instead of silently filtering everything out.
    """
    known = rule_ids()
    out: list[str] = []
    for prefix in prefixes:
        matched = [rid for rid in known if rid.startswith(prefix)]
        if not matched:
            raise ValueError(
                f"rule prefix {prefix!r} matches no known rule id")
        for rid in matched:
            if rid not in out:
                out.append(rid)
    return out


__all__ = ["Collector", "ModuleInfo", "ProjectContext", "Rule",
           "RULE_CLASSES", "default_rules", "expand_rule_prefixes",
           "rule_ids"]
