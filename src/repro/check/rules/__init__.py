"""The rule registry: every shipped rule, instantiable per run."""

from __future__ import annotations

from .base import Collector, ModuleInfo, Rule
from .concurrency import UnlockedModuleStateRule
from .contracts import (
    FomDeclaredRule,
    ParamResolutionRule,
    UnitArithmeticRule,
    VariantOrderRule,
)
from .determinism import UnseededRngRule, WallClockRule

#: rule classes in id order; ``default_rules()`` instantiates fresh ones
RULE_CLASSES: tuple[type[Rule], ...] = (
    WallClockRule,        # DET001
    UnseededRngRule,      # DET002
    FomDeclaredRule,      # CON101
    VariantOrderRule,     # CON102
    ParamResolutionRule,  # CON103
    UnitArithmeticRule,   # CON104
    UnlockedModuleStateRule,  # LCK201
)


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule (they hold run state)."""
    return [cls() for cls in RULE_CLASSES]


def rule_ids() -> list[str]:
    return [cls.id for cls in RULE_CLASSES]


__all__ = ["Collector", "ModuleInfo", "Rule", "RULE_CLASSES",
           "default_rules", "rule_ids"]
