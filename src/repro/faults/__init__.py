"""Deterministic fault injection and chaos testing (``repro.faults``).

A :class:`FaultPlan` declares node crashes, stragglers, link
degradation and transient task faults as data (seeded-generated or
authored explicitly); a :class:`FaultInjector` hooks the plan into the
execution engine's retry boundary, the cluster scheduler's free pool
and the network model's bandwidths.  Every fault fires from the
injected clock and content-hash determinism, so the same plan yields
the same journal and trace bit-for-bit -- see
:mod:`repro.faults.report` for the byte-stable artifacts.
"""

from .injector import FaultInjector, LinkDegradationModel
from .plan import (
    LINK_CLASSES,
    FaultPlan,
    InjectedFault,
    LinkFault,
    NodeFault,
    StragglerFault,
    TaskFaultRule,
    hash_fraction,
)
from .report import canonical_journal, chaos_trace_events, write_chaos_trace

__all__ = [
    "LINK_CLASSES",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "LinkDegradationModel",
    "LinkFault",
    "NodeFault",
    "StragglerFault",
    "TaskFaultRule",
    "canonical_journal",
    "chaos_trace_events",
    "hash_fraction",
    "write_chaos_trace",
]
