"""Declarative, seeded fault plans.

The paper's procurement methodology depends on benchmark runs being
*replicable at scale*, where node failures, link degradation and
stragglers are the norm rather than the exception.  A
:class:`FaultPlan` describes such an environment as data: which task
attempts fail, which nodes crash (and when they return), which nodes
straggle and by how much, and which link classes lose bandwidth.

Two properties make the plan testable:

* **deterministic** -- whether a fault fires is a pure function of the
  plan and the injection site ``(label, attempt)`` / virtual time.
  Rate-based rules draw their "randomness" from a stable content hash
  of ``(seed, label, attempt)``, so the same plan injects the same
  faults regardless of worker count, thread interleaving or host.
* **replayable** -- plans round-trip through JSON
  (:meth:`FaultPlan.save` / :meth:`FaultPlan.load`, the CLI's
  ``--faults PLAN.json``) and regenerate bit-identically from a seed
  (:meth:`FaultPlan.generate`, the CLI's ``--fault-seed``).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, replace
from fnmatch import fnmatchcase
from typing import Any

from ..exec.cache import hash_fraction

#: link-class slugs a :class:`LinkFault` may target (plus ``"*"``).
LINK_CLASSES = ("intra_node", "intra_cell", "inter_cell")


class InjectedFault(RuntimeError):
    """A plan-scheduled fault (injected by the harness, not organic).

    Raised inside the engine's fault boundary exactly like a real
    transient failure, so retries/backoff/circuit-breaking exercise
    the same code paths a production incident would.
    """


@dataclass(frozen=True)
class TaskFaultRule:
    """Fail matching task attempts with an :class:`InjectedFault`.

    ``match`` is an ``fnmatch`` pattern over the engine task label
    (e.g. ``run:JUQCS`` or ``strong:Arbor@*``); ``attempts`` lists the
    1-based attempt ordinals at risk.  With ``rate < 1`` each listed
    ``(label, attempt)`` site fails with that probability, drawn
    deterministically via :func:`hash_fraction`.
    """

    match: str = "*"
    attempts: tuple[int, ...] = (1,)
    rate: float = 1.0
    seed: int = 0
    kind: str = "transient"
    message: str = ""

    def __post_init__(self) -> None:
        if not self.attempts or min(self.attempts) < 1:
            raise ValueError("attempts must be 1-based ordinals")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")

    def applies(self, label: str, attempt: int) -> bool:
        if attempt not in self.attempts:
            return False
        if not fnmatchcase(label, self.match):
            return False
        if self.rate >= 1.0:
            return True
        return hash_fraction(self.seed, label, attempt) < self.rate

    def describe(self, label: str, attempt: int) -> str:
        if self.message:
            return self.message
        return (f"injected {self.kind} fault: rule {self.match!r} "
                f"hit {label!r} attempt {attempt}")


@dataclass(frozen=True)
class NodeFault:
    """Node ``node`` crashes at virtual time ``at``.

    ``duration=None`` means the node never returns; otherwise it
    rejoins the scheduler's free pool at ``at + duration``.
    """

    node: int
    at: float
    duration: float | None = None

    def __post_init__(self) -> None:
        if self.node < 0 or self.at < 0:
            raise ValueError("node and crash time must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("crash duration must be positive")


@dataclass(frozen=True)
class StragglerFault:
    """Node ``node`` runs ``factor``x slower during the window."""

    node: int
    factor: float
    at: float = 0.0
    duration: float | None = None

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("straggler factor must be >= 1")
        if self.node < 0 or self.at < 0:
            raise ValueError("node and start time must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("straggler duration must be positive")


@dataclass(frozen=True)
class LinkFault:
    """A link class retains only ``factor`` of its bandwidth.

    ``link`` is one of :data:`LINK_CLASSES` or ``"*"`` (all classes).
    """

    link: str
    factor: float

    def __post_init__(self) -> None:
        if self.link != "*" and self.link not in LINK_CLASSES:
            raise ValueError(f"unknown link class {self.link!r}; choose "
                             f"from {LINK_CLASSES} or '*'")
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("bandwidth factor must be within (0, 1]")


@dataclass(frozen=True)
class FaultPlan:
    """The full declarative fault schedule of one chaos run."""

    seed: int = 0
    tasks: tuple[TaskFaultRule, ...] = ()
    nodes: tuple[NodeFault, ...] = ()
    stragglers: tuple[StragglerFault, ...] = ()
    links: tuple[LinkFault, ...] = ()

    # -- engine side --------------------------------------------------------

    def check_task(self, label: str, attempt: int) -> TaskFaultRule | None:
        """First rule scheduling a fault at ``(label, attempt)``."""
        for rule in self.tasks:
            if rule.applies(label, attempt):
                return rule
        return None

    def check_and_raise(self, label: str, attempt: int) -> None:
        """Engine guard hook: raise on scheduled attempts.

        Module-path bound method of a frozen dataclass, so
        ``functools.partial(plan.check_and_raise, label)`` pickles into
        process-pool workers.  Emits one ``fault`` telemetry event on
        the ambient tracer (the engine's per-attempt collector inside
        workers) before raising.
        """
        rule = self.check_task(label, attempt)
        if rule is None:
            return
        from ..telemetry.spans import current_tracer  # avoid import cost

        tracer = current_tracer()
        tracer.emit({"type": "fault", "category": "task", "target": label,
                     "action": "inject", "at": tracer.now(),
                     "detail": rule.describe(label, attempt)})
        raise InjectedFault(rule.describe(label, attempt))

    def failing_attempts(self, label: str, upto: int = 16) -> list[int]:
        """Attempt ordinals in ``1..upto`` that would fail for a label."""
        return [a for a in range(1, upto + 1)
                if self.check_task(label, a) is not None]

    def max_task_failures(self) -> int:
        """Highest attempt ordinal any task rule can fail.

        A retry budget of at least this many retries guarantees every
        task converges (the first attempt past the budget is clean),
        because rules only schedule faults at listed ordinals.
        """
        return max((max(rule.attempts) for rule in self.tasks), default=0)

    # -- cluster side -------------------------------------------------------

    def cluster_timeline(self) -> list[tuple[float, str, int, float]]:
        """Scheduler events as sorted ``(time, action, node, factor)``.

        Actions: ``crash`` / ``restore`` (node pool membership) and
        ``slow`` / ``unslow`` (straggler factor on/off).
        """
        events: list[tuple[float, str, int, float]] = []
        for nf in self.nodes:
            events.append((nf.at, "crash", nf.node, 0.0))
            if nf.duration is not None:
                events.append((nf.at + nf.duration, "restore", nf.node, 0.0))
        for sf in self.stragglers:
            events.append((sf.at, "slow", sf.node, sf.factor))
            if sf.duration is not None:
                events.append((sf.at + sf.duration, "unslow", sf.node, 0.0))
        return sorted(events)

    def link_factors(self) -> dict[str, float]:
        """Effective per-link-class bandwidth multipliers (min-combined)."""
        factors: dict[str, float] = {}
        for lf in self.links:
            targets = LINK_CLASSES if lf.link == "*" else (lf.link,)
            for name in targets:
                factors[name] = min(factors.get(name, 1.0), lf.factor)
        return factors

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "tasks": [{"match": r.match, "attempts": list(r.attempts),
                       "rate": r.rate, "seed": r.seed, "kind": r.kind,
                       "message": r.message} for r in self.tasks],
            "nodes": [{"node": f.node, "at": f.at, "duration": f.duration}
                      for f in self.nodes],
            "stragglers": [{"node": f.node, "factor": f.factor, "at": f.at,
                            "duration": f.duration}
                           for f in self.stragglers],
            "links": [{"link": f.link, "factor": f.factor}
                      for f in self.links],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            tasks=tuple(TaskFaultRule(
                match=str(r.get("match", "*")),
                attempts=tuple(int(a) for a in r.get("attempts", (1,))),
                rate=float(r.get("rate", 1.0)),
                seed=int(r.get("seed", 0)),
                kind=str(r.get("kind", "transient")),
                message=str(r.get("message", "")))
                for r in data.get("tasks", ())),
            nodes=tuple(NodeFault(
                node=int(f["node"]), at=float(f["at"]),
                duration=None if f.get("duration") is None
                else float(f["duration"]))
                for f in data.get("nodes", ())),
            stragglers=tuple(StragglerFault(
                node=int(f["node"]), factor=float(f["factor"]),
                at=float(f.get("at", 0.0)),
                duration=None if f.get("duration") is None
                else float(f["duration"]))
                for f in data.get("stragglers", ())),
            links=tuple(LinkFault(link=str(f["link"]),
                                  factor=float(f["factor"]))
                        for f in data.get("links", ())),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: Any) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: Any) -> "FaultPlan":
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # -- generation ---------------------------------------------------------

    @classmethod
    def generate(cls, seed: int, *, labels: tuple[str, ...] = ("*",),
                 max_task_failures: int = 2, fault_rate: float = 0.7,
                 nodes: int = 0, crashes: int = 2, stragglers: int = 1,
                 link_faults: int = 1, horizon: float = 200.0
                 ) -> "FaultPlan":
        """A reproducible random plan from a seed.

        Per label pattern, the first ``k <= max_task_failures`` attempts
        fail (``k`` drawn per label; with probability ``1 - fault_rate``
        the label is spared), so a retry budget of
        ``max_task_failures`` always converges.  Cluster faults target
        the first ``nodes`` node ids within the ``horizon`` of virtual
        seconds; pass ``nodes=0`` to skip them.
        """
        rng = random.Random(seed)
        task_rules = []
        for label in labels:
            if rng.random() >= fault_rate:
                continue
            k = rng.randint(1, max(1, max_task_failures))
            task_rules.append(TaskFaultRule(
                match=label, attempts=tuple(range(1, k + 1)),
                kind="transient"))
        node_faults = []
        straggler_faults = []
        link_fault_list = []
        if nodes > 0:
            for _ in range(crashes):
                at = rng.uniform(0.0, horizon * 0.6)
                duration = rng.uniform(horizon * 0.05, horizon * 0.3)
                node_faults.append(NodeFault(node=rng.randrange(nodes),
                                             at=at, duration=duration))
            for _ in range(stragglers):
                straggler_faults.append(StragglerFault(
                    node=rng.randrange(nodes),
                    factor=rng.uniform(1.5, 4.0),
                    at=rng.uniform(0.0, horizon * 0.5),
                    duration=rng.uniform(horizon * 0.1, horizon * 0.5)))
        for _ in range(link_faults):
            link_fault_list.append(LinkFault(
                link=rng.choice(LINK_CLASSES),
                factor=rng.uniform(0.3, 0.9)))
        return cls(seed=seed, tasks=tuple(task_rules),
                   nodes=tuple(node_faults),
                   stragglers=tuple(straggler_faults),
                   links=tuple(link_fault_list))

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)
