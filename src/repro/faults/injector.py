"""The fault injector: plan hooks for engine, scheduler and network.

One :class:`FaultInjector` adapts a declarative
:class:`~repro.faults.plan.FaultPlan` to the three injection surfaces:

* :meth:`task_guard` -- a picklable per-label callable the execution
  engine invokes at the top of every attempt (raises
  :class:`~repro.faults.plan.InjectedFault` on scheduled attempts),
* :meth:`cluster_timeline` / :meth:`observe` -- crash/restore and
  straggler events consumed by the cluster scheduler's virtual clock,
* :meth:`degradation` -- a frozen per-link-class bandwidth multiplier
  model attached to :class:`~repro.cluster.network.NetworkModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Callable

from ..telemetry.spans import current_tracer
from .plan import FaultPlan


@dataclass(frozen=True)
class LinkDegradationModel:
    """Per-link-class bandwidth multipliers (1.0 = undegraded).

    ``factors`` maps link-class slugs (``intra_node`` ...) to the
    retained bandwidth fraction.  Frozen and hashable so it can live
    on the frozen :class:`~repro.cluster.network.NetworkModel`.
    """

    factors: tuple[tuple[str, float], ...] = ()

    def factor(self, link: Any) -> float:
        """Multiplier for a :class:`~repro.cluster.topology.LinkClass`
        (or its slug); unknown / unaffected classes return 1.0."""
        name = getattr(link, "name", link)
        name = str(name).lower().replace("-", "_")
        for key, value in self.factors:
            if key == name:
                return value
        return 1.0


class FaultInjector:
    """Adapts a :class:`FaultPlan` to the engine/cluster/network hooks."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    # -- engine -------------------------------------------------------------

    def task_guard(self, label: str) -> Callable[[int], None] | None:
        """Guard callable for one task label, or None when no task rule
        could ever hit it.  ``guard(attempt)`` raises ``InjectedFault``
        on scheduled attempts; a bound-method partial over the frozen
        plan, so the process backend can pickle it."""
        if not self.plan.tasks:
            return None
        return partial(self.plan.check_and_raise, label)

    # -- cluster ------------------------------------------------------------

    def cluster_timeline(self) -> list[tuple[float, str, int, float]]:
        """Sorted ``(time, action, node, factor)`` scheduler events."""
        return self.plan.cluster_timeline()

    def observe(self, action: str, node: int, at: float) -> None:
        """Scheduler callback: emit one fault telemetry event."""
        category = "node" if action in ("crash", "restore") else "straggler"
        current_tracer().emit({"type": "fault", "category": category,
                               "target": f"node:{node}", "action": action,
                               "at": at})

    # -- network ------------------------------------------------------------

    def degradation(self) -> LinkDegradationModel | None:
        """Bandwidth degradation model, or None when no link faults."""
        factors = self.plan.link_factors()
        if not factors:
            return None
        return LinkDegradationModel(
            factors=tuple(sorted(factors.items())))
