"""Deterministic chaos-run artifacts.

The acceptance contract for chaos runs is *byte identity* across cold
runs and worker counts.  Raw tracer output cannot honour that under a
thread pool (span completion order, span ids and thread lanes depend
on interleaving), so the committed artifacts are rendered from the
**canonical journal** -- records sorted by submission index and
re-timed onto a virtual unit timeline -- plus the declarative plan:

* :func:`canonical_journal` -- the byte-stable journal JSONL source,
* :func:`write_chaos_trace` -- a Chrome ``trace_event`` file with one
  slice per task (attempt sub-slices underneath) and the plan's
  cluster/link faults as instant events on a dedicated lane.
"""

from __future__ import annotations

import json
from typing import Any

from ..exec.journal import RunJournal
from .plan import FaultPlan


def canonical_journal(journal: RunJournal) -> RunJournal:
    """Re-time a journal onto the virtual unit timeline.

    Convenience alias of :meth:`~repro.exec.journal.RunJournal
    .canonical` -- the result depends only on *what* ran and *how it
    ended*, never on scheduling, which is what makes ``to_jsonl``
    output byte-identical across workers=1 and workers=8.
    """
    return journal.canonical()


def chaos_trace_events(journal: RunJournal,
                       plan: FaultPlan) -> list[dict[str, Any]]:
    """Chrome ``trace_event`` list for a chaos run (canonical time).

    Tasks render as complete slices on pid 1 (one tid lane), each with
    attempt sub-slices; the plan's cluster timeline and link faults
    render as instant events on pid 2 ("faults").  All timestamps come
    from the canonical journal / the plan, so the file is byte-stable.
    """
    scale = 1_000_000  # seconds -> microseconds
    events: list[dict[str, Any]] = [
        {"ph": "M", "pid": 1, "name": "process_name",
         "args": {"name": "chaos tasks"}},
        {"ph": "M", "pid": 2, "name": "process_name",
         "args": {"name": "faults"}},
    ]
    for rec in canonical_journal(journal).records:
        start = int(rec.started * scale)
        width = int(rec.duration * scale)
        events.append({
            "ph": "X", "pid": 1, "tid": 1, "cat": "task",
            "name": f"task:{rec.label}", "ts": start, "dur": width,
            "args": {"status": rec.status, "attempts": rec.attempts,
                     "cache": rec.cache, "error": rec.error}})
        if rec.attempts > 1 or rec.status == "error":
            slot = width // max(1, rec.attempts)
            for n in range(rec.attempts):
                ok = rec.status == "ok" and n == rec.attempts - 1
                events.append({
                    "ph": "X", "pid": 1, "tid": 2, "cat": "attempt",
                    "name": f"attempt {n + 1}"
                            f" ({'ok' if ok else 'fault'})",
                    "ts": start + n * slot, "dur": slot,
                    "args": {"label": rec.label, "n": n + 1}})
    for at, action, node, factor in plan.cluster_timeline():
        args: dict[str, Any] = {"node": node, "action": action}
        if factor:
            args["factor"] = factor
        events.append({"ph": "i", "pid": 2, "tid": 1, "cat": "fault",
                       "name": f"{action} node {node}", "s": "g",
                       "ts": int(at * scale), "args": args})
    for link, factor in sorted(plan.link_factors().items()):
        events.append({"ph": "i", "pid": 2, "tid": 2, "cat": "fault",
                       "name": f"degrade {link} x{factor}", "s": "g",
                       "ts": 0, "args": {"link": link, "factor": factor}})
    return events


def write_chaos_trace(path: Any, journal: RunJournal,
                      plan: FaultPlan) -> int:
    """Write the deterministic chaos Chrome trace; returns the event
    count.  Open the file in ``chrome://tracing`` / Perfetto."""
    events = chaos_trace_events(journal, plan)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"},
                  fh, indent=1, sort_keys=True)
        fh.write("\n")
    return len(events)
