"""Rank placement onto the simulated machine.

A :class:`Machine` binds a job (a set of ranks) to nodes and devices of a
:class:`~repro.cluster.hardware.SystemSpec` and exposes the two timing
queries the engine needs: compute time on a rank's device and the network
model for transfers between ranks.

The default placement is block placement -- ``ranks_per_node`` consecutive
ranks per node, one rank per GPU, matching how the suite pins one MPI
task per A100/HDR200 pair on JUWELS Booster.  :meth:`Machine.msa` builds
the heterogeneous Cluster+Booster placement used by the JUQCS MSA
benchmark (Sec. IV-A2c): the two modules appear as disjoint cell ranges
of one virtual system, so cross-module traffic is classified inter-cell.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cluster.hardware import (
    DeviceSpec,
    SystemSpec,
    juwels_booster,
    juwels_cluster,
)
from ..cluster.network import NetworkModel
from ..units import register_dims

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules
#: (compute_seconds.* is shared with cluster.hardware, same dims)
DIMS = register_dims(__name__, {
    "p2p_seconds.nbytes": "B",
    "p2p_seconds.return": "s",
    "compute_seconds.flops": "FLOP",
    "compute_seconds.bytes_moved": "B",
    "compute_seconds.efficiency": "1",
    "compute_seconds.return": "s",
})


@dataclass(frozen=True)
class Machine:
    """A job's view of the simulated system."""

    system: SystemSpec
    network: NetworkModel
    nranks: int
    ranks_per_node: int
    #: device spec per rank (tuple of length ``nranks``)
    devices: tuple[DeviceSpec, ...]
    #: node index per rank (tuple of length ``nranks``)
    nodes_of_rank: tuple[int, ...]

    # -- constructors ----------------------------------------------------------

    @classmethod
    def on(cls, system: SystemSpec, nranks: int,
           ranks_per_node: int | None = None) -> "Machine":
        """Block placement of ``nranks`` ranks on ``system``.

        One rank per device by default.  The job may not exceed the
        system's node count.
        """
        if nranks < 1:
            raise ValueError("need at least one rank")
        rpn = system.node.devices_per_node if ranks_per_node is None else ranks_per_node
        if rpn < 1:
            raise ValueError("ranks_per_node must be positive")
        job_nodes = -(-nranks // rpn)
        if job_nodes > system.nodes:
            raise ValueError(
                f"{nranks} ranks at {rpn}/node need {job_nodes} nodes; "
                f"{system.name} has {system.nodes}")
        nodes = tuple(r // rpn for r in range(nranks))
        devices = tuple(system.node.device for _ in range(nranks))
        return cls(system=system, network=NetworkModel(system=system),
                   nranks=nranks, ranks_per_node=rpn, devices=devices,
                   nodes_of_rank=nodes)

    @classmethod
    def booster(cls, nodes: int, ranks_per_node: int = 4) -> "Machine":
        """A JUWELS Booster job of ``nodes`` nodes (4 ranks/node default)."""
        system = juwels_booster()
        if nodes > system.nodes:
            raise ValueError(f"JUWELS Booster has {system.nodes} nodes")
        return cls.on(system, nranks=nodes * ranks_per_node,
                      ranks_per_node=ranks_per_node)

    @classmethod
    def msa(cls, cluster_nodes: int, booster_nodes: int,
            cluster_ranks_per_node: int = 4,
            booster_ranks_per_node: int = 4) -> "Machine":
        """Modular (MSA) job spanning JUWELS Cluster and Booster.

        Cluster nodes are mapped to cells *above* the Booster range of a
        combined virtual system, so module-crossing messages take the
        (tapered) inter-cell path -- matching the real deployment where
        the modules meet through the global fabric.
        """
        cluster = juwels_cluster()
        booster = juwels_booster()
        npc = booster.nodes_per_cell
        # Round the booster partition up to whole cells, then append the
        # cluster partition starting on a fresh cell boundary.
        booster_span = -(-booster_nodes // npc) * npc
        total = booster_span + cluster_nodes
        combined = replace(booster, nodes=max(total, booster.nodes),
                           name="JUWELS MSA (combined)")
        nranks = booster_nodes * booster_ranks_per_node + \
            cluster_nodes * cluster_ranks_per_node
        nodes_of_rank: list[int] = []
        devices: list[DeviceSpec] = []
        for r in range(booster_nodes * booster_ranks_per_node):
            nodes_of_rank.append(r // booster_ranks_per_node)
            devices.append(booster.node.device)
        for r in range(cluster_nodes * cluster_ranks_per_node):
            nodes_of_rank.append(booster_span + r // cluster_ranks_per_node)
            devices.append(cluster.node.device)
        return cls(system=combined, network=NetworkModel(system=combined),
                   nranks=nranks, ranks_per_node=booster_ranks_per_node,
                   devices=tuple(devices), nodes_of_rank=tuple(nodes_of_rank))

    # -- queries ---------------------------------------------------------------

    @property
    def job_nodes(self) -> int:
        """Distinct node count of the job (cached; hot path)."""
        cached = self.__dict__.get("_job_nodes")
        if cached is None:
            cached = len(set(self.nodes_of_rank))
            object.__setattr__(self, "_job_nodes", cached)
        return cached

    def node_of(self, rank: int) -> int:
        """Node hosting a rank."""
        return self.nodes_of_rank[rank]

    def device_of(self, rank: int) -> DeviceSpec:
        """Device executing a rank."""
        return self.devices[rank]

    def compute_seconds(self, rank: int, flops: float, bytes_moved: float,
                        efficiency: float) -> float:
        """Roofline compute time for a rank-local kernel."""
        return self.devices[rank].compute_seconds(flops, bytes_moved, efficiency)

    def p2p_seconds(self, src_rank: int, dst_rank: int, nbytes: float) -> float:
        """Transfer time between two ranks."""
        return self.network.p2p_time(self.nodes_of_rank[src_rank],
                                     self.nodes_of_rank[dst_rank],
                                     nbytes, job_nodes=self.job_nodes)

    def node_set(self, ranks: tuple[int, ...]) -> tuple[int, ...]:
        """Distinct nodes hosting the given ranks (for collective costs)."""
        return tuple(sorted({self.nodes_of_rank[r] for r in ranks}))
