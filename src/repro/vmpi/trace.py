"""Per-rank timing traces produced by the virtual-MPI engine.

The paper's analyses need exactly this decomposition: Fig. 3 plots the
JUQCS *computation* and *communication* lines separately, and the Arbor
discussion (Sec. IV-A2a) quotes cost-centre percentages (52 % ion
channels, 33 % cable equation) with communication fully hidden.  The
trace therefore buckets virtual time by op label.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any


@dataclass
class RankTrace:
    """Accumulated virtual time of one rank, bucketed by label."""

    compute: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    comm: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    bytes_sent: float = 0.0
    ops: int = 0

    @property
    def compute_seconds(self) -> float:
        """Total local-work time."""
        return sum(self.compute.values())

    @property
    def comm_seconds(self) -> float:
        """Total time blocked in communication (overlap excluded)."""
        return sum(self.comm.values())


@dataclass
class SpmdResult:
    """Result of one SPMD run: return values, final clocks, traces."""

    values: list[Any]
    clocks: list[float]
    traces: list[RankTrace]

    @property
    def nranks(self) -> int:
        return len(self.values)

    @property
    def elapsed(self) -> float:
        """Virtual makespan of the run (slowest rank)."""
        return max(self.clocks) if self.clocks else 0.0

    # ``seconds`` lets SpmdResult be returned straight from a scheduler job
    # payload (the scheduler reads job durations from this attribute).
    @property
    def seconds(self) -> float:
        """Alias for :attr:`elapsed`."""
        return self.elapsed

    @property
    def compute_seconds(self) -> float:
        """Max per-rank compute time (critical-path style aggregate)."""
        return max((t.compute_seconds for t in self.traces), default=0.0)

    @property
    def comm_seconds(self) -> float:
        """Max per-rank communication (blocked) time."""
        return max((t.comm_seconds for t in self.traces), default=0.0)

    @property
    def comm_fraction(self) -> float:
        """Fraction of the makespan the slowest-comm rank spent blocked."""
        return self.comm_seconds / self.elapsed if self.elapsed > 0 else 0.0

    def compute_profile(self) -> dict[str, float]:
        """Aggregate compute time by label across ranks (for cost centres)."""
        out: dict[str, float] = defaultdict(float)
        for t in self.traces:
            for label, sec in t.compute.items():
                out[label] += sec
        return dict(out)

    def comm_profile(self) -> dict[str, float]:
        """Aggregate communication time by label across ranks."""
        out: dict[str, float] = defaultdict(float)
        for t in self.traces:
            for label, sec in t.comm.items():
                out[label] += sec
        return dict(out)
