"""Per-rank timing traces produced by the virtual-MPI engine.

The paper's analyses need exactly this decomposition: Fig. 3 plots the
JUQCS *computation* and *communication* lines separately, and the Arbor
discussion (Sec. IV-A2a) quotes cost-centre percentages (52 % ion
channels, 33 % cable equation) with communication fully hidden.  The
trace therefore buckets virtual time by op label.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .ops import Phantom


def _canon(value: Any) -> Any:
    """A JSON-serializable, engine-core-independent form of a payload.

    NumPy arrays and scalars become lists/numbers, phantoms become
    tagged size records, and communicators are reduced to their
    structural identity ``(rank, members)`` -- raw ``comm_id`` values
    depend on allocation order, which the engine cores are free to
    differ on, so they must not leak into comparisons.
    """
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, Phantom):
        return {"__phantom__": value.nbytes}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canon(value[k]) for k in sorted(value)}
    if hasattr(value, "members") and hasattr(value, "comm_id"):
        return {"__comm__": {"rank": value.rank,
                             "members": list(value.members)}}
    return value


@dataclass
class RankTrace:
    """Accumulated virtual time of one rank, bucketed by label."""

    compute: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    comm: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    bytes_sent: float = 0.0
    ops: int = 0

    @property
    def compute_seconds(self) -> float:
        """Total local-work time."""
        return sum(self.compute.values())

    @property
    def comm_seconds(self) -> float:
        """Total time blocked in communication (overlap excluded)."""
        return sum(self.comm.values())


@dataclass
class SpmdResult:
    """Result of one SPMD run: return values, final clocks, traces."""

    values: list[Any]
    clocks: list[float]
    traces: list[RankTrace]
    #: which engine core produced this result ("step" or "event")
    mode: str = ""

    @property
    def nranks(self) -> int:
        return len(self.values)

    @property
    def elapsed(self) -> float:
        """Virtual makespan of the run (slowest rank)."""
        return max(self.clocks) if self.clocks else 0.0

    # ``seconds`` lets SpmdResult be returned straight from a scheduler job
    # payload (the scheduler reads job durations from this attribute).
    @property
    def seconds(self) -> float:
        """Alias for :attr:`elapsed`."""
        return self.elapsed

    @property
    def compute_seconds(self) -> float:
        """Max per-rank compute time (critical-path style aggregate)."""
        return max((t.compute_seconds for t in self.traces), default=0.0)

    @property
    def comm_seconds(self) -> float:
        """Max per-rank communication (blocked) time."""
        return max((t.comm_seconds for t in self.traces), default=0.0)

    @property
    def comm_fraction(self) -> float:
        """Fraction of the makespan the slowest-comm rank spent blocked."""
        return self.comm_seconds / self.elapsed if self.elapsed > 0 else 0.0

    def compute_profile(self) -> dict[str, float]:
        """Aggregate compute time by label across ranks (for cost centres)."""
        out: dict[str, float] = defaultdict(float)
        for t in self.traces:
            for label, sec in t.compute.items():
                out[label] += sec
        return dict(out)

    def comm_profile(self) -> dict[str, float]:
        """Aggregate communication time by label across ranks."""
        out: dict[str, float] = defaultdict(float)
        for t in self.traces:
            for label, sec in t.comm.items():
                out[label] += sec
        return dict(out)

    def canonical(self, *, include_mode: bool = False) -> dict[str, Any]:
        """A plain-data form of the result for structural comparison.

        The differential test harness and the CI bench-smoke job compare
        step- and event-core runs through this: floats pass through
        untouched (byte identity is the contract), payloads are
        canonicalized by :func:`_canon`, and ``mode`` is excluded unless
        asked for -- it is the one field that legitimately differs.
        """
        out: dict[str, Any] = {
            "values": [_canon(v) for v in self.values],
            "clocks": list(self.clocks),
            "traces": [
                {"compute": {k: t.compute[k] for k in sorted(t.compute)},
                 "comm": {k: t.comm[k] for k in sorted(t.comm)},
                 "bytes_sent": t.bytes_sent,
                 "ops": t.ops}
                for t in self.traces],
        }
        if include_mode:
            out["mode"] = self.mode
        return out
