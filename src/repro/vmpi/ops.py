"""Operation descriptors for the virtual-MPI engine.

Rank programs are plain Python generators that *yield* these descriptors
(usually built via the :class:`~repro.vmpi.comm.Comm` facade) and are
resumed with the operation's result.  The engine interprets each op in
two coupled ways:

* **data**: real payloads (NumPy arrays, scalars, anything sized by
  :func:`nbytes_of`) are actually moved/reduced, so distributed
  algorithms can be verified bit-for-bit at small scale;
* **time**: every op advances the issuing rank's virtual clock using the
  machine model, so the same program yields timing at any scale.

:class:`Phantom` payloads carry only a byte count -- large-scale runs
use them to exercise the exact communication structure without
materialising terabytes of state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass(frozen=True)
class Phantom:
    """A size-only payload: ``nbytes`` bytes that are never materialised."""

    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("Phantom size must be non-negative")


def nbytes_of(payload: Any) -> float:
    """Wire size of a payload in bytes.

    NumPy arrays report their buffer size; scalars count as 8 bytes;
    containers sum their items; ``None`` is zero (pure synchronisation).
    """
    if payload is None:
        return 0.0
    if isinstance(payload, Phantom):
        return payload.nbytes
    if isinstance(payload, np.ndarray):
        return float(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return float(len(payload))
    if isinstance(payload, str):
        return float(len(payload.encode("utf-8")))
    if isinstance(payload, (bool, int, float, complex, np.generic)):
        return 8.0
    if isinstance(payload, (list, tuple)):
        return float(sum(nbytes_of(p) for p in payload))
    if isinstance(payload, dict):
        return float(sum(nbytes_of(v) for v in payload.values()))
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


def _validate_tag(tag: Any) -> None:
    """Tags address per-channel FIFO queues; reject junk at construction.

    Catching a negative or non-int tag here (instead of deep in the
    engine's matching tables) keeps the failure at the line that built
    the op -- and is the contract the static protocol pass
    (:mod:`repro.check.protocol`) assumes when it folds tags.
    """
    if isinstance(tag, bool) or not isinstance(tag, int):
        raise TypeError(f"tag must be an int, got {type(tag).__name__}")
    if tag < 0:
        raise ValueError(f"tag must be non-negative, got {tag}")


def _validate_root(root: Any) -> None:
    """Rooted collectives need an int local rank; bounds are checked by
    the communicator, type and sign are checked here."""
    if isinstance(root, bool) or not isinstance(root, int):
        raise TypeError(f"root must be an int, got {type(root).__name__}")
    if root < 0:
        raise ValueError(f"root must be non-negative, got {root}")


class Op:
    """Base class for all yielded operations."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Op):
    """Local work: ``flops`` floating-point ops touching ``bytes_moved`` bytes.

    The engine charges roofline time on the issuing rank's device, scaled
    by ``efficiency`` (attainable fraction of peak for this kernel).
    ``label`` buckets the time in the trace (e.g. Arbor's ``"channels"``
    vs ``"cable"`` cost centres, Sec. IV-A2a).
    """

    flops: float = 0.0
    bytes_moved: float = 0.0
    efficiency: float = 0.25
    label: str = "compute"

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_moved < 0:
            raise ValueError("work amounts must be non-negative")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")


@dataclass(frozen=True)
class Elapse(Op):
    """Advance the local clock by a fixed number of seconds (e.g. I/O
    charged from the storage model, or setup phases)."""

    seconds: float
    label: str = "elapse"

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("cannot elapse negative time")


@dataclass(frozen=True)
class Send(Op):
    """Blocking send of ``payload`` to ``dest`` (rendezvous semantics)."""

    dest: int
    payload: Any
    tag: int = 0
    comm_id: int = 0

    def __post_init__(self) -> None:
        _validate_tag(self.tag)


@dataclass(frozen=True)
class Recv(Op):
    """Blocking receive from ``source``; resumes with the payload."""

    source: int
    tag: int = 0
    comm_id: int = 0

    def __post_init__(self) -> None:
        _validate_tag(self.tag)


@dataclass(frozen=True)
class Isend(Op):
    """Non-blocking send; resumes immediately with a request handle."""

    dest: int
    payload: Any
    tag: int = 0
    comm_id: int = 0

    def __post_init__(self) -> None:
        _validate_tag(self.tag)


@dataclass(frozen=True)
class Irecv(Op):
    """Non-blocking receive; resumes immediately with a request handle."""

    source: int
    tag: int = 0
    comm_id: int = 0

    def __post_init__(self) -> None:
        _validate_tag(self.tag)


@dataclass(frozen=True)
class Wait(Op):
    """Block until ``request`` completes; receives resume with the payload."""

    request: "Request"


@dataclass(frozen=True)
class Waitall(Op):
    """Block until all ``requests`` complete; resumes with a list of
    payloads (``None`` entries for sends)."""

    requests: tuple["Request", ...]


@dataclass(frozen=True)
class Sendrecv(Op):
    """Simultaneous exchange: send to ``dest`` while receiving from
    ``source`` (the classic halo-exchange primitive); resumes with the
    received payload."""

    dest: int
    payload: Any
    source: int
    tag: int = 0
    comm_id: int = 0

    def __post_init__(self) -> None:
        _validate_tag(self.tag)


@dataclass(frozen=True)
class Exchange(Op):
    """A fused neighborhood exchange (MPI_Neighbor_alltoallv-style).

    ``sends`` lists ``(dest_local, payload)`` pairs, ``recvs`` lists the
    local source ranks, both in program order.  The op completes when
    every listed transfer has a matching counterpart and resumes with
    the received payloads in ``recvs`` order.

    Exchanges match only against other exchanges: each directed pair
    ``(src, dst)`` under one ``(comm, tag)`` pairs its k-th exchanged
    send with the k-th exchanged receive, so matching is independent of
    scheduling order (like the per-key FIFO queues of plain p2p, but in
    a separate namespace -- exactly how MPI neighborhood collectives do
    not match point-to-point traffic).

    Halo patterns yield one ``Exchange`` per step instead of one op per
    face; timing programs hoist the constant op out of the step loop,
    which lets the event engine reuse a vectorized per-round plan.
    """

    sends: tuple[tuple[int, Any], ...]
    recvs: tuple[int, ...]
    tag: int = 0
    comm_id: int = 0
    label: str = "p2p"

    def __post_init__(self) -> None:
        _validate_tag(self.tag)


@dataclass(frozen=True)
class Collective(Op):
    """A collective over all ranks of a communicator.

    ``kind`` is one of ``allreduce | allgather | alltoall | bcast |
    reduce | gather | scatter | barrier | split``.  ``reduce_op`` applies
    to (all)reduce.  ``root`` applies to rooted collectives.  An
    ``alltoall`` payload is either a size-P tuple (personalised data per
    destination) or a single :class:`Phantom` meaning that many bytes to
    *each* peer (the uniform form large-scale timing programs use).
    """

    kind: str
    payload: Any = None
    reduce_op: str = "sum"
    root: int = 0
    comm_id: int = 0
    label: str = ""

    _KINDS = frozenset({"allreduce", "allgather", "alltoall", "bcast",
                        "reduce", "gather", "scatter", "barrier", "split"})

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown collective kind {self.kind!r}")
        _validate_root(self.root)


@dataclass
class Request:
    """Handle for an outstanding non-blocking operation (engine-internal
    state; rank code only stores and waits on it)."""

    rank: int
    is_send: bool
    peer: int
    tag: int
    comm_id: int
    post_time: float
    payload: Any = None
    rid: int = field(default=-1)
    done: bool = False
    complete_time: float = 0.0
    result: Any = None
    #: wire size of ``payload``, cached at post time (sends only)
    nbytes: float = 0.0

    def __hash__(self) -> int:  # identity-hash: each posted request is unique
        return id(self)


#: Introspection table of the :class:`~repro.vmpi.comm.Comm` facade:
#: method name -> op kind and the facade's positional parameter names
#: (with defaults).  The static protocol pass (``repro.check.protocol``)
#: binds call-site arguments against these signatures instead of
#: hardcoding the facade, so facade and analyzer cannot drift apart --
#: a test asserts each entry matches ``Comm``'s real signature.
#:
#: Parameter names are semantic: ``dest``/``source``/``root`` are
#: comm-local ranks, ``tag`` a channel tag, ``payload``/``payloads`` the
#: data, ``op`` a reduce op, ``color``/``key`` the split arguments.
COMM_METHODS: dict[str, dict] = {
    "compute":   {"kind": "compute",
                  "params": ("flops", "bytes_moved", "efficiency", "label"),
                  "defaults": {"flops": 0.0, "bytes_moved": 0.0,
                               "efficiency": 0.25, "label": "compute"}},
    "elapse":    {"kind": "elapse", "params": ("seconds", "label"),
                  "defaults": {"label": "elapse"}},
    "send":      {"kind": "send", "params": ("dest", "payload", "tag"),
                  "defaults": {"tag": 0}},
    "recv":      {"kind": "recv", "params": ("source", "tag"),
                  "defaults": {"tag": 0}},
    "isend":     {"kind": "isend", "params": ("dest", "payload", "tag"),
                  "defaults": {"tag": 0}},
    "irecv":     {"kind": "irecv", "params": ("source", "tag"),
                  "defaults": {"tag": 0}},
    "wait":      {"kind": "wait", "params": ("request",), "defaults": {}},
    "waitall":   {"kind": "waitall", "params": ("requests",),
                  "defaults": {}},
    "sendrecv":  {"kind": "sendrecv",
                  "params": ("dest", "payload", "source", "tag"),
                  "defaults": {"tag": 0}},
    "exchange":  {"kind": "exchange",
                  "params": ("sends", "recvs", "tag", "label"),
                  "defaults": {"tag": 0, "label": "p2p"}},
    "allreduce": {"kind": "allreduce", "params": ("payload", "op", "label"),
                  "defaults": {"op": "sum", "label": "allreduce"}},
    "allgather": {"kind": "allgather", "params": ("payload", "label"),
                  "defaults": {"label": "allgather"}},
    "alltoall":  {"kind": "alltoall", "params": ("payloads", "label"),
                  "defaults": {"label": "alltoall"}},
    "bcast":     {"kind": "bcast", "params": ("payload", "root", "label"),
                  "defaults": {"root": 0, "label": "bcast"}},
    "reduce":    {"kind": "reduce",
                  "params": ("payload", "op", "root", "label"),
                  "defaults": {"op": "sum", "root": 0, "label": "reduce"}},
    "gather":    {"kind": "gather", "params": ("payload", "root", "label"),
                  "defaults": {"root": 0, "label": "gather"}},
    "scatter":   {"kind": "scatter",
                  "params": ("payloads", "root", "label"),
                  "defaults": {"root": 0, "label": "scatter"}},
    "barrier":   {"kind": "barrier", "params": ("label",),
                  "defaults": {"label": "barrier"}},
    "split":     {"kind": "split", "params": ("color", "key"),
                  "defaults": {"key": None}},
}

#: collective kinds that carry a meaningful root
ROOTED_KINDS = frozenset({"bcast", "reduce", "gather", "scatter"})
#: collective kinds that carry a meaningful reduce op
REDUCING_KINDS = frozenset({"allreduce", "reduce"})
