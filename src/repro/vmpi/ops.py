"""Operation descriptors for the virtual-MPI engine.

Rank programs are plain Python generators that *yield* these descriptors
(usually built via the :class:`~repro.vmpi.comm.Comm` facade) and are
resumed with the operation's result.  The engine interprets each op in
two coupled ways:

* **data**: real payloads (NumPy arrays, scalars, anything sized by
  :func:`nbytes_of`) are actually moved/reduced, so distributed
  algorithms can be verified bit-for-bit at small scale;
* **time**: every op advances the issuing rank's virtual clock using the
  machine model, so the same program yields timing at any scale.

:class:`Phantom` payloads carry only a byte count -- large-scale runs
use them to exercise the exact communication structure without
materialising terabytes of state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass(frozen=True)
class Phantom:
    """A size-only payload: ``nbytes`` bytes that are never materialised."""

    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("Phantom size must be non-negative")


def nbytes_of(payload: Any) -> float:
    """Wire size of a payload in bytes.

    NumPy arrays report their buffer size; scalars count as 8 bytes;
    containers sum their items; ``None`` is zero (pure synchronisation).
    """
    if payload is None:
        return 0.0
    if isinstance(payload, Phantom):
        return payload.nbytes
    if isinstance(payload, np.ndarray):
        return float(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return float(len(payload))
    if isinstance(payload, str):
        return float(len(payload.encode("utf-8")))
    if isinstance(payload, (bool, int, float, complex, np.generic)):
        return 8.0
    if isinstance(payload, (list, tuple)):
        return float(sum(nbytes_of(p) for p in payload))
    if isinstance(payload, dict):
        return float(sum(nbytes_of(v) for v in payload.values()))
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


class Op:
    """Base class for all yielded operations."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Op):
    """Local work: ``flops`` floating-point ops touching ``bytes_moved`` bytes.

    The engine charges roofline time on the issuing rank's device, scaled
    by ``efficiency`` (attainable fraction of peak for this kernel).
    ``label`` buckets the time in the trace (e.g. Arbor's ``"channels"``
    vs ``"cable"`` cost centres, Sec. IV-A2a).
    """

    flops: float = 0.0
    bytes_moved: float = 0.0
    efficiency: float = 0.25
    label: str = "compute"

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_moved < 0:
            raise ValueError("work amounts must be non-negative")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")


@dataclass(frozen=True)
class Elapse(Op):
    """Advance the local clock by a fixed number of seconds (e.g. I/O
    charged from the storage model, or setup phases)."""

    seconds: float
    label: str = "elapse"

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("cannot elapse negative time")


@dataclass(frozen=True)
class Send(Op):
    """Blocking send of ``payload`` to ``dest`` (rendezvous semantics)."""

    dest: int
    payload: Any
    tag: int = 0
    comm_id: int = 0


@dataclass(frozen=True)
class Recv(Op):
    """Blocking receive from ``source``; resumes with the payload."""

    source: int
    tag: int = 0
    comm_id: int = 0


@dataclass(frozen=True)
class Isend(Op):
    """Non-blocking send; resumes immediately with a request handle."""

    dest: int
    payload: Any
    tag: int = 0
    comm_id: int = 0


@dataclass(frozen=True)
class Irecv(Op):
    """Non-blocking receive; resumes immediately with a request handle."""

    source: int
    tag: int = 0
    comm_id: int = 0


@dataclass(frozen=True)
class Wait(Op):
    """Block until ``request`` completes; receives resume with the payload."""

    request: "Request"


@dataclass(frozen=True)
class Waitall(Op):
    """Block until all ``requests`` complete; resumes with a list of
    payloads (``None`` entries for sends)."""

    requests: tuple["Request", ...]


@dataclass(frozen=True)
class Sendrecv(Op):
    """Simultaneous exchange: send to ``dest`` while receiving from
    ``source`` (the classic halo-exchange primitive); resumes with the
    received payload."""

    dest: int
    payload: Any
    source: int
    tag: int = 0
    comm_id: int = 0


@dataclass(frozen=True)
class Exchange(Op):
    """A fused neighborhood exchange (MPI_Neighbor_alltoallv-style).

    ``sends`` lists ``(dest_local, payload)`` pairs, ``recvs`` lists the
    local source ranks, both in program order.  The op completes when
    every listed transfer has a matching counterpart and resumes with
    the received payloads in ``recvs`` order.

    Exchanges match only against other exchanges: each directed pair
    ``(src, dst)`` under one ``(comm, tag)`` pairs its k-th exchanged
    send with the k-th exchanged receive, so matching is independent of
    scheduling order (like the per-key FIFO queues of plain p2p, but in
    a separate namespace -- exactly how MPI neighborhood collectives do
    not match point-to-point traffic).

    Halo patterns yield one ``Exchange`` per step instead of one op per
    face; timing programs hoist the constant op out of the step loop,
    which lets the event engine reuse a vectorized per-round plan.
    """

    sends: tuple[tuple[int, Any], ...]
    recvs: tuple[int, ...]
    tag: int = 0
    comm_id: int = 0
    label: str = "p2p"


@dataclass(frozen=True)
class Collective(Op):
    """A collective over all ranks of a communicator.

    ``kind`` is one of ``allreduce | allgather | alltoall | bcast |
    reduce | gather | scatter | barrier | split``.  ``reduce_op`` applies
    to (all)reduce.  ``root`` applies to rooted collectives.  An
    ``alltoall`` payload is either a size-P tuple (personalised data per
    destination) or a single :class:`Phantom` meaning that many bytes to
    *each* peer (the uniform form large-scale timing programs use).
    """

    kind: str
    payload: Any = None
    reduce_op: str = "sum"
    root: int = 0
    comm_id: int = 0
    label: str = ""

    _KINDS = frozenset({"allreduce", "allgather", "alltoall", "bcast",
                        "reduce", "gather", "scatter", "barrier", "split"})

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown collective kind {self.kind!r}")


@dataclass
class Request:
    """Handle for an outstanding non-blocking operation (engine-internal
    state; rank code only stores and waits on it)."""

    rank: int
    is_send: bool
    peer: int
    tag: int
    comm_id: int
    post_time: float
    payload: Any = None
    rid: int = field(default=-1)
    done: bool = False
    complete_time: float = 0.0
    result: Any = None
    #: wire size of ``payload``, cached at post time (sends only)
    nbytes: float = 0.0

    def __hash__(self) -> int:  # identity-hash: each posted request is unique
        return id(self)
