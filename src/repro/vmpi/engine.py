"""Deterministic virtual-MPI execution engine.

Rank programs (generators yielding :mod:`~repro.vmpi.ops` descriptors)
are co-scheduled in-process.  Real payloads are actually moved and
reduced -- so distributed algorithms can be validated -- while every
operation advances a per-rank *virtual clock* using the machine model,
so the same program produces large-machine timing from a laptop.

Semantics (documented divergences from real MPI):

* Point-to-point uses rendezvous timing: a transfer starts when both
  sides have posted and costs ``alpha + n/beta`` from the network model.
  Nonblocking ops (``Isend``/``Irecv`` + ``Wait``) therefore model
  compute/communication overlap exactly the way the applications exploit
  it (Arbor hides its spike exchange behind integration, Sec. IV-A2a).
* Collectives are synchronising: completion is ``max(post times) +
  model cost``; all ranks leave with the same clock.
* Scheduling is deterministic (FIFO ready queue, rank-ordered
  completion), so runs are exactly reproducible -- a suite requirement
  (replicability, Sec. II-A).
"""

from __future__ import annotations

import inspect
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np

from ..cluster.hardware import juwels_booster
from .comm import Comm
from .machine import Machine
from .ops import (
    Collective,
    Compute,
    Elapse,
    Irecv,
    Isend,
    Op,
    Phantom,
    Recv,
    Request,
    Send,
    Sendrecv,
    Wait,
    Waitall,
    nbytes_of,
)
from .trace import RankTrace, SpmdResult


class VmpiError(RuntimeError):
    """Base class for engine errors."""


class DeadlockError(VmpiError):
    """All unfinished ranks are blocked and nothing can complete."""


class CollectiveMismatchError(VmpiError):
    """Ranks of one communicator posted different collectives."""


class RankFailedError(VmpiError):
    """A rank program raised; carries the originating rank."""

    def __init__(self, rank: int, original: BaseException):
        super().__init__(f"rank {rank} failed: {type(original).__name__}: {original}")
        self.rank = rank
        self.original = original


@dataclass
class _WaitGroup:
    """A rank blocked until a set of requests completes."""

    rank: int
    requests: tuple[Request, ...]
    blocked_at: float
    single: bool  # resume with one result instead of a list
    sendrecv: bool = False  # resume with the received payload only


def _reduce_payloads(payloads: list[Any], op: str) -> Any:
    """Element-wise reduction across rank payloads (phantom-aware)."""
    if any(isinstance(p, Phantom) for p in payloads):
        return Phantom(max(nbytes_of(p) for p in payloads))
    funcs = {"sum": np.add, "max": np.maximum, "min": np.minimum,
             "prod": np.multiply}
    if op not in funcs:
        raise VmpiError(f"unknown reduction op {op!r}")
    fn = funcs[op]
    acc = np.array(payloads[0]) if isinstance(payloads[0], np.ndarray) \
        else payloads[0]
    for p in payloads[1:]:
        acc = fn(acc, p)
    return acc


class Engine:
    """Runs one SPMD program over a :class:`~repro.vmpi.machine.Machine`.

    ``eager_limit`` mirrors MPI's eager protocol: sends at or below this
    size complete locally without waiting for the matching receive
    (buffered), while larger messages rendezvous.  Without this, common
    patterns that are legal in practice (small out-of-order tagged sends,
    self-messages) would deadlock.
    """

    EAGER_LIMIT = 64 * 1024  # bytes

    def __init__(self, machine: Machine, eager_limit: int | None = None):
        self.machine = machine
        self.eager_limit = self.EAGER_LIMIT if eager_limit is None else eager_limit
        n = machine.nranks
        self.clocks = [0.0] * n
        self.traces = [RankTrace() for _ in range(n)]
        self._gens: list[Iterator[Op]] = []
        self._resume: list[Any] = [None] * n
        self._finished = [False] * n
        self._values: list[Any] = [None] * n
        self._blocked: dict[int, Any] = {}       # rank -> description
        self._ready: deque[int] = deque()
        self._sends: dict[tuple, deque[Request]] = defaultdict(deque)
        self._recvs: dict[tuple, deque[Request]] = defaultdict(deque)
        self._wait_groups: dict[Request, _WaitGroup] = {}
        self._comms: dict[int, tuple[int, ...]] = {0: tuple(range(n))}
        self._next_comm_id = 1
        self._coll_seq: dict[tuple[int, int], int] = defaultdict(int)
        self._coll_pending: dict[tuple[int, int], dict[int, tuple[Collective, float]]] = {}
        self._rid = 0

    # -- public --------------------------------------------------------------

    def run(self, fn: Callable[..., Iterator[Op]], *,
            args: tuple = (), kwargs: dict | None = None,
            rank_kwargs: list[dict] | None = None) -> SpmdResult:
        """Execute ``fn(comm, *args, **kwargs)`` on every rank.

        ``rank_kwargs`` optionally supplies per-rank keyword overrides.
        Returns the per-rank return values, final clocks and traces.
        """
        n = self.machine.nranks
        kwargs = kwargs or {}
        for r in range(n):
            kw = dict(kwargs)
            if rank_kwargs is not None:
                kw.update(rank_kwargs[r])
            comm = Comm(comm_id=0, rank=r, members=self._comms[0])
            gen = fn(comm, *args, **kw)
            if not inspect.isgenerator(gen):
                raise TypeError(
                    f"rank program {fn.__name__!r} must be a generator function")
            self._gens.append(gen)
            self._ready.append(r)
        while self._ready:
            self._step_rank(self._ready.popleft())
        if not all(self._finished):
            stuck = {r: self._blocked.get(r, "unknown") for r in range(n)
                     if not self._finished[r]}
            detail = "; ".join(f"rank {r}: {d}" for r, d in stuck.items())
            raise DeadlockError(f"deadlock -- blocked ranks: {detail}")
        return SpmdResult(values=self._values, clocks=self.clocks,
                          traces=self.traces)

    # -- rank stepping ----------------------------------------------------------

    def _step_rank(self, r: int) -> None:
        """Drive rank ``r`` until it blocks or returns."""
        if self._finished[r]:
            return
        gen = self._gens[r]
        while True:
            value, self._resume[r] = self._resume[r], None
            try:
                op = gen.send(value)
            except StopIteration as stop:
                self._finished[r] = True
                self._values[r] = stop.value
                return
            except VmpiError:
                raise
            except BaseException as exc:
                raise RankFailedError(r, exc) from exc
            if not self._dispatch(r, op):
                return  # blocked; resumes later via _unblock

    def _dispatch(self, r: int, op: Op) -> bool:
        """Process one op; True if the rank may continue immediately."""
        self.traces[r].ops += 1
        kind = type(op)
        if kind is Compute:
            dt = self.machine.compute_seconds(r, op.flops, op.bytes_moved,
                                              op.efficiency)
            self.clocks[r] += dt
            self.traces[r].compute[op.label] += dt
            return True
        if kind is Elapse:
            self.clocks[r] += op.seconds
            self.traces[r].compute[op.label] += op.seconds
            return True
        if kind is Isend:
            self._resume[r] = self._post_send(r, op.dest, op.payload, op.tag,
                                              op.comm_id)
            return True
        if kind is Irecv:
            self._resume[r] = self._post_recv(r, op.source, op.tag, op.comm_id)
            return True
        if kind is Send:
            req = self._post_send(r, op.dest, op.payload, op.tag, op.comm_id)
            return self._wait_on(r, (req,), single=True)
        if kind is Recv:
            req = self._post_recv(r, op.source, op.tag, op.comm_id)
            return self._wait_on(r, (req,), single=True)
        if kind is Sendrecv:
            sreq = self._post_send(r, op.dest, op.payload, op.tag, op.comm_id)
            rreq = self._post_recv(r, op.source, op.tag, op.comm_id)
            return self._wait_on(r, (sreq, rreq), single=False, sendrecv=True)
        if kind is Wait:
            return self._wait_on(r, (op.request,), single=True)
        if kind is Waitall:
            return self._wait_on(r, op.requests, single=False)
        if kind is Collective:
            return self._post_collective(r, op)
        raise VmpiError(f"rank {r} yielded a non-op: {op!r}")

    # -- point-to-point --------------------------------------------------------

    def _global(self, comm_id: int, local: int) -> int:
        members = self._comms.get(comm_id)
        if members is None:
            raise VmpiError(f"unknown communicator id {comm_id}")
        return members[local]

    def _local(self, comm_id: int, global_rank: int) -> int:
        return self._comms[comm_id].index(global_rank)

    def _post_send(self, r: int, dest_local: int, payload: Any, tag: int,
                   comm_id: int) -> Request:
        dest = self._global(comm_id, dest_local)
        self._rid += 1
        req = Request(rank=r, is_send=True, peer=dest, tag=tag,
                      comm_id=comm_id, post_time=self.clocks[r],
                      payload=payload, rid=self._rid)
        if nbytes_of(payload) <= self.eager_limit:
            # Eager protocol: the send buffers locally and completes after
            # the injection overhead, independent of the receiver.
            req.done = True
            req.complete_time = req.post_time + \
                self.machine.p2p_seconds(r, dest, nbytes_of(payload))
        key = (comm_id, r, dest, tag)
        match_q = self._recvs.get(key)
        if match_q:
            self._complete_transfer(req, match_q.popleft())
        else:
            self._sends[key].append(req)
        return req

    def _post_recv(self, r: int, source_local: int, tag: int,
                   comm_id: int) -> Request:
        source = self._global(comm_id, source_local)
        self._rid += 1
        req = Request(rank=r, is_send=False, peer=source, tag=tag,
                      comm_id=comm_id, post_time=self.clocks[r], rid=self._rid)
        key = (comm_id, source, r, tag)
        match_q = self._sends.get(key)
        if match_q:
            self._complete_transfer(match_q.popleft(), req)
        else:
            self._recvs[key].append(req)
        return req

    def _complete_transfer(self, send: Request, recv: Request) -> None:
        nbytes = nbytes_of(send.payload)
        dt = self.machine.p2p_seconds(send.rank, recv.rank, nbytes)
        done = max(send.post_time, recv.post_time) + dt
        if not send.done:  # eager sends already completed locally
            send.done = True
            send.complete_time = done
        recv.done = True
        recv.complete_time = done
        recv.result = send.payload
        self.traces[send.rank].bytes_sent += nbytes
        for req in (send, recv):
            group = self._wait_groups.get(req)
            if group is not None:
                self._check_group(group)

    # -- waiting ------------------------------------------------------------------

    def _wait_on(self, r: int, requests: tuple[Request, ...], *,
                 single: bool, sendrecv: bool = False) -> bool:
        for req in requests:
            if req.rank != r:
                raise VmpiError(
                    f"rank {r} waiting on request posted by rank {req.rank}")
        group = _WaitGroup(rank=r, requests=requests,
                           blocked_at=self.clocks[r],
                           single=single and not sendrecv,
                           sendrecv=sendrecv)
        if all(req.done for req in requests):
            self._finish_group(group)
            return True
        for req in requests:
            if not req.done:
                self._wait_groups[req] = group
        self._blocked[r] = f"waiting on {len(requests)} request(s)"
        return False

    def _check_group(self, group: _WaitGroup) -> None:
        if all(req.done for req in group.requests):
            for req in group.requests:
                self._wait_groups.pop(req, None)
            self._finish_group(group)
            self._blocked.pop(group.rank, None)
            self._ready.append(group.rank)

    def _finish_group(self, group: _WaitGroup) -> None:
        r = group.rank
        done = max(req.complete_time for req in group.requests)
        waited = max(0.0, done - self.clocks[r])
        self.clocks[r] = max(self.clocks[r], done)
        self.traces[r].comm["p2p"] += waited
        if group.sendrecv:
            recv = next(req for req in group.requests if not req.is_send)
            self._resume[r] = recv.result
        elif group.single:
            req = group.requests[0]
            self._resume[r] = req.result if not req.is_send else None
        else:
            self._resume[r] = [req.result if not req.is_send else None
                               for req in group.requests]

    # -- collectives ---------------------------------------------------------------

    def _post_collective(self, r: int, op: Collective) -> bool:
        members = self._comms.get(op.comm_id)
        if members is None:
            raise VmpiError(f"unknown communicator id {op.comm_id}")
        if r not in members:
            raise VmpiError(f"rank {r} is not a member of comm {op.comm_id}")
        seq = self._coll_seq[(op.comm_id, r)]
        self._coll_seq[(op.comm_id, r)] = seq + 1
        key = (op.comm_id, seq)
        pending = self._coll_pending.setdefault(key, {})
        local = members.index(r)
        pending[local] = (op, self.clocks[r])
        if len(pending) < len(members):
            self._blocked[r] = f"collective {op.kind!r} on comm {op.comm_id}"
            return False
        del self._coll_pending[key]
        self._finish_collective(members, pending, caller=r)
        return True

    def _finish_collective(self, members: tuple[int, ...],
                           pending: dict[int, tuple[Collective, float]],
                           caller: int) -> None:
        ops = [pending[i][0] for i in range(len(members))]
        posts = [pending[i][1] for i in range(len(members))]
        first = ops[0]
        for o in ops[1:]:
            if (o.kind, o.reduce_op, o.root) != (first.kind, first.reduce_op,
                                                 first.root):
                raise CollectiveMismatchError(
                    f"comm members posted {first.kind!r} vs {o.kind!r}")
        results = self._collective_results(members, ops)
        cost = self._collective_cost(members, ops)
        done = max(posts) + cost
        label = first.label or first.kind
        for i, g in enumerate(members):
            waited = max(0.0, done - self.clocks[g])
            self.clocks[g] = done
            self.traces[g].comm[label] += waited
            self.traces[g].bytes_sent += nbytes_of(ops[i].payload)
            self._resume[g] = results[i]
            if g != caller:
                self._blocked.pop(g, None)
                self._ready.append(g)

    def _collective_cost(self, members: tuple[int, ...],
                         ops: list[Collective]) -> float:
        net = self.machine.network
        node_set = self.machine.node_set(members)
        p = len(members)
        kind = ops[0].kind
        sizes = [nbytes_of(o.payload) for o in ops]
        biggest = max(sizes) if sizes else 0.0
        if kind == "allreduce":
            return net.allreduce_time(node_set, p, biggest)
        if kind == "allgather":
            return net.allgather_time(node_set, p, biggest)
        if kind == "alltoall":
            per_pair = biggest / p if p else 0.0
            return net.alltoall_time(node_set, p, per_pair)
        if kind == "bcast":
            root_size = sizes[ops[0].root]
            return net.bcast_time(node_set, p, root_size)
        if kind == "reduce":
            return net.bcast_time(node_set, p, biggest)
        if kind in ("gather", "scatter"):
            return net.allgather_time(node_set, p, biggest / max(p, 1)
                                      if kind == "scatter" else biggest)
        if kind in ("barrier", "split"):
            return net.barrier_time(node_set, p)
        raise VmpiError(f"no cost model for collective {kind!r}")

    def _collective_results(self, members: tuple[int, ...],
                            ops: list[Collective]) -> list[Any]:
        kind = ops[0].kind
        p = len(members)
        payloads = [o.payload for o in ops]
        if kind == "barrier":
            return [None] * p
        if kind == "allreduce":
            red = _reduce_payloads(payloads, ops[0].reduce_op)
            return [red] * p
        if kind == "reduce":
            red = _reduce_payloads(payloads, ops[0].reduce_op)
            return [red if i == ops[0].root else None for i in range(p)]
        if kind == "allgather":
            return [list(payloads)] * p
        if kind == "gather":
            return [list(payloads) if i == ops[0].root else None
                    for i in range(p)]
        if kind == "bcast":
            return [payloads[ops[0].root]] * p
        if kind == "scatter":
            items = payloads[ops[0].root]
            if items is None or len(items) != p:
                raise VmpiError("scatter root must supply one payload per rank")
            return list(items)
        if kind == "alltoall":
            for pl in payloads:
                if not isinstance(pl, tuple) or len(pl) != p:
                    raise VmpiError("alltoall payloads must be size-P tuples")
            return [[payloads[i][j] for i in range(p)] for j in range(p)]
        if kind == "split":
            return self._do_split(members, payloads)
        raise VmpiError(f"no result rule for collective {kind!r}")

    def _do_split(self, members: tuple[int, ...],
                  payloads: list[Any]) -> list[Any]:
        groups: dict[int, list[tuple[int, int, int]]] = defaultdict(list)
        for local, (color, key) in enumerate(payloads):
            groups[color].append((key, members[local], local))
        results: list[Any] = [None] * len(members)
        for color in sorted(groups):
            ordered = sorted(groups[color])
            new_members = tuple(g for _, g, _ in ordered)
            cid = self._next_comm_id
            self._next_comm_id += 1
            self._comms[cid] = new_members
            for new_local, (_, _g, old_local) in enumerate(ordered):
                results[old_local] = Comm(comm_id=cid, rank=new_local,
                                          members=new_members)
        return results


def run_spmd(fn: Callable[..., Iterator[Op]], *,
             machine: Machine | None = None,
             nranks: int | None = None,
             nodes: int | None = None,
             args: tuple = (),
             kwargs: dict | None = None,
             rank_kwargs: list[dict] | None = None) -> SpmdResult:
    """Convenience entry point: run ``fn`` as an SPMD program.

    Provide either an explicit ``machine``, a ``nodes`` count (JUWELS
    Booster placement, 4 ranks/node), or a bare ``nranks`` (packed onto
    Booster nodes).
    """
    if machine is None:
        if nodes is not None:
            machine = Machine.booster(nodes)
        elif nranks is not None:
            machine = Machine.on(juwels_booster(), nranks)
        else:
            raise ValueError("need machine=, nodes= or nranks=")
    if nranks is not None and machine.nranks != nranks:
        raise ValueError(f"machine has {machine.nranks} ranks, expected {nranks}")
    return Engine(machine).run(fn, args=args, kwargs=kwargs,
                               rank_kwargs=rank_kwargs)
