"""Deterministic virtual-MPI execution engine (step and event cores).

Rank programs (generators yielding :mod:`~repro.vmpi.ops` descriptors)
are co-scheduled in-process.  Real payloads are actually moved and
reduced -- so distributed algorithms can be validated -- while every
operation advances a per-rank *virtual clock* using the machine model,
so the same program produces large-machine timing from a laptop.

Two interchangeable cores execute the same semantics:

* ``mode="step"`` -- the original polling scheduler: a FIFO ready
  deque drives each rank until it blocks; every op re-derives its
  network/compute cost from the machine model.
* ``mode="event"`` (default) -- the discrete-event core in
  :mod:`repro.vmpi.events`: unblocked ranks are resumed from one
  global event heap in virtual-time order, per-path and per-kernel
  costs are cached, and fused :class:`~repro.vmpi.ops.Exchange` rounds
  are advanced with closed-form alpha-beta algebra over vectorized
  NumPy rank arrays instead of per-edge request machinery.

Select a core with ``VmpiEngine(machine, mode=...)``, the
``REPRO_VMPI_MODE`` environment variable, or the ``--vmpi-mode`` CLI
flag.  The two cores are *observationally equivalent*: the
differential suite in ``tests/test_vmpi_differential.py`` asserts
byte-identical results, clocks, traces and Chrome exports for every
program in the repository.  That works because all value- and
float-producing paths are shared (:mod:`repro.vmpi.collectives`, the
network closed forms, the matching rules below) and only *host-side
scheduling* differs, which virtual time never observes.

Semantics (documented divergences from real MPI):

* Point-to-point uses rendezvous timing: a transfer starts when both
  sides have posted and costs ``alpha + n/beta`` from the network model.
  Nonblocking ops (``Isend``/``Irecv`` + ``Wait``) therefore model
  compute/communication overlap exactly the way the applications exploit
  it (Arbor hides its spike exchange behind integration, Sec. IV-A2a).
* Sends at or below ``eager_limit`` follow MPI's eager protocol: they
  complete locally after the injection overhead, independent of the
  receiver.
* Matching is schedule-independent: per-``(comm, src, dst, tag)`` FIFO
  queues for p2p, per-rank sequence counters for collectives, and
  per-``(comm, tag)`` round counters for fused exchanges (an
  :class:`~repro.vmpi.ops.Exchange` matches only other exchanges of
  the same round, like MPI neighborhood collectives).
* Collectives are synchronising: completion is ``max(post times) +
  model cost``; all ranks leave with the same clock.
* A rank may yield a *tuple* of ops (a batch): the ops run in order
  and the rank resumes once with the list of their results.  Timing
  programs hoist constant batches out of their stepping loops, which
  both removes per-step op construction and lets the event core replay
  cached exchange plans.
* Scheduling is deterministic in both cores, so runs are exactly
  reproducible -- a suite requirement (replicability, Sec. II-A).
"""

from __future__ import annotations

import inspect
import os
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..cluster.hardware import juwels_booster
from .collectives import (
    CollectiveMismatchError,
    DeadlockError,
    RankFailedError,
    VmpiError,
    collective_arg_bytes,
    collective_cost,
    collective_results,
    partial_mismatch,
    validate_collective,
)
from .comm import Comm
from .machine import Machine
from .ops import (
    Collective,
    Compute,
    Elapse,
    Exchange,
    Irecv,
    Isend,
    Op,
    Recv,
    Request,
    Send,
    Sendrecv,
    Wait,
    Waitall,
    nbytes_of,
)
from .trace import RankTrace, SpmdResult

__all__ = [
    "CollectiveMismatchError",
    "DeadlockError",
    "Engine",
    "MODES",
    "RankFailedError",
    "StepEngine",
    "VmpiEngine",
    "VmpiError",
    "default_mode",
    "run_spmd",
]

#: engine cores selectable via ``VmpiEngine(mode=...)``
MODES = ("event", "step")


def default_mode() -> str:
    """The core used when no ``mode`` is given.

    ``event`` unless overridden by the ``REPRO_VMPI_MODE`` environment
    variable.
    """
    mode = os.environ.get("REPRO_VMPI_MODE", "event")
    if mode not in MODES:
        raise ValueError(
            f"REPRO_VMPI_MODE={mode!r} is not one of {'/'.join(MODES)}")
    return mode


@dataclass
class _WaitGroup:
    """A rank blocked until a set of requests completes."""

    rank: int
    requests: tuple[Request, ...]
    blocked_at: float
    single: bool  # resume with one result instead of a list
    sendrecv: bool = False  # resume with the received payload only
    exchange: Exchange | None = None  # decomposed fused exchange


def _describe_request(req: Request) -> str:
    what = "send to" if req.is_send else "recv from"
    return f"{what} rank {req.peer} (comm {req.comm_id}, tag {req.tag})"


def _exchange_bytes(op: Exchange) -> float:
    """Total send bytes of an exchange (left fold, cached on the op)."""
    total = op.__dict__.get("_nbytes_total")
    if total is None:
        total = 0.0
        for _, payload in op.sends:
            total = total + nbytes_of(payload)
        object.__setattr__(op, "_nbytes_total", total)
    return total


class VmpiEngine:
    """Runs one SPMD program over a :class:`~repro.vmpi.machine.Machine`.

    ``VmpiEngine(machine, mode="step"|"event")`` dispatches to the
    matching core (:class:`StepEngine` here, ``EventEngine`` in
    :mod:`repro.vmpi.events`); with ``mode=None`` the
    :func:`default_mode` applies.  This base class holds every piece of
    machinery the cores share -- program spawning, op dispatch, p2p
    matching, wait groups, collectives, communicator splits, deadlock
    reporting -- so the cores differ only in scheduling and caching.

    ``eager_limit`` mirrors MPI's eager protocol: sends at or below this
    size complete locally without waiting for the matching receive
    (buffered), while larger messages rendezvous.  Without this, common
    patterns that are legal in practice (small out-of-order tagged sends,
    self-messages) would deadlock.
    """

    EAGER_LIMIT = 64 * 1024  # bytes
    #: core identity; stamped on the :class:`SpmdResult`
    mode = "step"

    def __new__(cls, machine: Machine = None, mode: str | None = None,
                eager_limit: int | None = None) -> "VmpiEngine":
        if cls is not VmpiEngine:
            return super().__new__(cls)
        resolved = default_mode() if mode is None else mode
        if resolved == "step":
            return super().__new__(StepEngine)
        if resolved == "event":
            from .events import EventEngine
            return super().__new__(EventEngine)
        raise ValueError(
            f"unknown vmpi mode {resolved!r}; pick one of {'/'.join(MODES)}")

    def __init__(self, machine: Machine, mode: str | None = None,
                 eager_limit: int | None = None):
        if mode is not None and mode != self.mode:
            raise ValueError(
                f"{type(self).__name__} implements mode {self.mode!r}, "
                f"not {mode!r}")
        self.machine = machine
        self.eager_limit = self.EAGER_LIMIT if eager_limit is None else eager_limit
        n = machine.nranks
        self.clocks = [0.0] * n
        self.traces = [RankTrace() for _ in range(n)]
        self._gens: list[Iterator[Op]] = []
        self._resume: list[Any] = [None] * n
        self._finished = [False] * n
        self._values: list[Any] = [None] * n
        self._blocked: dict[int, Any] = {}       # rank -> blocked marker
        self._sends: dict[tuple, deque[Request]] = defaultdict(deque)
        self._recvs: dict[tuple, deque[Request]] = defaultdict(deque)
        self._wait_groups: dict[Request, _WaitGroup] = {}
        self._comms: dict[int, tuple[int, ...]] = {0: tuple(range(n))}
        self._next_comm_id = 1
        self._coll_seq: dict[tuple[int, int], int] = defaultdict(int)
        self._coll_pending: dict[tuple[int, int], dict[int, tuple[Collective, float]]] = {}
        self._xseq: dict[tuple[int, int, int], int] = defaultdict(int)
        self._batch: dict[int, list] = {}  # rank -> [ops, idx, results, waiting]
        self._rid = 0

    # -- public --------------------------------------------------------------

    def run(self, fn: Callable[..., Iterator[Op]], *,
            args: tuple = (), kwargs: dict | None = None,
            rank_kwargs: list[dict] | None = None,
            tracer: Any = None) -> SpmdResult:
        """Execute ``fn(comm, *args, **kwargs)`` on every rank.

        ``rank_kwargs`` optionally supplies per-rank keyword overrides;
        ``tracer`` (a :class:`~repro.telemetry.Tracer`) wraps the run in
        a ``vmpi.run`` span carrying the core mode.  Returns the
        per-rank return values, final clocks and traces.
        """
        if tracer is not None and getattr(tracer, "enabled", False):
            with tracer.span("vmpi.run", mode=self.mode,
                             nranks=self.machine.nranks):
                return self._run(fn, args, kwargs, rank_kwargs)
        return self._run(fn, args, kwargs, rank_kwargs)

    def _run(self, fn: Callable[..., Iterator[Op]], args: tuple,
             kwargs: dict | None,
             rank_kwargs: list[dict] | None) -> SpmdResult:
        n = self.machine.nranks
        kwargs = kwargs or {}
        for r in range(n):
            kw = dict(kwargs)
            if rank_kwargs is not None:
                kw.update(rank_kwargs[r])
            comm = Comm(comm_id=0, rank=r, members=self._comms[0])
            gen = fn(comm, *args, **kw)
            if not inspect.isgenerator(gen):
                raise TypeError(
                    f"rank program {fn.__name__!r} must be a generator function")
            self._gens.append(gen)
        for r in range(n):
            self._wake(r)
        self._loop()
        while not all(self._finished) and self._quiesce():
            self._loop()
        if not all(self._finished):
            self._raise_stuck()
        return SpmdResult(values=self._values, clocks=self.clocks,
                          traces=self.traces, mode=self.mode)

    # -- scheduling hooks (overridden by the cores) ---------------------------

    def _wake(self, r: int) -> None:
        """Make rank ``r`` runnable (it unblocked at ``self.clocks[r]``)."""
        raise NotImplementedError

    def _loop(self) -> None:
        """Drain runnable ranks until nothing can proceed."""
        raise NotImplementedError

    def _quiesce(self) -> bool:
        """Last-resort progress hook before declaring deadlock.

        Cores with buffered state (the event core's pending exchange
        rounds) flush it here; True means the loop should run again.
        """
        return False

    # -- cost hooks (cached by the event core) --------------------------------

    def _p2p_seconds(self, src: int, dst: int, nbytes: float) -> float:
        return self.machine.p2p_seconds(src, dst, nbytes)

    def _compute_seconds(self, r: int, flops: float, bytes_moved: float,
                         efficiency: float) -> float:
        return self.machine.compute_seconds(r, flops, bytes_moved, efficiency)

    def _local_of(self, comm_id: int, r: int) -> int:
        members = self._comms[comm_id]
        try:
            return members.index(r)
        except ValueError:
            raise VmpiError(
                f"rank {r} is not a member of comm {comm_id}") from None

    def _register_comm(self, cid: int, members: tuple[int, ...]) -> None:
        """Notify the core of a freshly split communicator."""

    # -- rank stepping ----------------------------------------------------------

    def _step_rank(self, r: int) -> None:
        """Drive rank ``r`` until it blocks or returns."""
        if self._finished[r]:
            return
        batch = self._batch.get(r)
        if batch is not None and not self._advance_batch(r, batch):
            return
        gen = self._gens[r]
        while True:
            value, self._resume[r] = self._resume[r], None
            try:
                op = gen.send(value)
            except StopIteration as stop:
                self._finished[r] = True
                self._values[r] = stop.value
                return
            except VmpiError:
                raise
            except BaseException as exc:
                raise RankFailedError(r, exc) from exc
            if type(op) is tuple:
                batch = [op, 0, [None] * len(op), False]
                self._batch[r] = batch
                if not self._advance_batch(r, batch):
                    return
            elif not self._dispatch(r, op):
                return  # blocked; resumes later via _wake

    def _advance_batch(self, r: int, batch: list) -> bool:
        """Drive a tuple batch; True once every element completed."""
        ops, results = batch[0], batch[2]
        if batch[3]:  # a blocked element just resumed
            results[batch[1] - 1] = self._resume[r]
            self._resume[r] = None
            batch[3] = False
        while batch[1] < len(ops):
            i = batch[1]
            batch[1] = i + 1
            op = ops[i]
            if type(op) is tuple:
                raise VmpiError(f"rank {r} yielded a nested op batch")
            if self._dispatch(r, op):
                results[i] = self._resume[r]
                self._resume[r] = None
            else:
                batch[3] = True
                return False
        del self._batch[r]
        self._resume[r] = results
        return True

    def _dispatch(self, r: int, op: Op) -> bool:
        """Process one op; True if the rank may continue immediately."""
        self.traces[r].ops += 1
        kind = type(op)
        if kind is Compute:
            dt = self._compute_seconds(r, op.flops, op.bytes_moved,
                                       op.efficiency)
            self.clocks[r] += dt
            self.traces[r].compute[op.label] += dt
            return True
        if kind is Elapse:
            self.clocks[r] += op.seconds
            self.traces[r].compute[op.label] += op.seconds
            return True
        if kind is Isend:
            self._resume[r] = self._post_send(r, op.dest, op.payload, op.tag,
                                              op.comm_id)
            return True
        if kind is Irecv:
            self._resume[r] = self._post_recv(r, op.source, op.tag, op.comm_id)
            return True
        if kind is Send:
            req = self._post_send(r, op.dest, op.payload, op.tag, op.comm_id)
            return self._wait_on(r, (req,), single=True)
        if kind is Recv:
            req = self._post_recv(r, op.source, op.tag, op.comm_id)
            return self._wait_on(r, (req,), single=True)
        if kind is Sendrecv:
            sreq = self._post_send(r, op.dest, op.payload, op.tag, op.comm_id)
            rreq = self._post_recv(r, op.source, op.tag, op.comm_id)
            return self._wait_on(r, (sreq, rreq), single=False, sendrecv=True)
        if kind is Wait:
            return self._wait_on(r, (op.request,), single=True)
        if kind is Waitall:
            return self._wait_on(r, op.requests, single=False)
        if kind is Collective:
            return self._post_collective(r, op)
        if kind is Exchange:
            return self._post_exchange(r, op)
        raise VmpiError(f"rank {r} yielded a non-op: {op!r}")

    # -- point-to-point --------------------------------------------------------

    def _global(self, comm_id: int, local: int) -> int:
        members = self._comms.get(comm_id)
        if members is None:
            raise VmpiError(f"unknown communicator id {comm_id}")
        return members[local]

    def _post_send(self, r: int, dest_local: int, payload: Any, tag: int,
                   comm_id: int) -> Request:
        dest = self._global(comm_id, dest_local)
        self._rid += 1
        nbytes = nbytes_of(payload)
        req = Request(rank=r, is_send=True, peer=dest, tag=tag,
                      comm_id=comm_id, post_time=self.clocks[r],
                      payload=payload, rid=self._rid, nbytes=nbytes)
        # Bytes are accounted at post time (program order), so both
        # cores accumulate per-rank counters in the same float order.
        self.traces[r].bytes_sent += nbytes
        if nbytes <= self.eager_limit:
            # Eager protocol: the send buffers locally and completes after
            # the injection overhead, independent of the receiver.
            req.done = True
            req.complete_time = req.post_time + \
                self._p2p_seconds(r, dest, nbytes)
        key = (comm_id, r, dest, tag)
        match_q = self._recvs.get(key)
        if match_q:
            self._complete_transfer(req, match_q.popleft())
        else:
            self._sends[key].append(req)
        return req

    def _post_recv(self, r: int, source_local: int, tag: int,
                   comm_id: int) -> Request:
        source = self._global(comm_id, source_local)
        self._rid += 1
        req = Request(rank=r, is_send=False, peer=source, tag=tag,
                      comm_id=comm_id, post_time=self.clocks[r], rid=self._rid)
        key = (comm_id, source, r, tag)
        match_q = self._sends.get(key)
        if match_q:
            self._complete_transfer(match_q.popleft(), req)
        else:
            self._recvs[key].append(req)
        return req

    def _complete_transfer(self, send: Request, recv: Request) -> None:
        dt = self._p2p_seconds(send.rank, recv.rank, send.nbytes)
        done = max(send.post_time, recv.post_time) + dt
        if not send.done:  # eager sends already completed locally
            send.done = True
            send.complete_time = done
        recv.done = True
        recv.complete_time = done
        recv.result = send.payload
        for req in (send, recv):
            group = self._wait_groups.get(req)
            if group is not None:
                self._check_group(group)

    # -- waiting ------------------------------------------------------------------

    def _wait_on(self, r: int, requests: tuple[Request, ...], *,
                 single: bool, sendrecv: bool = False,
                 exchange: Exchange | None = None) -> bool:
        for req in requests:
            if req.rank != r:
                raise VmpiError(
                    f"rank {r} waiting on request posted by rank {req.rank}")
        group = _WaitGroup(rank=r, requests=requests,
                           blocked_at=self.clocks[r],
                           single=single and not sendrecv,
                           sendrecv=sendrecv, exchange=exchange)
        if all(req.done for req in requests):
            self._finish_group(group)
            return True
        for req in requests:
            if not req.done:
                self._wait_groups[req] = group
        self._blocked[r] = group
        return False

    def _check_group(self, group: _WaitGroup) -> None:
        if all(req.done for req in group.requests):
            for req in group.requests:
                self._wait_groups.pop(req, None)
            self._finish_group(group)
            self._blocked.pop(group.rank, None)
            self._wake(group.rank)

    def _finish_group(self, group: _WaitGroup) -> None:
        r = group.rank
        reqs = group.requests
        done = max((req.complete_time for req in reqs), default=self.clocks[r])
        waited = max(0.0, done - self.clocks[r])
        self.clocks[r] = max(self.clocks[r], done)
        if group.exchange is not None:
            self.traces[r].comm[group.exchange.label] += waited
            nsends = len(group.exchange.sends)
            self._resume[r] = [req.result for req in reqs[nsends:]]
            return
        self.traces[r].comm["p2p"] += waited
        if group.sendrecv:
            recv = next(req for req in reqs if not req.is_send)
            self._resume[r] = recv.result
        elif group.single:
            req = reqs[0]
            self._resume[r] = req.result if not req.is_send else None
        else:
            self._resume[r] = [req.result if not req.is_send else None
                               for req in reqs]

    # -- fused exchanges -------------------------------------------------------

    def _post_exchange(self, r: int, op: Exchange) -> bool:
        """Step core: decompose into round-matched per-edge transfers."""
        ekey = (op.comm_id, op.tag)
        rnd = self._xseq[ekey + (r,)]
        self._xseq[ekey + (r,)] = rnd + 1
        self.traces[r].bytes_sent += _exchange_bytes(op)
        return self._decompose_exchange(r, op, ekey + (rnd,))

    def _decompose_exchange(self, r: int, op: Exchange,
                            ekey: tuple[int, int, int]) -> bool:
        """Post an exchange's edges through the per-edge FIFO machinery.

        Edges live in a ``("x", comm, tag, round, src, dst)`` key space:
        the k-th send of a round on a directed pair matches the k-th
        receive of the *same* round -- exchanges never match plain p2p
        and never match across rounds.
        """
        reqs = []
        for dest_local, payload in op.sends:
            reqs.append(self._post_edge(r, True, dest_local, payload, ekey))
        for src_local in op.recvs:
            reqs.append(self._post_edge(r, False, src_local, None, ekey))
        return self._wait_on(r, tuple(reqs), single=False, exchange=op)

    def _post_edge(self, r: int, is_send: bool, peer_local: int,
                   payload: Any, ekey: tuple[int, int, int]) -> Request:
        cid, tag = ekey[0], ekey[1]
        peer = self._global(cid, peer_local)
        self._rid += 1
        if is_send:
            nbytes = nbytes_of(payload)
            req = Request(rank=r, is_send=True, peer=peer, tag=tag,
                          comm_id=cid, post_time=self.clocks[r],
                          payload=payload, rid=self._rid, nbytes=nbytes)
            if nbytes <= self.eager_limit:
                req.done = True
                req.complete_time = req.post_time + \
                    self._p2p_seconds(r, peer, nbytes)
            key = ("x",) + ekey + (r, peer)
            match_q = self._recvs.get(key)
            if match_q:
                self._complete_transfer(req, match_q.popleft())
            else:
                self._sends[key].append(req)
        else:
            req = Request(rank=r, is_send=False, peer=peer, tag=tag,
                          comm_id=cid, post_time=self.clocks[r],
                          rid=self._rid)
            key = ("x",) + ekey + (peer, r)
            match_q = self._sends.get(key)
            if match_q:
                self._complete_transfer(match_q.popleft(), req)
            else:
                self._recvs[key].append(req)
        return req

    # -- collectives ---------------------------------------------------------------

    def _post_collective(self, r: int, op: Collective) -> bool:
        members = self._comms.get(op.comm_id)
        if members is None:
            raise VmpiError(f"unknown communicator id {op.comm_id}")
        local = self._local_of(op.comm_id, r)
        seq = self._coll_seq[(op.comm_id, r)]
        self._coll_seq[(op.comm_id, r)] = seq + 1
        key = (op.comm_id, seq)
        pending = self._coll_pending.setdefault(key, {})
        pending[local] = (op, self.clocks[r])
        if len(pending) < len(members):
            self._blocked[r] = (op, key)
            return False
        del self._coll_pending[key]
        self._finish_collective(members, pending, caller=r)
        return True

    def _finish_collective(self, members: tuple[int, ...],
                           pending: dict[int, tuple[Collective, float]],
                           caller: int) -> None:
        ops = [pending[i][0] for i in range(len(members))]
        posts = [pending[i][1] for i in range(len(members))]
        validate_collective(ops)
        results = collective_results(members, ops, self._do_split)
        cost = self._collective_cost(members, ops)
        done = max(posts) + cost
        first = ops[0]
        label = first.label or first.kind
        clocks, traces = self.clocks, self.traces
        for i, g in enumerate(members):
            waited = max(0.0, done - clocks[g])
            clocks[g] = done
            trace = traces[g]
            trace.comm[label] += waited
            trace.bytes_sent += nbytes_of(ops[i].payload)
            self._resume[g] = results[i]
            if g != caller:
                self._blocked.pop(g, None)
                self._wake(g)

    def _collective_cost(self, members: tuple[int, ...],
                         ops: list[Collective]) -> float:
        arg = collective_arg_bytes(ops)
        node_set = self.machine.node_set(members)
        return collective_cost(self.machine.network, node_set, len(members),
                               ops[0].kind, arg)

    def _do_split(self, members: tuple[int, ...],
                  payloads: list[Any]) -> list[Any]:
        groups: dict[int, list[tuple[int, int, int]]] = defaultdict(list)
        for local, (color, key) in enumerate(payloads):
            groups[color].append((key, members[local], local))
        results: list[Any] = [None] * len(members)
        for color in sorted(groups):
            ordered = sorted(groups[color])
            new_members = tuple(g for _, g, _ in ordered)
            cid = self._next_comm_id
            self._next_comm_id += 1
            self._comms[cid] = new_members
            self._register_comm(cid, new_members)
            for new_local, (_, _g, old_local) in enumerate(ordered):
                results[old_local] = Comm(comm_id=cid, rank=new_local,
                                          members=new_members)
        return results

    # -- failure reporting -----------------------------------------------------

    def _blocked_detail(self, r: int) -> str:
        marker = self._blocked.get(r)
        if marker is None:
            return "unknown"
        if isinstance(marker, _WaitGroup):
            pending = [_describe_request(q) for q in marker.requests
                       if not q.done]
            if marker.exchange is not None:
                return (f"exchange on comm {marker.exchange.comm_id} -- "
                        f"{len(pending)} transfer(s) pending: "
                        + ", ".join(pending))
            return (f"waiting on {len(marker.requests)} request(s); "
                    f"pending: " + ", ".join(pending))
        op, key = marker
        arrived = len(self._coll_pending.get(key, {}))
        members = self._comms.get(op.comm_id, ())
        return (f"collective {op.kind!r} on comm {op.comm_id} "
                f"({arrived}/{len(members)} ranks arrived)")

    def _raise_stuck(self) -> None:
        """Report why the run cannot make progress.

        A partially-posted collective whose arrivals already disagree is
        a :class:`CollectiveMismatchError`; anything else is a
        :class:`DeadlockError` listing every blocked rank's pending op.
        """
        for key in sorted(self._coll_pending):
            posted = [(local, op) for local, (op, _)
                      in self._coll_pending[key].items()]
            msg = partial_mismatch(posted)
            if msg:
                raise CollectiveMismatchError(msg)
        stuck = {r: self._blocked_detail(r)
                 for r in range(self.machine.nranks) if not self._finished[r]}
        detail = "; ".join(f"rank {r}: {d}" for r, d in stuck.items())
        raise DeadlockError(f"deadlock -- blocked ranks: {detail}")


class StepEngine(VmpiEngine):
    """The original polling core: a FIFO ready deque drives each rank
    until it blocks; every op re-derives its cost from the machine
    model.  Kept as the differential baseline for the event core."""

    mode = "step"

    def __init__(self, machine: Machine, mode: str | None = None,
                 eager_limit: int | None = None):
        super().__init__(machine, mode=mode, eager_limit=eager_limit)
        self._ready: deque[int] = deque()

    def _wake(self, r: int) -> None:
        self._ready.append(r)

    def _loop(self) -> None:
        ready = self._ready
        while ready:
            self._step_rank(ready.popleft())


#: Back-compat alias: the seed engine class was simply ``Engine``.
Engine = VmpiEngine


def run_spmd(fn: Callable[..., Iterator[Op]], *,
             machine: Machine | None = None,
             nranks: int | None = None,
             nodes: int | None = None,
             args: tuple = (),
             kwargs: dict | None = None,
             rank_kwargs: list[dict] | None = None,
             mode: str | None = None,
             tracer: Any = None) -> SpmdResult:
    """Convenience entry point: run ``fn`` as an SPMD program.

    Provide either an explicit ``machine``, a ``nodes`` count (JUWELS
    Booster placement, 4 ranks/node), or a bare ``nranks`` (packed onto
    Booster nodes).  ``mode`` selects the engine core (see
    :func:`default_mode`).
    """
    if machine is None:
        if nodes is not None:
            machine = Machine.booster(nodes)
        elif nranks is not None:
            machine = Machine.on(juwels_booster(), nranks)
        else:
            raise ValueError("need machine=, nodes= or nranks=")
    if nranks is not None and machine.nranks != nranks:
        raise ValueError(f"machine has {machine.nranks} ranks, expected {nranks}")
    return VmpiEngine(machine, mode=mode).run(fn, args=args, kwargs=kwargs,
                                              rank_kwargs=rank_kwargs,
                                              tracer=tracer)
