"""Communicator facade for SPMD rank programs.

A rank program is a generator function ``def main(comm: Comm, ...)`` that
yields operation descriptors and is resumed with their results::

    def main(comm):
        local = np.arange(4) * comm.rank
        total = yield comm.allreduce(local)        # real data is reduced
        yield comm.compute(flops=1e9)              # virtual time advances
        if comm.rank == 0:
            yield comm.send(1, total)
        elif comm.rank == 1:
            total = yield comm.recv(0)
        return float(total.sum())

The methods here only *construct* ops (mirroring mpi4py's API surface);
the engine in :mod:`repro.vmpi.engine` interprets them.  Helper
*generators* that themselves communicate (e.g. ring shifts) must be
delegated to with ``yield from``.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..units import register_dims
from .ops import (
    Collective,
    Compute,
    Elapse,
    Exchange,
    Irecv,
    Isend,
    Phantom,
    Recv,
    Request,
    Send,
    Sendrecv,
    Wait,
    Waitall,
)

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules;
#: every rank program that charges compute/elapse time goes through
#: these two signatures, so they police all application cost models
DIMS = register_dims(__name__, {
    "compute.flops": "FLOP",
    "compute.bytes_moved": "B",
    "compute.efficiency": "1",
    "elapse.seconds": "s",
})


class Comm:
    """A communicator: a set of global ranks with local numbering.

    Instances are created by the engine (``COMM_WORLD``) or by
    :meth:`split`; rank code never constructs one directly.
    """

    def __init__(self, comm_id: int, rank: int, members: tuple[int, ...]):
        self.comm_id = comm_id
        #: local rank within this communicator
        self.rank = rank
        #: global engine ranks of the members, indexed by local rank
        self.members = members

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self.members)

    def __repr__(self) -> str:
        return f"Comm(id={self.comm_id}, rank={self.rank}/{self.size})"

    # Structural identity: two communicators are the same if they give
    # this rank the same local number over the same global members.  The
    # raw ``comm_id`` is engine-internal (its allocation order depends on
    # scheduling), so it must not participate in equality.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Comm):
            return NotImplemented
        return self.rank == other.rank and self.members == other.members

    def __hash__(self) -> int:
        return hash((self.rank, self.members))

    # -- local work ---------------------------------------------------------

    def compute(self, flops: float = 0.0, bytes_moved: float = 0.0,
                efficiency: float = 0.25, label: str = "compute") -> Compute:
        """Charge roofline compute time on this rank's device."""
        return Compute(flops=flops, bytes_moved=bytes_moved,
                       efficiency=efficiency, label=label)

    def elapse(self, seconds: float, label: str = "elapse") -> Elapse:
        """Charge a fixed wall-clock duration (I/O, setup, ...)."""
        return Elapse(seconds=seconds, label=label)

    # -- point-to-point -------------------------------------------------------

    def send(self, dest: int, payload: Any, tag: int = 0) -> Send:
        """Blocking send to local rank ``dest``."""
        self._check_peer(dest)
        return Send(dest=dest, payload=payload, tag=tag, comm_id=self.comm_id)

    def recv(self, source: int, tag: int = 0) -> Recv:
        """Blocking receive from local rank ``source``."""
        self._check_peer(source)
        return Recv(source=source, tag=tag, comm_id=self.comm_id)

    def isend(self, dest: int, payload: Any, tag: int = 0) -> Isend:
        """Non-blocking send; yield it to obtain a :class:`Request`."""
        self._check_peer(dest)
        return Isend(dest=dest, payload=payload, tag=tag, comm_id=self.comm_id)

    def irecv(self, source: int, tag: int = 0) -> Irecv:
        """Non-blocking receive; yield it to obtain a :class:`Request`."""
        self._check_peer(source)
        return Irecv(source=source, tag=tag, comm_id=self.comm_id)

    def wait(self, request: Request) -> Wait:
        """Block until a request completes; receives resume with data."""
        return Wait(request=request)

    def waitall(self, requests: Iterable[Request]) -> Waitall:
        """Block until all requests complete; resumes with result list."""
        return Waitall(requests=tuple(requests))

    def sendrecv(self, dest: int, payload: Any, source: int,
                 tag: int = 0) -> Sendrecv:
        """Simultaneous send-to-``dest`` / receive-from-``source``."""
        self._check_peer(dest)
        self._check_peer(source)
        return Sendrecv(dest=dest, payload=payload, source=source, tag=tag,
                        comm_id=self.comm_id)

    def exchange(self, sends: Iterable[tuple[int, Any]],
                 recvs: Iterable[int], tag: int = 0,
                 label: str = "p2p") -> Exchange:
        """Fused neighborhood exchange (see :class:`~repro.vmpi.ops.Exchange`).

        ``sends`` yields ``(dest, payload)`` pairs, ``recvs`` the source
        ranks; the op resumes with the received payloads in ``recvs``
        order.  Equivalent to posting the isends/irecvs and a waitall,
        but as one descriptor -- halo loops hoist it out of the stepping
        loop so the engine can replay a cached exchange plan.
        """
        out = tuple((int(d), p) for d, p in sends)
        srcs = tuple(int(s) for s in recvs)
        for d, _ in out:
            self._check_peer(d)
        for s in srcs:
            self._check_peer(s)
        return Exchange(sends=out, recvs=srcs, tag=tag,
                        comm_id=self.comm_id, label=label)

    # -- collectives -----------------------------------------------------------

    def allreduce(self, payload: Any, op: str = "sum",
                  label: str = "allreduce") -> Collective:
        """Element-wise reduction, result on every rank."""
        return Collective(kind="allreduce", payload=payload, reduce_op=op,
                          comm_id=self.comm_id, label=label)

    def allgather(self, payload: Any, label: str = "allgather") -> Collective:
        """Gather each rank's payload; every rank gets the full list."""
        return Collective(kind="allgather", payload=payload,
                          comm_id=self.comm_id, label=label)

    def alltoall(self, payloads: Iterable[Any] | Phantom,
                 label: str = "alltoall") -> Collective:
        """Personalised exchange: ``payloads[j]`` goes to local rank ``j``;
        resumes with the list received from every rank.

        Passing a single :class:`Phantom` instead of a sequence means
        "that many bytes to each peer" -- the uniform form that keeps
        large-scale timing programs O(P) instead of building size-P
        tuples per call.
        """
        if isinstance(payloads, Phantom):
            return Collective(kind="alltoall", payload=payloads,
                              comm_id=self.comm_id, label=label)
        items = tuple(payloads)
        if len(items) != self.size:
            raise ValueError(
                f"alltoall needs exactly {self.size} payloads, got {len(items)}")
        return Collective(kind="alltoall", payload=items, comm_id=self.comm_id,
                          label=label)

    def bcast(self, payload: Any, root: int = 0, label: str = "bcast") -> Collective:
        """Broadcast the root's payload; non-roots pass anything (ignored)."""
        self._check_peer(root)
        return Collective(kind="bcast", payload=payload, root=root,
                          comm_id=self.comm_id, label=label)

    def reduce(self, payload: Any, op: str = "sum", root: int = 0,
               label: str = "reduce") -> Collective:
        """Reduction to ``root``; other ranks resume with ``None``."""
        self._check_peer(root)
        return Collective(kind="reduce", payload=payload, reduce_op=op,
                          root=root, comm_id=self.comm_id, label=label)

    def gather(self, payload: Any, root: int = 0, label: str = "gather") -> Collective:
        """Gather to ``root`` (list of payloads); others get ``None``."""
        self._check_peer(root)
        return Collective(kind="gather", payload=payload, root=root,
                          comm_id=self.comm_id, label=label)

    def scatter(self, payloads: Iterable[Any] | None, root: int = 0,
                label: str = "scatter") -> Collective:
        """Scatter the root's list; every rank resumes with its item."""
        self._check_peer(root)
        items = None if payloads is None else tuple(payloads)
        if items is not None and len(items) != self.size:
            raise ValueError(
                f"scatter needs exactly {self.size} payloads, got {len(items)}")
        return Collective(kind="scatter", payload=items, root=root,
                          comm_id=self.comm_id, label=label)

    def barrier(self, label: str = "barrier") -> Collective:
        """Synchronise all ranks of the communicator."""
        return Collective(kind="barrier", comm_id=self.comm_id, label=label)

    def split(self, color: int, key: int | None = None) -> Collective:
        """Partition the communicator by ``color``; resumes with the new
        :class:`Comm` (ranks ordered by ``key``, default current rank)."""
        k = self.rank if key is None else key
        return Collective(kind="split", payload=(int(color), int(k)),
                          comm_id=self.comm_id, label="split")

    # -- internals ----------------------------------------------------------------

    def _check_peer(self, local_rank: int) -> None:
        if not 0 <= local_rank < self.size:
            raise ValueError(
                f"rank {local_rank} outside communicator of size {self.size}")
