"""A deterministic time-ordered event queue (binary heap).

The one scheduling structure behind both discrete-event simulators in
the suite: the event vmpi core (:mod:`repro.vmpi.events`) resumes
ranks from it in virtual-time order, and the batch scheduler
(:mod:`repro.cluster.scheduler`) pops job completions from it.

Entries pop in increasing ``(time, tiebreak)`` order.  When no explicit
tiebreak is given, a monotone sequence number is assigned, so equal
times pop in insertion order (FIFO within a timestamp) -- the property
that makes heap-driven runs exactly reproducible.  Callers that need a
semantic tiebreak (the scheduler orders equal completions by job id)
pass their own.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator


class EventHeap:
    """Min-heap of ``(time, tiebreak, item)`` events.

    The payload ``item`` is never compared: unique tiebreaks (the
    auto-sequence, or caller-supplied unique keys) fully order entries.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, Any, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[tuple[float, Any, Any]]:
        """Unordered iteration over the raw entries (inspection only)."""
        return iter(self._heap)

    def push(self, time: float, item: Any, tiebreak: Any = None) -> None:
        """Add an event; with no ``tiebreak``, insertion order breaks ties."""
        if tiebreak is None:
            tiebreak = self._seq
            self._seq += 1
        heapq.heappush(self._heap, (time, tiebreak, item))

    def pop(self) -> Any:
        """Remove and return the earliest event's item."""
        return heapq.heappop(self._heap)[2]

    def pop_entry(self) -> tuple[float, Any, Any]:
        """Remove and return the earliest ``(time, tiebreak, item)``."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        """Earliest event time (heap must be non-empty)."""
        return self._heap[0][0]

    def remove_if(self, pred: Callable[[Any], bool]) -> int:
        """Drop every event whose item matches; returns the count removed."""
        kept = [e for e in self._heap if not pred(e[2])]
        removed = len(self._heap) - len(kept)
        if removed:
            self._heap = kept
            heapq.heapify(self._heap)
        return removed
