"""The discrete-event virtual-MPI core.

This core executes the exact semantics of
:class:`~repro.vmpi.engine.VmpiEngine` (see that module's docstring for
the shared matching and timing rules) but schedules and prices them the
way a discrete-event simulator does:

* **event heap** -- unblocked ranks are resumed from one global
  :class:`~repro.vmpi.heap.EventHeap` keyed by their virtual clock, so
  execution sweeps virtual time in causal order instead of polling a
  FIFO of ranks;
* **cost caches** -- point-to-point alpha-beta parameters are cached
  per node pair, roofline compute times per ``(device, kernel)`` (and,
  on homogeneous jobs, pinned on the op object itself, so hoisted
  constant kernels replay their time without any dict-key packing), and
  collective costs per ``(comm, kind, bytes)``, so the machine model is
  consulted once per distinct question instead of once per op;
* **vectorized exchange rounds** -- fused
  :class:`~repro.vmpi.ops.Exchange` ops are buffered per
  ``(comm, tag, round)`` and, once every member has posted, the whole
  round's clock advance is computed with closed-form alpha-beta algebra
  over NumPy arrays (one ``max``/``where`` sweep over all edges) rather
  than per-edge request machinery.  Hoisted constant exchanges reuse a
  cached per-round *plan* (edge arrays, transfer times, result lists).

Heap invariants (the discrete-event contract):

1. every heap entry is an unblocked rank keyed by the virtual time at
   which it became runnable; a rank is in the heap at most once;
2. entries pop in nondecreasing ``(time, seq)`` order, ``seq`` being
   the monotone insertion counter, so equal-time wakes resume in the
   deterministic order they were caused;
3. state mutation (matching, clock algebra, payload movement) happens
   eagerly at post/match time -- the heap only orders *resumption*, so
   every float the run produces is independent of host scheduling and
   byte-identical to the step core's.

Exchange rounds that can never fill (only a subset of the communicator
exchanges) are drained by the quiescence hook: when the heap runs dry,
pending rounds are decomposed through the generic per-edge machinery,
which completes every matched transfer before deadlock is declared --
so partial participation behaves exactly as in the step core.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass
from heapq import heappop
from operator import is_

import numpy as np

from .engine import VmpiEngine, _exchange_bytes
from .collectives import VmpiError, collective_arg_bytes, collective_cost
from .heap import EventHeap
from .machine import Machine
from .ops import Collective, Compute, Exchange, nbytes_of

__all__ = ["EventEngine", "EventHeap"]

#: engine-unique attribute names for op-pinned compute times; a fresh
#: name per engine (never reused) means an op hoisted across engines or
#: machines can never serve a time priced for a different device
_CACHE_KEYS = itertools.count()


@dataclass
class _XchgPlan:
    """Precomputed completion algebra of one exchange round.

    Valid as long as every member posts the *same op objects* (hoisted
    constants); ``op_ids`` pins them.  Edge arrays are indexed by
    position in the communicator's member tuple.
    """

    op_ids: tuple[Exchange, ...]
    nedges: int
    src_idx: np.ndarray     # member index of each edge's sender
    dst_idx: np.ndarray     # member index of each edge's receiver
    t: np.ndarray           # per-edge transfer seconds (alpha + n/beta)
    eager: np.ndarray       # per-edge bool: send completes locally
    labels: tuple[str, ...]  # per-member comm-trace label
    results: tuple[list, ...]  # per-member received payloads, recvs order
    contig: bool            # members are exactly ranks 0..n-1


class EventEngine(VmpiEngine):
    """Discrete-event core (``mode="event"``); see the module docstring."""

    mode = "event"

    def __init__(self, machine: Machine, mode: str | None = None,
                 eager_limit: int | None = None):
        super().__init__(machine, mode=mode, eager_limit=eager_limit)
        self._heap = EventHeap()
        self._node = machine.nodes_of_rank
        self._devkey = [id(d) for d in machine.devices]
        #: homogeneous jobs may pin compute times on the op itself
        self._homog = len(set(self._devkey)) == 1
        self._ck = f"_evdt{next(_CACHE_KEYS)}"
        self._p2p_cache: dict[tuple[int, int], tuple[float, float]] = {}
        self._compute_cache: dict[tuple, float] = {}
        self._cost_cache: dict[tuple, float] = {}
        self._locals: dict[int, dict[int, int]] = {
            0: {g: g for g in self._comms[0]}}
        self._node_sets: dict[int, tuple[int, ...]] = {}
        #: (comm, tag) -> [next round per rank, {round: {rank: op}},
        #: members] -- the buffered-round state of the vectorized path
        self._xst: dict[tuple[int, int], list] = {}
        #: (comm, tag) -> cached round plan
        self._xplans: dict[tuple[int, int], _XchgPlan] = {}

    # -- scheduling -----------------------------------------------------------

    def _wake(self, r: int) -> None:
        self._heap.push(self.clocks[r], r)

    def _loop(self) -> None:
        # Pops straight off the EventHeap's underlying list: this loop
        # runs once per rank resumption, so the method hop matters.
        heap = self._heap._heap
        step = self._step_rank
        while heap:
            step(heappop(heap)[2])

    def _quiesce(self) -> bool:
        """Decompose stalled exchange rounds through the generic path.

        Runs when the heap is dry but ranks are unfinished: every
        buffered round -- fillable or not -- is lowered onto per-edge
        FIFO matching, completing whatever has a counterpart.  Progress
        may post fresh exchanges, so the run loop calls this until it
        returns False.
        """
        stalled = []
        for (cid, tag), st in self._xst.items():
            for rnd, pend in st[1].items():
                stalled.append(((cid, tag, rnd), pend))
            st[1] = {}
        if not stalled:
            return False
        stalled.sort(key=lambda e: e[0])
        for key, pend in stalled:
            for r in sorted(pend):
                if self._decompose_exchange(r, pend[r], key):
                    self._wake(r)
        return True

    # -- cached cost queries ---------------------------------------------------

    def _p2p_seconds(self, src: int, dst: int, nbytes: float) -> float:
        nodes = self._node
        key = (nodes[src], nodes[dst])
        params = self._p2p_cache.get(key)
        if params is None:
            params = self.machine.network.p2p_params(
                key[0], key[1], self.machine.job_nodes)
            self._p2p_cache[key] = params
        if key[0] == key[1] and nbytes == 0:
            return 0.0
        return params[0] + nbytes / params[1]

    def _compute_seconds(self, r: int, flops: float, bytes_moved: float,
                         efficiency: float) -> float:
        key = (self._devkey[r], flops, bytes_moved, efficiency)
        dt = self._compute_cache.get(key)
        if dt is None:
            dt = self.machine.compute_seconds(r, flops, bytes_moved,
                                              efficiency)
            self._compute_cache[key] = dt
        return dt

    def _local_of(self, comm_id: int, r: int) -> int:
        lm = self._locals.get(comm_id)
        if lm is None:
            lm = {g: i for i, g in enumerate(self._comms[comm_id])}
            self._locals[comm_id] = lm
        try:
            return lm[r]
        except KeyError:
            raise VmpiError(
                f"rank {r} is not a member of comm {comm_id}") from None

    def _register_comm(self, cid: int, members: tuple[int, ...]) -> None:
        self._locals[cid] = {g: i for i, g in enumerate(members)}

    def _collective_cost(self, members: tuple[int, ...],
                         ops: list[Collective]) -> float:
        first = ops[0]
        arg = collective_arg_bytes(ops)
        key = (first.comm_id, first.kind, arg)
        cost = self._cost_cache.get(key)
        if cost is None:
            node_set = self._node_sets.get(first.comm_id)
            if node_set is None:
                node_set = self.machine.node_set(members)
                self._node_sets[first.comm_id] = node_set
            cost = collective_cost(self.machine.network, node_set,
                                   len(members), first.kind, arg)
            self._cost_cache[key] = cost
        return cost

    # -- hot-path dispatch -----------------------------------------------------
    # These overrides change no semantics: they produce the identical
    # floats through per-op caches (first use goes through the shared
    # machinery, later uses replay the stored value bit for bit).

    def _compute_inline(self, r: int, op: Compute) -> None:
        """Advance a rank through one Compute, op-pinned time first."""
        dt = op.__dict__.get(self._ck)
        if dt is None:
            dt = self._compute_seconds(r, op.flops, op.bytes_moved,
                                       op.efficiency)
            if self._homog:
                object.__setattr__(op, self._ck, dt)
        trace = self.traces[r]
        trace.ops += 1
        self.clocks[r] += dt
        trace.compute[op.label] += dt

    def _dispatch(self, r: int, op) -> bool:
        kind = type(op)
        if kind is Compute:
            self._compute_inline(r, op)
            return True
        if kind is Exchange:
            self.traces[r].ops += 1
            return self._post_exchange(r, op)
        return super()._dispatch(r, op)

    def _advance_batch(self, r: int, batch: list) -> bool:
        ops, results = batch[0], batch[2]
        resume = self._resume
        if batch[3]:  # a blocked element just resumed
            results[batch[1] - 1] = resume[r]
            resume[r] = None
            batch[3] = False
        n = len(ops)
        i = batch[1]
        ck = self._ck
        clocks = self.clocks
        trace = self.traces[r]
        compute = trace.compute
        while i < n:
            op = ops[i]
            i += 1
            kind = type(op)
            if kind is Compute:
                # Inlined _compute_inline: completed Computes leave no
                # resume value, so the pre-filled None already stands.
                dt = op.__dict__.get(ck)
                if dt is None:
                    dt = self._compute_seconds(r, op.flops, op.bytes_moved,
                                               op.efficiency)
                    if self._homog:
                        object.__setattr__(op, ck, dt)
                trace.ops += 1
                clocks[r] += dt
                compute[op.label] += dt
                continue
            batch[1] = i
            if kind is Exchange:
                trace.ops += 1
                if self._post_exchange(r, op):
                    results[i - 1] = resume[r]
                    resume[r] = None
                    continue
                batch[3] = True
                return False
            if kind is tuple:
                raise VmpiError(f"rank {r} yielded a nested op batch")
            if self._dispatch(r, op):
                results[i - 1] = resume[r]
                resume[r] = None
                continue
            batch[3] = True
            return False
        del self._batch[r]
        resume[r] = results
        return True

    # -- vectorized exchange rounds --------------------------------------------

    def _post_exchange(self, r: int, op: Exchange) -> bool:
        sk = (op.comm_id, op.tag)
        st = self._xst.get(sk)
        if st is None:
            members = self._comms.get(op.comm_id)
            if members is None:
                raise VmpiError(f"unknown communicator id {op.comm_id}")
            st = self._xst[sk] = [defaultdict(int), {}, members, len(members)]
        seq, rounds, members, nmem = st
        rnd = seq[r]
        seq[r] = rnd + 1
        nb = op.__dict__.get("_nbytes_total")
        if nb is None:
            nb = _exchange_bytes(op)
        self.traces[r].bytes_sent += nb
        try:
            pend = rounds[rnd]
        except KeyError:
            pend = rounds[rnd] = {}
        pend[r] = op
        if len(pend) == nmem:
            del rounds[rnd]
            return self._finish_round(members, sk + (rnd,), pend, caller=r)
        # No per-rank blocked marker: buffered ranks are found through
        # ``_xst`` (and drained by ``_quiesce`` before any deadlock).
        return False

    def _finish_round(self, members: tuple[int, ...],
                      key: tuple[int, int, int],
                      pend: dict[int, Exchange], caller: int) -> bool:
        """Complete a fully-posted round; True if the caller finished."""
        plan = self._round_plan(key, members, pend)
        if plan is None:
            # Structurally inconsistent round (unpaired edges): lower it
            # onto the generic machinery, which completes what matches.
            caller_done = False
            for r in sorted(pend):
                if self._decompose_exchange(r, pend[r], key):
                    if r == caller:
                        caller_done = True
                    else:
                        self._wake(r)
            return caller_done
        clocks = self.clocks
        nmem = len(members)
        if plan.contig:
            posts = np.array(clocks[:nmem], dtype=np.float64)
        else:
            posts = np.fromiter((clocks[g] for g in members),
                                dtype=np.float64, count=nmem)
        if plan.nedges:
            sposts = posts[plan.src_idx]
            recv_done = np.maximum(sposts, posts[plan.dst_idx]) + plan.t
            send_done = np.where(plan.eager, sposts + plan.t, recv_done)
            done = posts.copy()
            np.maximum.at(done, plan.src_idx, send_done)
            np.maximum.at(done, plan.dst_idx, recv_done)
            done_list = done.tolist()
            waited_list = np.maximum(done - posts, 0.0).tolist()
        else:
            done_list = posts.tolist()
            waited_list = [0.0] * nmem
        traces = self.traces
        resume = self._resume
        batches = self._batch
        labels = plan.labels
        results = plan.results
        push = self._heap.push
        for i, g in enumerate(members):
            d = done_list[i]
            clocks[g] = d
            traces[g].comm[labels[i]] += waited_list[i]
            if g != caller:
                # If the member blocked on this exchange as the last op
                # of a batch, complete the batch here: on wake the rank
                # resumes straight into its generator.
                b = batches.get(g)
                if b is not None and b[3] and b[1] == len(b[0]):
                    b[2][b[1] - 1] = list(results[i])
                    del batches[g]
                    resume[g] = b[2]
                else:
                    resume[g] = list(results[i])
                push(d, g)
            else:
                resume[g] = list(results[i])
        return True

    def _round_plan(self, key: tuple[int, int, int],
                    members: tuple[int, ...],
                    pend: dict[int, Exchange]) -> _XchgPlan | None:
        pkey = key[:2]
        cached = self._xplans.get(pkey)
        if cached is not None and \
                all(map(is_, map(pend.__getitem__, members), cached.op_ids)):
            return cached
        plan = self._build_plan(members, pend)
        if plan is not None:
            self._xplans[pkey] = plan
        else:
            self._xplans.pop(pkey, None)
        return plan

    def _build_plan(self, members: tuple[int, ...],
                    pend: dict[int, Exchange]) -> _XchgPlan | None:
        """Pair every edge of a round; None if the structure is unpaired.

        Pairing replicates per-edge FIFO order: the k-th send of a round
        on a directed pair matches the k-th receive, both in op order.
        """
        sends_at: dict[tuple[int, int], list] = defaultdict(list)
        recv_slots: dict[tuple[int, int], list] = defaultdict(list)
        results = tuple([None] * len(pend[g].recvs) for g in members)
        for i, g in enumerate(members):
            op = pend[g]
            for dest_local, payload in op.sends:
                sends_at[(g, members[dest_local])].append((i, payload))
            for slot, src_local in enumerate(op.recvs):
                recv_slots[(members[src_local], g)].append((i, slot))
        if len(sends_at) != len(recv_slots):
            return None
        src_idx: list[int] = []
        dst_idx: list[int] = []
        times: list[float] = []
        eager: list[bool] = []
        for edge, sends in sends_at.items():
            recvs = recv_slots.get(edge)
            if recvs is None or len(recvs) != len(sends):
                return None
            s_g, d_g = edge
            for (si, payload), (ri, slot) in zip(sends, recvs):
                n = nbytes_of(payload)
                src_idx.append(si)
                dst_idx.append(ri)
                times.append(self._p2p_seconds(s_g, d_g, n))
                eager.append(n <= self.eager_limit)
                results[ri][slot] = payload
        return _XchgPlan(
            op_ids=tuple(pend[g] for g in members),
            nedges=len(times),
            src_idx=np.array(src_idx, dtype=np.intp),
            dst_idx=np.array(dst_idx, dtype=np.intp),
            t=np.array(times, dtype=np.float64),
            eager=np.array(eager, dtype=bool),
            labels=tuple(pend[g].label for g in members),
            results=results,
            contig=members[0] == 0 and members[-1] == len(members) - 1,
        )

    # -- failure reporting -----------------------------------------------------

    def _blocked_detail(self, r: int) -> str:
        if self._blocked.get(r) is None:
            # Buffered exchange rounds carry no per-rank marker; find
            # the rank in the round state instead.
            for (cid, _tag), st in sorted(self._xst.items()):
                for _rnd, pend in sorted(st[1].items()):
                    if r in pend:
                        return (f"exchange on comm {cid} "
                                f"({len(pend)}/{len(st[2])} ranks arrived)")
        return super()._blocked_detail(r)
