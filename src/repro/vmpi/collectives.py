"""Shared collective algebra of the virtual-MPI engine cores.

Both engine cores (the step scheduler and the discrete-event core in
:mod:`repro.vmpi.events`) must agree *byte for byte* on what a
collective returns and costs -- the differential test harness asserts
it.  The only robust way to guarantee that is to compute both from one
set of pure functions, so the cores can differ in scheduling machinery
while sharing every data- and float-producing path.

The cost side maps each collective kind onto one closed-form
alpha-beta-congestion formula of
:class:`~repro.cluster.network.NetworkModel` with a single byte
argument; :func:`collective_arg_bytes` reduces the posted payloads to
that argument so the event core can cache costs on
``(comm, kind, arg_bytes)`` without re-deriving them.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..units import register_dims
from .ops import Collective, Phantom, nbytes_of

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules;
#: the byte argument reduced here feeds the network closed forms, so
#: annotating it keeps the cost path provably B -> s end to end
DIMS = register_dims(__name__, {
    "collective_arg_bytes.return": "B",
    "collective_cost.arg_bytes": "B",
    "collective_cost.return": "s",
})


class VmpiError(RuntimeError):
    """Base class for engine errors."""


class DeadlockError(VmpiError):
    """All unfinished ranks are blocked and nothing can complete."""


class CollectiveMismatchError(VmpiError):
    """Ranks of one communicator posted different collectives."""


class RankFailedError(VmpiError):
    """A rank program raised; carries the originating rank."""

    def __init__(self, rank: int, original: BaseException):
        super().__init__(
            f"rank {rank} failed: {type(original).__name__}: {original}")
        self.rank = rank
        self.original = original


def reduce_payloads(payloads: list[Any], op: str) -> Any:
    """Element-wise reduction across rank payloads (phantom-aware)."""
    if any(isinstance(p, Phantom) for p in payloads):
        return Phantom(max(nbytes_of(p) for p in payloads))
    funcs = {"sum": np.add, "max": np.maximum, "min": np.minimum,
             "prod": np.multiply}
    if op not in funcs:
        raise VmpiError(f"unknown reduction op {op!r}")
    fn = funcs[op]
    acc = np.array(payloads[0]) if isinstance(payloads[0], np.ndarray) \
        else payloads[0]
    for p in payloads[1:]:
        acc = fn(acc, p)
    return acc


def validate_collective(ops: list[Collective]) -> None:
    """Check that all members posted the same collective.

    Compared in local-rank order against local rank 0, so the reported
    pair is deterministic and identical across engine cores.
    """
    first = ops[0]
    for o in ops[1:]:
        if (o.kind, o.reduce_op, o.root) != (first.kind, first.reduce_op,
                                             first.root):
            raise CollectiveMismatchError(
                f"comm members posted {first.kind!r} vs {o.kind!r}")


def partial_mismatch(posted: list[tuple[int, Collective]]) -> str | None:
    """Mismatch description among a *partially* posted collective.

    ``posted`` maps local ranks to their ops (any subset of the
    communicator).  Returns a message when the posted subset already
    disagrees -- the engine raises it at deadlock time instead of a
    plain :class:`DeadlockError`, so "half the comm called barrier, the
    other half allreduce, and a third rank never showed up" is reported
    as the collective bug it is.  Deterministic: compared in local-rank
    order.
    """
    ordered = sorted(posted)
    first = ordered[0][1]
    for local, o in ordered[1:]:
        if (o.kind, o.reduce_op, o.root) != (first.kind, first.reduce_op,
                                             first.root):
            return (f"comm members posted {first.kind!r} "
                    f"(local rank {ordered[0][0]}) vs {o.kind!r} "
                    f"(local rank {local}) -- partial post, "
                    f"{len(posted)} rank(s) arrived")
    return None


def _uniform_alltoall(payloads: list[Any]) -> bool:
    """True for the uniform (single-Phantom) alltoall form."""
    if not any(isinstance(p, Phantom) for p in payloads):
        return False
    if not all(isinstance(p, Phantom) for p in payloads):
        raise VmpiError(
            "alltoall payloads must be uniformly Phantom or size-P tuples "
            "on every rank")
    return True


def collective_arg_bytes(ops: list[Collective]) -> float:
    """The single byte argument of a collective's cost formula.

    Reduces the per-member payload sizes exactly the way the engine
    always has: the biggest posted size for the symmetric collectives,
    the root's size for bcast, per-rank share for scatter, per-pair
    volume for alltoall.
    """
    kind = ops[0].kind
    if kind in ("barrier", "split"):
        return 0.0
    sizes = [nbytes_of(o.payload) for o in ops]
    biggest = max(sizes) if sizes else 0.0
    p = len(ops)
    if kind == "alltoall":
        if _uniform_alltoall([o.payload for o in ops]):
            return biggest  # already a per-pair size
        return biggest / p if p else 0.0
    if kind == "bcast":
        return sizes[ops[0].root]
    if kind == "scatter":
        return biggest / max(p, 1)
    # allreduce, allgather, reduce, gather
    return biggest


def collective_cost(network: Any, node_set: tuple[int, ...], nranks: int,
                    kind: str, arg_bytes: float) -> float:
    """Closed-form cost of one collective over a placed communicator."""
    if kind == "allreduce":
        return network.allreduce_time(node_set, nranks, arg_bytes)
    if kind == "allgather":
        return network.allgather_time(node_set, nranks, arg_bytes)
    if kind == "alltoall":
        return network.alltoall_time(node_set, nranks, arg_bytes)
    if kind == "bcast":
        return network.bcast_time(node_set, nranks, arg_bytes)
    if kind == "reduce":
        return network.bcast_time(node_set, nranks, arg_bytes)
    if kind in ("gather", "scatter"):
        return network.allgather_time(node_set, nranks, arg_bytes)
    if kind in ("barrier", "split"):
        return network.barrier_time(node_set, nranks)
    raise VmpiError(f"no cost model for collective {kind!r}")


def collective_results(members: tuple[int, ...], ops: list[Collective],
                       split_alloc: Callable[[tuple[int, ...], list[Any]],
                                             list[Any]]) -> list[Any]:
    """Per-local-rank resume values of one completed collective.

    ``split_alloc`` performs the engine-side communicator allocation for
    ``split`` (it needs the comm-id counter); everything else is pure.
    """
    kind = ops[0].kind
    p = len(members)
    payloads = [o.payload for o in ops]
    if kind == "barrier":
        return [None] * p
    if kind == "allreduce":
        red = reduce_payloads(payloads, ops[0].reduce_op)
        return [red] * p
    if kind == "reduce":
        red = reduce_payloads(payloads, ops[0].reduce_op)
        return [red if i == ops[0].root else None for i in range(p)]
    if kind == "allgather":
        return [list(payloads)] * p
    if kind == "gather":
        return [list(payloads) if i == ops[0].root else None
                for i in range(p)]
    if kind == "bcast":
        return [payloads[ops[0].root]] * p
    if kind == "scatter":
        items = payloads[ops[0].root]
        if items is None or len(items) != p:
            raise VmpiError("scatter root must supply one payload per rank")
        return list(items)
    if kind == "alltoall":
        if _uniform_alltoall(payloads):
            # every receiver gets [what rank 0 sends each peer, ...]:
            # the transpose of a uniform matrix is one shared row
            return [payloads] * p
        for pl in payloads:
            if not isinstance(pl, tuple) or len(pl) != p:
                raise VmpiError("alltoall payloads must be size-P tuples")
        return [[payloads[i][j] for i in range(p)] for j in range(p)]
    if kind == "split":
        return split_alloc(members, payloads)
    raise VmpiError(f"no result rule for collective {kind!r}")
