"""Virtual MPI: deterministic in-process SPMD execution with virtual time.

The substrate that lets the suite's distributed applications run on a
laptop: rank programs are generators, payloads are really moved (small
scale, for verification) or size-only phantoms (large scale, for
timing), and every operation advances a virtual clock from the machine
model in :mod:`repro.cluster`.
"""

from .comm import Comm
from .decomposition import (
    CartGrid,
    block_partition,
    dims_create,
    ghost_faces,
    halo_exchange,
    phantom_faces,
)
from .engine import (
    MODES,
    CollectiveMismatchError,
    DeadlockError,
    Engine,
    RankFailedError,
    StepEngine,
    VmpiEngine,
    VmpiError,
    default_mode,
    run_spmd,
)
from .heap import EventHeap
from .machine import Machine
from .ops import (
    Collective,
    Compute,
    Elapse,
    Exchange,
    Irecv,
    Isend,
    Op,
    Phantom,
    Recv,
    Request,
    Send,
    Sendrecv,
    Wait,
    Waitall,
    nbytes_of,
)
from .trace import RankTrace, SpmdResult

__all__ = [
    "CartGrid",
    "Collective",
    "CollectiveMismatchError",
    "Comm",
    "Compute",
    "DeadlockError",
    "Elapse",
    "Engine",
    "EventHeap",
    "Exchange",
    "Irecv",
    "Isend",
    "MODES",
    "Machine",
    "Op",
    "Phantom",
    "RankFailedError",
    "RankTrace",
    "Recv",
    "Request",
    "Send",
    "Sendrecv",
    "SpmdResult",
    "StepEngine",
    "VmpiEngine",
    "VmpiError",
    "Wait",
    "Waitall",
    "block_partition",
    "default_mode",
    "dims_create",
    "ghost_faces",
    "halo_exchange",
    "nbytes_of",
    "phantom_faces",
    "run_spmd",
]
