"""Virtual MPI: deterministic in-process SPMD execution with virtual time.

The substrate that lets the suite's distributed applications run on a
laptop: rank programs are generators, payloads are really moved (small
scale, for verification) or size-only phantoms (large scale, for
timing), and every operation advances a virtual clock from the machine
model in :mod:`repro.cluster`.
"""

from .comm import Comm
from .decomposition import (
    CartGrid,
    block_partition,
    dims_create,
    ghost_faces,
    halo_exchange,
    phantom_faces,
)
from .engine import (
    CollectiveMismatchError,
    DeadlockError,
    Engine,
    RankFailedError,
    VmpiError,
    run_spmd,
)
from .machine import Machine
from .ops import (
    Collective,
    Compute,
    Elapse,
    Irecv,
    Isend,
    Op,
    Phantom,
    Recv,
    Request,
    Send,
    Sendrecv,
    Wait,
    Waitall,
    nbytes_of,
)
from .trace import RankTrace, SpmdResult

__all__ = [
    "CartGrid",
    "Collective",
    "CollectiveMismatchError",
    "Comm",
    "Compute",
    "DeadlockError",
    "Elapse",
    "Engine",
    "Irecv",
    "Isend",
    "Machine",
    "Op",
    "Phantom",
    "RankFailedError",
    "RankTrace",
    "Recv",
    "Request",
    "Send",
    "Sendrecv",
    "SpmdResult",
    "VmpiError",
    "Wait",
    "Waitall",
    "block_partition",
    "dims_create",
    "ghost_faces",
    "halo_exchange",
    "nbytes_of",
    "phantom_faces",
    "run_spmd",
]
