"""Domain decomposition helpers (Cartesian grids, halo exchange).

The paper repeatedly stresses that decomposition quality drives
performance at scale (Sec. V-A: "estimates, rules, or scripts for ideal
domain decomposition were devised, e.g., for Chroma-QCD, PIConGPU,
NAStJA and DynQCD").  This module provides those rules as reusable code:

* :func:`dims_create` -- balanced factorisation of a rank count into a
  Cartesian grid (the MPI_Dims_create contract, plus an aspect-aware
  variant that minimises communication surface for a given domain),
* :class:`CartGrid` -- rank <-> coordinate maps and neighbour lookup,
* :func:`halo_exchange` -- non-blocking face exchange for NumPy blocks
  (used by NAStJA, PIConGPU, ParFlow, ICON and the lattice codes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Iterator

import numpy as np

from .comm import Comm
from .ops import Phantom


def block_partition(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous near-equal slices.

    The first ``n % parts`` slices get one extra element -- the standard
    balanced block distribution.
    """
    if parts < 1:
        raise ValueError("parts must be positive")
    base, extra = divmod(n, parts)
    out: list[tuple[int, int]] = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        out.append((start, start + size))
        start += size
    return out


@lru_cache(maxsize=4096)
def dims_create(nranks: int, ndims: int,
                extents: tuple[int, ...] | None = None) -> tuple[int, ...]:
    """Factor ``nranks`` into ``ndims`` grid dimensions.

    Without ``extents`` this matches MPI_Dims_create: factors as close to
    each other as possible, decreasing order.  With ``extents`` (the
    global domain shape) the factorisation minimising total halo surface
    is chosen instead -- the "decomposition study in code" the paper's
    applications needed.
    """
    if nranks < 1 or ndims < 1:
        raise ValueError("nranks and ndims must be positive")
    best: tuple[int, ...] | None = None
    best_score = float("inf")
    for dims in _factorizations(nranks, ndims):
        if extents is not None:
            if any(e % d != 0 and e < d for e, d in zip(extents, dims)):
                continue
            block = [e / d for e, d in zip(extents, dims)]
            vol = float(np.prod(block))
            surface = sum(2.0 * vol / b for b in block)
            score = surface
        else:
            score = max(dims) - min(dims) + max(dims) / nranks
        if score < best_score:
            best_score = score
            best = dims
    if best is None:
        # All candidates rejected (extents smaller than every factor split);
        # fall back to the balanced factorisation.
        return dims_create(nranks, ndims)
    return tuple(sorted(best, reverse=True))


def _factorizations(n: int, k: int) -> Iterator[tuple[int, ...]]:
    """All multisets of k positive integers whose product is n."""
    if k == 1:
        yield (n,)
        return
    for d in range(1, n + 1):
        if n % d == 0:
            for rest in _factorizations(n // d, k - 1):
                yield (d,) + rest


@dataclass(frozen=True)
class CartGrid:
    """A Cartesian process grid over a communicator.

    ``periodic`` marks wrap-around per dimension (lattice QCD and
    PIConGPU's KHI case are fully periodic; ParFlow's soil column
    is not).
    """

    dims: tuple[int, ...]
    periodic: tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.dims) != len(self.periodic):
            raise ValueError("dims and periodic must have equal length")
        if any(d < 1 for d in self.dims):
            raise ValueError("all dims must be positive")

    @classmethod
    def for_ranks(cls, nranks: int, ndims: int,
                  extents: tuple[int, ...] | None = None,
                  periodic: bool | tuple[bool, ...] = True) -> "CartGrid":
        """Build a grid for ``nranks`` using :func:`dims_create`."""
        dims = dims_create(nranks, ndims, extents)
        per = (periodic,) * ndims if isinstance(periodic, bool) else tuple(periodic)
        return cls(dims=dims, periodic=per)

    @property
    def size(self) -> int:
        """Total ranks in the grid."""
        return math.prod(self.dims)

    @property
    def ndims(self) -> int:
        return len(self.dims)

    @lru_cache(maxsize=262144)
    def coords(self, rank: int) -> tuple[int, ...]:
        """Grid coordinates of a rank (row-major, like MPI_Cart_coords)."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside grid of size {self.size}")
        out = []
        for d in reversed(self.dims):
            out.append(rank % d)
            rank //= d
        return tuple(reversed(out))

    def rank_of(self, coords: tuple[int, ...]) -> int:
        """Rank at the given coordinates (periodic wrap where allowed)."""
        rank = 0
        for c, d in zip(coords, self.dims):
            rank = rank * d + (c % d)
        return rank

    @lru_cache(maxsize=262144)
    def neighbor(self, rank: int, dim: int, direction: int) -> int | None:
        """Neighbouring rank one step along ``dim`` (+1/-1).

        ``None`` at a non-periodic boundary.
        """
        c = list(self.coords(rank))
        c[dim] += direction
        if not self.periodic[dim] and not 0 <= c[dim] < self.dims[dim]:
            return None
        return self.rank_of(tuple(c))

    def local_shape(self, global_shape: tuple[int, ...],
                    rank: int) -> tuple[int, ...]:
        """Shape of a rank's block under balanced block distribution."""
        out = []
        for g, d, c in zip(global_shape, self.dims, self.coords(rank)):
            lo, hi = block_partition(g, d)[c]
            out.append(hi - lo)
        return tuple(out)


def halo_exchange_op(comm: Comm, cart: CartGrid,
                     faces: dict[tuple[int, int], Any], tag: int = 100,
                     label: str = "p2p"):
    """The fused :class:`~repro.vmpi.ops.Exchange` of one halo sweep.

    Returns ``(op, keys)``: the exchange op and the ``(dim, direction)``
    key of each received payload, aligned with the op's result order.
    Both are constants of the decomposition, so stencil codes hoist them
    out of the time loop (persistent-request style) and yield the same
    op every step -- the event core then reuses one cached round plan
    for the whole run.

    Edge pairing relies on every member building its op through this
    function: sends are emitted in sorted face order, receives in
    mirrored ``(dim, -direction)`` order, so the k-th send a neighbour
    makes towards us is exactly our k-th receive from it -- including
    the doubled edges of periodic dimensions of extent 1 or 2.
    """
    sends = []
    for (dim, direction), payload in sorted(faces.items()):
        if direction not in (-1, 1):
            raise ValueError("face direction must be -1 or +1")
        dest = cart.neighbor(comm.rank, dim, direction)
        if dest is not None:
            sends.append((dest, payload))
    recvs = []
    keys = []
    for (dim, direction) in sorted(faces, key=lambda k: (k[0], -k[1])):
        src = cart.neighbor(comm.rank, dim, direction)
        if src is not None:
            # The neighbour in direction d sent its (-d) face towards us.
            recvs.append(src)
            keys.append((dim, direction))
    op = comm.exchange(tuple(sends), tuple(recvs), tag=tag, label=label)
    return op, tuple(keys)


def halo_exchange(comm: Comm, cart: CartGrid, faces: dict[tuple[int, int], Any],
                  tag_base: int = 100):
    """Exchange per-face payloads with Cartesian neighbours (generator).

    ``faces`` maps ``(dim, direction)`` -- direction in {-1, +1} -- to the
    payload shipped to the neighbour in that direction.  Returns received
    payloads keyed the same way: ``received[(dim, d)]`` is what the
    neighbour in direction ``d`` sent towards us, i.e. the ghost data for
    our ``d``-side boundary.  All faces travel in one fused
    :class:`~repro.vmpi.ops.Exchange`, exactly like the production
    stencil codes' neighbourhood collectives.  Use as
    ``recv = yield from halo_exchange(...)``.  Codes that exchange every
    step should hoist :func:`halo_exchange_op` instead.
    """
    op, keys = halo_exchange_op(comm, cart, faces, tag=tag_base)
    if not op.sends and not op.recvs:
        return {}
    results = yield op
    return dict(zip(keys, results))


def ghost_faces(field: np.ndarray, width: int = 1) -> dict[tuple[int, int], np.ndarray]:
    """Boundary slabs of ``field`` to ship in a halo exchange.

    For each dimension, the first/last ``width`` interior planes are
    copied out; pair with :func:`apply_ghosts` on the receiving side.
    """
    if width < 1:
        raise ValueError("halo width must be positive")
    out: dict[tuple[int, int], np.ndarray] = {}
    for dim in range(field.ndim):
        lo = [slice(None)] * field.ndim
        hi = [slice(None)] * field.ndim
        lo[dim] = slice(0, width)
        hi[dim] = slice(field.shape[dim] - width, field.shape[dim])
        out[(dim, -1)] = np.ascontiguousarray(field[tuple(lo)])
        out[(dim, +1)] = np.ascontiguousarray(field[tuple(hi)])
    return out


def phantom_faces(local_shape: tuple[int, ...], itemsize: int = 8,
                  width: int = 1) -> dict[tuple[int, int], Phantom]:
    """Size-only face payloads for model-only (large-scale) runs."""
    out: dict[tuple[int, int], Phantom] = {}
    for dim in range(len(local_shape)):
        area = width * itemsize
        for d, extent in enumerate(local_shape):
            if d != dim:
                area *= extent
        out[(dim, -1)] = Phantom(float(area))
        out[(dim, +1)] = Phantom(float(area))
    return out
