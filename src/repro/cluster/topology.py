"""DragonFly+ topology model of the JUWELS Booster / JUPITER interconnect.

JUWELS Booster organises 936 nodes into 48-node *cells* (2 BullSequana
racks each) connected in a DragonFly+ topology: full electrical
connectivity inside a cell (via leaf/spine switches) and all-to-all
optical global links between cells.  The timing model only needs to
classify a (src, dst) node pair into a *link class* and to bound the
bandwidth available across any bisection, so this module deliberately
stays at that level rather than simulating individual switches.

A fat-tree alternative is provided for the topology ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import networkx as nx

from ..units import register_dims
from .hardware import SystemSpec

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules;
#: the count-like spec fields are declared dimensionless so bandwidth
#: aggregates (NIC rate x NICs x nodes) stay provably B/s
DIMS = register_dims(__name__, {
    "bisection_bandwidth.return": "B/s",
    "NodeSpec.devices_per_node": "1",
    "NodeSpec.nics_per_node": "1",
    "SystemSpec.nodes_per_cell": "1",
    "SystemSpec.large_scale_threshold_nodes": "1",
})


class LinkClass(Enum):
    """Coarse classification of a communication path."""

    SELF = "self"              # same device (no transfer)
    INTRA_NODE = "intra-node"  # NVLink-class
    INTRA_CELL = "intra-cell"  # one switch hop, full bandwidth
    INTER_CELL = "inter-cell"  # global optical links, possibly tapered


@dataclass(frozen=True)
class Topology:
    """Base topology: classify node pairs, expose bisection capacity."""

    system: SystemSpec

    def cell_of(self, node: int) -> int:
        """Cell index of a node (0-based)."""
        self._check_node(node)
        return node // self.system.nodes_per_cell

    def classify(self, src_node: int, dst_node: int) -> LinkClass:
        """Link class for traffic between two nodes."""
        if src_node == dst_node:
            return LinkClass.INTRA_NODE
        if self.cell_of(src_node) == self.cell_of(dst_node):
            return LinkClass.INTRA_CELL
        return LinkClass.INTER_CELL

    def hops(self, src_node: int, dst_node: int) -> int:
        """Switch hops between two nodes (0 = same node)."""
        cls = self.classify(src_node, dst_node)
        if src_node == dst_node:
            return 0
        return {LinkClass.INTRA_CELL: 2, LinkClass.INTER_CELL: 4}[cls]

    def bisection_bandwidth(self, nnodes: int) -> float:
        """Aggregate bandwidth across the worst-case bisection of a job.

        For a job confined to a single cell the bisection is limited only by
        injection (all-to-all leaf/spine), i.e. ``nnodes/2`` nodes injecting
        at full NIC rate.  Spanning several cells, the global links dominate
        and are tapered by ``cell_uplink_taper``.
        """
        sysm = self.system
        if nnodes < 2:
            return float("inf")
        inject = sysm.node.nic_bandwidth * sysm.node.nics_per_node
        if nnodes <= sysm.nodes_per_cell:
            return inject * (nnodes / 2.0)
        cells = -(-nnodes // sysm.nodes_per_cell)
        cell_uplink = inject * sysm.nodes_per_cell * sysm.cell_uplink_taper
        # Worst-case bisection cuts the cells in half; the global links of
        # the smaller half bound the cross traffic.
        return cell_uplink * (cells // 2 if cells >= 2 else 1)

    def graph(self, nnodes: int | None = None) -> nx.Graph:
        """An explicit networkx graph (nodes + cell switches) for analysis."""
        sysm = self.system
        n = nnodes if nnodes is not None else sysm.nodes
        g = nx.Graph()
        inject = sysm.node.nic_bandwidth * sysm.node.nics_per_node
        cells = -(-n // sysm.nodes_per_cell)
        for c in range(cells):
            g.add_node(("cell", c), kind="switch")
        for node in range(n):
            g.add_node(("node", node), kind="node")
            g.add_edge(("node", node), ("cell", node // sysm.nodes_per_cell),
                       bandwidth=inject)
        uplink = inject * sysm.nodes_per_cell * sysm.cell_uplink_taper
        for a in range(cells):
            for b in range(a + 1, cells):
                g.add_edge(("cell", a), ("cell", b),
                           bandwidth=uplink / max(cells - 1, 1))
        return g

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.system.nodes:
            raise ValueError(f"node {node} outside system of {self.system.nodes} nodes")


@dataclass(frozen=True)
class DragonflyPlus(Topology):
    """The DragonFly+ topology used by JUWELS Booster and JUPITER."""


@dataclass(frozen=True)
class FatTree(Topology):
    """Non-blocking three-level fat tree (ablation alternative).

    No cell taper: any bisection sustains full injection bandwidth, and
    there is no large-scale congestion regime.  Used by the topology
    ablation bench to show how much of the JUQCS communication signature
    is attributable to DragonFly+ tapering.
    """

    def classify(self, src_node: int, dst_node: int) -> LinkClass:
        if src_node == dst_node:
            return LinkClass.INTRA_NODE
        # Treat every off-node pair as full-bandwidth "intra-cell" traffic.
        return LinkClass.INTRA_CELL

    def bisection_bandwidth(self, nnodes: int) -> float:
        if nnodes < 2:
            return float("inf")
        inject = self.system.node.nic_bandwidth * self.system.node.nics_per_node
        return inject * (nnodes / 2.0)
