"""Slurm-like batch scheduler for the simulated system.

JUBE resolves a benchmark's steps into batch jobs and submits them; the
paper's replicability story depends on that layer behaving predictably.
This module provides a deterministic event-driven scheduler over the
simulated machine: jobs request node counts and walltimes, are placed
FIFO with conservative backfill, and receive *contiguous, cell-aligned*
node ranges when possible (DragonFly+ placement quality affects the
network model, so the allocation actually matters downstream).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from .hardware import SystemSpec


class JobState(Enum):
    """Lifecycle of a batch job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class Job:
    """A batch job: resource request plus an optional payload callable.

    ``run`` receives the allocated node list and must return the job's
    result (stored on ``result``); raising marks the job FAILED.
    """

    name: str
    nodes: int
    walltime: float
    run: Callable[[list[int]], object] | None = None
    submit_time: float = 0.0
    job_id: int = -1
    state: JobState = JobState.PENDING
    start_time: float | None = None
    end_time: float | None = None
    allocated: list[int] = field(default_factory=list)
    result: object = None
    error: str | None = None

    @property
    def wait_time(self) -> float | None:
        """Queue wait, once started."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time


class Scheduler:
    """FIFO + conservative-backfill scheduler over a node pool.

    The virtual clock advances only through job submissions/completions,
    so results are exactly reproducible.  Placement prefers the lowest
    contiguous node range whose start is aligned to a cell boundary when
    the request spans one or more full cells.
    """

    def __init__(self, system: SystemSpec):
        self.system = system
        self.now = 0.0
        self._free = set(range(system.nodes))
        self._queue: list[Job] = []
        self._running: list[tuple[float, int, Job]] = []  # (end, id, job)
        self._ids = itertools.count(1)
        self.history: list[Job] = []

    # -- public API ----------------------------------------------------------

    def submit(self, job: Job) -> Job:
        """Submit a job at the current virtual time."""
        if job.nodes < 1:
            raise ValueError("job must request at least one node")
        if job.nodes > self.system.nodes:
            raise ValueError(
                f"job {job.name!r} requests {job.nodes} nodes, system has "
                f"{self.system.nodes}")
        job.job_id = next(self._ids)
        job.submit_time = self.now
        job.state = JobState.PENDING
        self._queue.append(job)
        self.history.append(job)
        self._schedule()
        return job

    def cancel(self, job: Job) -> None:
        """Cancel a pending job (running jobs run to completion)."""
        if job.state is JobState.PENDING:
            self._queue.remove(job)
            job.state = JobState.CANCELLED

    def step(self) -> bool:
        """Advance to the next job completion; False if nothing is running."""
        if not self._running:
            return False
        end, _, job = heapq.heappop(self._running)
        self.now = max(self.now, end)
        self._finish(job)
        self._schedule()
        return True

    def drain(self) -> None:
        """Run the simulation until queue and machine are empty."""
        while self.step():
            pass
        if self._queue:
            # _schedule is greedy, so a non-empty queue with an idle machine
            # means some request can never be satisfied.
            stuck = ", ".join(j.name for j in self._queue)
            raise RuntimeError(f"jobs can never be scheduled: {stuck}")

    @property
    def free_nodes(self) -> int:
        """Currently idle node count."""
        return len(self._free)

    @property
    def utilization(self) -> float:
        """Node-seconds used / available over the elapsed virtual time."""
        if self.now <= 0:
            return 0.0
        used = sum((j.end_time - j.start_time) * j.nodes
                   for j in self.history
                   if j.end_time is not None and j.start_time is not None)
        return used / (self.now * self.system.nodes)

    # -- internals ------------------------------------------------------------

    def _allocate(self, count: int) -> list[int] | None:
        """Lowest contiguous range, cell-aligned for cell-sized requests."""
        if count > len(self._free):
            return None
        free = sorted(self._free)
        npc = self.system.nodes_per_cell
        starts = [s for s in free] if count < npc else \
                 [s for s in free if s % npc == 0]
        free_set = self._free
        for start in starts:
            block = range(start, start + count)
            if block.stop <= self.system.nodes and all(n in free_set for n in block):
                return list(block)
        # Fall back to any (possibly scattered) nodes.
        return free[:count]

    def _schedule(self) -> None:
        """FIFO with conservative backfill: later jobs may start early only
        if they fit in the currently free nodes (they can never delay the
        queue head, because running jobs are not preempted)."""
        progressed = True
        while progressed:
            progressed = False
            for job in list(self._queue):
                alloc = self._allocate(job.nodes)
                if alloc is None:
                    continue  # head blocked -> try to backfill behind it
                self._start(job, alloc)
                progressed = True
                break

    def _start(self, job: Job, alloc: list[int]) -> None:
        self._queue.remove(job)
        self._free.difference_update(alloc)
        job.allocated = alloc
        job.state = JobState.RUNNING
        job.start_time = self.now
        duration = job.walltime
        if job.run is not None:
            try:
                job.result = job.run(alloc)
            except Exception as exc:  # payload decides job success
                job.error = f"{type(exc).__name__}: {exc}"
            # Payloads may return an object with a virtual duration.
            dur = getattr(job.result, "seconds", None)
            if isinstance(dur, (int, float)) and dur >= 0:
                duration = min(float(dur), job.walltime)
        job.end_time = self.now + duration
        heapq.heappush(self._running, (job.end_time, job.job_id, job))

    def _finish(self, job: Job) -> None:
        self._free.update(job.allocated)
        if job.error is not None:
            job.state = JobState.FAILED
        elif job.end_time is not None and job.run is not None and \
                getattr(job.result, "seconds", 0.0) and \
                float(getattr(job.result, "seconds")) > job.walltime:
            job.state = JobState.FAILED
            job.error = "walltime exceeded"
        else:
            job.state = JobState.COMPLETED
