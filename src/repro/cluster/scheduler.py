"""Slurm-like batch scheduler for the simulated system.

JUBE resolves a benchmark's steps into batch jobs and submits them; the
paper's replicability story depends on that layer behaving predictably.
This module provides a deterministic event-driven scheduler over the
simulated machine: jobs request node counts and walltimes, are placed
FIFO with conservative backfill, and receive *contiguous, cell-aligned*
node ranges when possible (DragonFly+ placement quality affects the
network model, so the allocation actually matters downstream).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from ..vmpi.heap import EventHeap
from .hardware import SystemSpec


class JobState(Enum):
    """Lifecycle of a batch job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class Job:
    """A batch job: resource request plus an optional payload callable.

    ``run`` receives the allocated node list and must return the job's
    result (stored on ``result``); raising marks the job FAILED.
    """

    name: str
    nodes: int
    walltime: float
    run: Callable[[list[int]], object] | None = None
    submit_time: float = 0.0
    job_id: int = -1
    state: JobState = JobState.PENDING
    start_time: float | None = None
    end_time: float | None = None
    allocated: list[int] = field(default_factory=list)
    result: object = None
    error: str | None = None
    #: times this job was kicked back to PENDING by a node crash
    requeues: int = 0
    #: straggler slowdown factor of the current/last allocation
    slowdown: float = 1.0

    @property
    def wait_time(self) -> float | None:
        """Queue wait, once started."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time


class Scheduler:
    """FIFO + conservative-backfill scheduler over a node pool.

    The virtual clock advances only through job submissions/completions
    (and, under fault injection, through plan fault events), so results
    are exactly reproducible.  Placement prefers the lowest contiguous
    node range whose start is aligned to a cell boundary when the
    request spans one or more full cells.

    ``faults`` (duck-typed: ``cluster_timeline()`` yielding sorted
    ``(time, action, node, factor)`` tuples, optional ``observe``
    telemetry callback -- a :class:`~repro.faults.FaultInjector`)
    injects node crashes (running jobs on dead nodes requeue, the node
    leaves the free pool), restores (the node rejoins) and straggler
    windows (allocations including a slowed node run ``factor``
    x slower).
    """

    def __init__(self, system: SystemSpec, faults: object = None):
        self.system = system
        self.now = 0.0
        self._free = set(range(system.nodes))
        self._queue: list[Job] = []
        #: completion events keyed (end_time, job_id) -- job_id is the
        #: semantic tiebreak, so equal-time completions finish in
        #: submission order
        self._running = EventHeap()
        self._ids = itertools.count(1)
        self.history: list[Job] = []
        self._faults = faults
        self._events: list[tuple[float, str, int, float]] = \
            list(faults.cluster_timeline()) if faults is not None else []
        self._event_pos = 0
        self._dead: set[int] = set()
        self._slow: dict[int, float] = {}
        #: node-seconds consumed by partial runs that never reached a
        #: completion (crash requeues) -- kept for utilization accounting
        self._consumed = 0.0

    # -- public API ----------------------------------------------------------

    def submit(self, job: Job) -> Job:
        """Submit a job at the current virtual time."""
        if job.nodes < 1:
            raise ValueError("job must request at least one node")
        if job.nodes > self.system.nodes:
            raise ValueError(
                f"job {job.name!r} requests {job.nodes} nodes, system has "
                f"{self.system.nodes}")
        job.job_id = next(self._ids)
        job.submit_time = self.now
        job.state = JobState.PENDING
        self._queue.append(job)
        self.history.append(job)
        self._schedule()
        return job

    def cancel(self, job: Job) -> None:
        """Cancel a pending or running job.

        A running job is stopped at the current virtual time: its nodes
        return to the free pool (the partial run still counts toward
        utilization via ``end_time = now``) and waiting jobs get a
        scheduling pass.
        """
        if job.state is JobState.PENDING:
            self._queue.remove(job)
            job.state = JobState.CANCELLED
        elif job.state is JobState.RUNNING:
            self._running.remove_if(lambda j: j is job)
            self._free.update(n for n in job.allocated
                              if n not in self._dead)
            job.state = JobState.CANCELLED
            job.end_time = self.now
            self._schedule()

    def step(self) -> bool:
        """Advance to the next event; False when nothing can happen.

        The next event is either a job completion or (under fault
        injection) the next plan fault, whichever comes first on the
        virtual clock; a tie goes to the completion.  Fault events are
        only consumed while there is work (queued or running) they
        could affect.
        """
        next_end = self._running.peek_time() if self._running else None
        fault = self._events[self._event_pos] \
            if self._event_pos < len(self._events) else None
        if fault is not None and (self._queue or self._running) and \
                (next_end is None or fault[0] < next_end):
            self._event_pos += 1
            self._apply_fault(*fault)
            self._schedule()
            return True
        if next_end is None:
            return False
        end, _, job = self._running.pop_entry()
        self.now = max(self.now, end)
        self._finish(job)
        self._schedule()
        return True

    def drain(self) -> None:
        """Run the simulation until queue and machine are empty."""
        while self.step():
            pass
        if self._queue:
            # _schedule is greedy, so a non-empty queue with an idle machine
            # means some request can never be satisfied.
            stuck = ", ".join(j.name for j in self._queue)
            raise RuntimeError(f"jobs can never be scheduled: {stuck}")

    @property
    def free_nodes(self) -> int:
        """Currently idle node count."""
        return len(self._free)

    @property
    def dead_nodes(self) -> int:
        """Nodes currently crashed out of the pool."""
        return len(self._dead)

    @property
    def utilization(self) -> float:
        """Node-seconds used / available over the elapsed virtual time.

        Partial runs cut short by a node crash still count as used
        node-seconds (they occupied the machine); the denominator keeps
        dead nodes as capacity -- a crash lowers achievable
        utilization, it does not redefine the machine.
        """
        if self.now <= 0:
            return 0.0
        used = self._consumed + \
            sum((j.end_time - j.start_time) * j.nodes
                for j in self.history
                if j.end_time is not None and j.start_time is not None)
        return used / (self.now * self.system.nodes)

    # -- fault injection ------------------------------------------------------

    def _apply_fault(self, at: float, action: str, node: int,
                     factor: float) -> None:
        """Apply one plan fault event at virtual time ``at``."""
        self.now = max(self.now, at)
        if action == "crash":
            self._crash_node(node)
        elif action == "restore":
            self._dead.discard(node)
            if 0 <= node < self.system.nodes:
                self._free.add(node)
        elif action == "slow":
            self._slow[node] = factor
        elif action == "unslow":
            self._slow.pop(node, None)
        else:
            raise ValueError(f"unknown fault action {action!r}")
        observe = getattr(self._faults, "observe", None)
        if observe is not None:
            observe(action, node, self.now)

    def _crash_node(self, node: int) -> None:
        """Take a node out of the pool; requeue jobs running on it."""
        self._dead.add(node)
        self._free.discard(node)
        victims = [job for _, _, job in self._running
                   if node in job.allocated]
        if victims:
            alive = {id(j) for j in victims}
            self._running.remove_if(lambda j: id(j) in alive)
            for job in sorted(victims, key=lambda j: j.job_id):
                self._requeue(job)

    def _requeue(self, job: Job) -> None:
        """Crash recovery: put a running job back at its queue position.

        The partial run's node-seconds are credited to the utilization
        accumulator, surviving nodes return to the free pool, and the
        job resets to PENDING (result/error/timing cleared,
        ``requeues`` incremented).  Requeued jobs re-enter the queue in
        job-id order, keeping the FIFO discipline deterministic.
        """
        if job.start_time is not None:
            self._consumed += (self.now - job.start_time) * job.nodes
        self._free.update(n for n in job.allocated if n not in self._dead)
        job.allocated = []
        job.state = JobState.PENDING
        job.start_time = None
        job.end_time = None
        job.result = None
        job.error = None
        job.slowdown = 1.0
        job.requeues += 1
        self._queue.append(job)
        self._queue.sort(key=lambda j: j.job_id)

    # -- internals ------------------------------------------------------------

    def _allocate(self, count: int) -> list[int] | None:
        """Lowest contiguous range, cell-aligned for cell-sized requests."""
        if count > len(self._free):
            return None
        free = sorted(self._free)
        npc = self.system.nodes_per_cell
        starts = [s for s in free] if count < npc else \
                 [s for s in free if s % npc == 0]
        free_set = self._free
        for start in starts:
            block = range(start, start + count)
            if block.stop <= self.system.nodes and all(n in free_set for n in block):
                return list(block)
        # Fall back to any (possibly scattered) nodes.
        return free[:count]

    def _schedule(self) -> None:
        """FIFO with conservative backfill: later jobs may start early only
        if they fit in the currently free nodes (they can never delay the
        queue head, because running jobs are not preempted)."""
        progressed = True
        while progressed:
            progressed = False
            for job in list(self._queue):
                alloc = self._allocate(job.nodes)
                if alloc is None:
                    continue  # head blocked -> try to backfill behind it
                self._start(job, alloc)
                progressed = True
                break

    def _start(self, job: Job, alloc: list[int]) -> None:
        self._queue.remove(job)
        self._free.difference_update(alloc)
        job.allocated = alloc
        job.state = JobState.RUNNING
        job.start_time = self.now
        # Straggler windows stretch the payload's virtual duration by
        # the slowest node of the allocation (capped at walltime; the
        # overrun check in _finish applies the same factor).
        job.slowdown = max((self._slow.get(n, 1.0) for n in alloc),
                           default=1.0)
        duration = job.walltime
        if job.run is not None:
            try:
                job.result = job.run(alloc)
            except Exception as exc:  # payload decides job success
                job.error = f"{type(exc).__name__}: {exc}"
            # Payloads may return an object with a virtual duration.
            dur = getattr(job.result, "seconds", None)
            if isinstance(dur, (int, float)) and dur >= 0:
                duration = min(float(dur) * job.slowdown, job.walltime)
        job.end_time = self.now + duration
        self._running.push(job.end_time, job, tiebreak=job.job_id)

    def _finish(self, job: Job) -> None:
        self._free.update(n for n in job.allocated if n not in self._dead)
        if job.error is not None:
            job.state = JobState.FAILED
        elif job.end_time is not None and job.run is not None and \
                getattr(job.result, "seconds", 0.0) and \
                float(getattr(job.result, "seconds")) * job.slowdown > \
                job.walltime:
            job.state = JobState.FAILED
            job.error = "walltime exceeded"
        else:
            job.state = JobState.COMPLETED
