"""Communication cost model (alpha-beta with topology awareness).

This is the timing backend of the virtual-MPI engine.  The model follows
the structure the paper's own application models use (the JUQCS network
model of Sec. V-A): a latency term, a bandwidth term whose effective
bandwidth depends on the *link class* of the path (NVLink inside a node,
InfiniBand HDR200 inside a cell, tapered global links between cells),
and a *large-scale congestion* factor once a job spans many cells --
this is what reproduces JUQCS' two communication drops in Fig. 3
(1 -> 2 nodes: NVLink -> IB; >= 256 nodes: global-link contention).

Collective costs use standard algorithm models (ring allreduce,
binomial broadcast, pairwise alltoall bounded by bisection).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..units import register_dims
from .hardware import SystemSpec, juwels_booster
from .topology import DragonflyPlus, LinkClass, Topology

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules;
#: with these, the dataflow pass proves p2p_time's alpha-beta identity
#: s + B / (B/s) = s end to end
DIMS = register_dims(__name__, {
    "link_bandwidth.return": "B/s",
    "latency.return": "s",
    "p2p_time.nbytes": "B",
    "p2p_time.return": "s",
    "allreduce_time.nbytes": "B",
    "allreduce_time.return": "s",
    "bcast_time.nbytes": "B",
    "bcast_time.return": "s",
    "allgather_time.nbytes_per_rank": "B",
    "allgather_time.return": "s",
    "alltoall_time.nbytes_per_pair": "B",
    "alltoall_time.return": "s",
    "barrier_time.return": "s",
    "reduce_scatter_time.nbytes": "B",
    "reduce_scatter_time.return": "s",
})


@dataclass(frozen=True)
class NetworkModel:
    """Cost model for point-to-point and collective operations.

    Parameters
    ----------
    system:
        Machine description (link bandwidths, cell size, taper).
    topology:
        Path classifier; defaults to DragonFly+ over ``system``.
    degradation:
        Optional fault-injection multiplier model (duck-typed:
        ``factor(link) -> float`` in ``(0, 1]`` -- a
        :class:`~repro.faults.LinkDegradationModel`).  Applied on top
        of taper/congestion to every non-local link class.
    """

    system: SystemSpec
    topology: Topology = None  # type: ignore[assignment]
    degradation: object = None

    def __post_init__(self) -> None:  # dataclass(frozen) workaround
        if self.topology is None:
            object.__setattr__(self, "topology", DragonflyPlus(self.system))

    def degraded(self, degradation: object) -> "NetworkModel":
        """This model with a fault-injection degradation attached."""
        return NetworkModel(system=self.system, topology=self.topology,
                            degradation=degradation)

    # -- point-to-point ----------------------------------------------------

    def link_bandwidth(self, link: LinkClass, job_nodes: int = 1) -> float:
        """Effective per-stream bandwidth for a link class within a job.

        ``job_nodes`` is the size of the running job; inter-cell streams in
        jobs beyond ``large_scale_threshold_nodes`` see an additional
        congestion factor (adaptive-routing collisions on shared global
        links -- the empirical large-scale regime of the paper's Fig. 3).
        An attached ``degradation`` model multiplies the result by its
        per-link-class factor (fault-injected bandwidth loss).
        """
        node = self.system.node
        if link is LinkClass.SELF:
            return float("inf")
        if link is LinkClass.INTRA_NODE:
            bw = node.intra_node_bandwidth
        else:
            bw = node.nic_bandwidth
            if link is LinkClass.INTER_CELL:
                bw *= self.system.cell_uplink_taper
                if job_nodes >= self.system.large_scale_threshold_nodes:
                    bw *= self.system.large_scale_congestion
        if self.degradation is not None:
            bw *= self.degradation.factor(link)
        return bw

    def latency(self, link: LinkClass) -> float:
        """One-way latency of a link class."""
        node = self.system.node
        if link in (LinkClass.SELF,):
            return 0.0
        if link is LinkClass.INTRA_NODE:
            return node.intra_node_latency
        if link is LinkClass.INTRA_CELL:
            return node.inter_node_latency
        return node.inter_node_latency * 2.0

    def p2p_params(self, src_node: int, dst_node: int,
                   job_nodes: int = 1) -> tuple[float, float]:
        """``(latency, bandwidth)`` of the path between two nodes.

        The alpha-beta pair behind :meth:`p2p_time`; the event engine
        caches it per node pair so repeated transfers cost one dict hit
        instead of a link classification.  Self-paths report infinite
        bandwidth and zero latency, so ``lat + n / bw`` is exact for
        every case.
        """
        link = self.topology.classify(src_node, dst_node)
        return self.latency(link), self.link_bandwidth(link, job_nodes)

    def p2p_time(self, src_node: int, dst_node: int, nbytes: float,
                 job_nodes: int = 1) -> float:
        """Time for one blocking point-to-point transfer of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        if src_node == dst_node and nbytes == 0:
            return 0.0
        lat, bw = self.p2p_params(src_node, dst_node, job_nodes)
        return lat + nbytes / bw

    # -- collectives ---------------------------------------------------------

    def _job_links(self, node_set: tuple[int, ...]) -> tuple[LinkClass, int]:
        """Slowest link class inside a job and the job's node count."""
        nodes = sorted(set(node_set))
        nnodes = len(nodes)
        if nnodes <= 1:
            return LinkClass.INTRA_NODE, max(nnodes, 1)
        cells = {self.topology.cell_of(n) for n in nodes}
        link = LinkClass.INTRA_CELL if len(cells) == 1 else LinkClass.INTER_CELL
        return link, nnodes

    def allreduce_time(self, node_set: tuple[int, ...], nranks: int,
                       nbytes: float) -> float:
        """Ring allreduce: ``2(P-1)/P`` data volume + ``2 log2 P`` latencies."""
        if nranks <= 1:
            return 0.0
        link, nnodes = self._job_links(node_set)
        bw = self.link_bandwidth(link, nnodes)
        lat = self.latency(link)
        p = nranks
        return 2.0 * math.log2(p) * lat + 2.0 * nbytes * (p - 1) / p / bw

    def bcast_time(self, node_set: tuple[int, ...], nranks: int,
                   nbytes: float) -> float:
        """Binomial-tree broadcast (pipelined for large messages)."""
        if nranks <= 1:
            return 0.0
        link, nnodes = self._job_links(node_set)
        bw = self.link_bandwidth(link, nnodes)
        lat = self.latency(link)
        return math.log2(nranks) * lat + nbytes / bw

    def allgather_time(self, node_set: tuple[int, ...], nranks: int,
                       nbytes_per_rank: float) -> float:
        """Ring allgather: each rank receives ``(P-1)`` blocks."""
        if nranks <= 1:
            return 0.0
        link, nnodes = self._job_links(node_set)
        bw = self.link_bandwidth(link, nnodes)
        lat = self.latency(link)
        return (nranks - 1) * (lat + nbytes_per_rank / bw)

    def alltoall_time(self, node_set: tuple[int, ...], nranks: int,
                      nbytes_per_pair: float) -> float:
        """Pairwise-exchange alltoall, bounded by the job's bisection.

        Total cross-bisection volume is ``(P/2)^2 * 2`` block transfers;
        the effective time is the max of the per-rank pipeline and the
        bisection bound.  This matters for QE's distributed-FFT transpose.
        """
        if nranks <= 1:
            return 0.0
        link, nnodes = self._job_links(node_set)
        bw = self.link_bandwidth(link, nnodes)
        lat = self.latency(link)
        per_rank = (nranks - 1) * (lat + nbytes_per_pair / bw)
        total_cross = (nranks / 2.0) * (nranks / 2.0) * 2.0 * nbytes_per_pair
        bisect = self.topology.bisection_bandwidth(nnodes)
        return max(per_rank, total_cross / bisect if bisect > 0 else 0.0)

    def barrier_time(self, node_set: tuple[int, ...], nranks: int) -> float:
        """Dissemination barrier: ``log2 P`` latency rounds."""
        if nranks <= 1:
            return 0.0
        link, nnodes = self._job_links(node_set)
        return math.ceil(math.log2(nranks)) * self.latency(link)

    def reduce_scatter_time(self, node_set: tuple[int, ...], nranks: int,
                            nbytes: float) -> float:
        """Ring reduce-scatter: ``(P-1)/P`` of the buffer crosses each link."""
        if nranks <= 1:
            return 0.0
        link, nnodes = self._job_links(node_set)
        bw = self.link_bandwidth(link, nnodes)
        lat = self.latency(link)
        return math.log2(nranks) * lat + nbytes * (nranks - 1) / nranks / bw


def booster_network() -> NetworkModel:
    """Network model of the full JUWELS Booster."""
    return NetworkModel(system=juwels_booster())
