"""Node power and job energy model feeding the TCO calculation.

The JUPITER procurement is Total-Cost-of-Ownership based (Sec. II-B):
electricity and cooling over the system lifetime are a substantial part
of the budget, so the value-for-money metric needs energy per reference
workload, not just runtime.  We use a simple utilisation-linear power
model per node -- enough to rank system designs, which is all the TCO
scheme does with it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import register_dims
from .hardware import NodeSpec, SystemSpec

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules.
#: Power/energy (W, J) are outside the dimension vocabulary -- only the
#: time/throughput inputs are declared, which is what the TCO pipeline
#: feeds in from FOM time metrics.
DIMS = register_dims(__name__, {
    "node_power.utilization": "1",
    "job_energy.seconds": "s",
    "job_energy_kwh.seconds": "s",
    "flops_per_joule.achieved_flops": "FLOP/s",
})


@dataclass(frozen=True)
class EnergyModel:
    """Energy accounting for jobs on a given system.

    ``pue`` is the data-centre power usage effectiveness (cooling and
    distribution overhead on top of IT power).
    """

    system: SystemSpec
    pue: float = 1.15

    def node_power(self, utilization: float) -> float:
        """Instantaneous node power [W] at a compute utilisation in [0, 1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        node: NodeSpec = self.system.node
        return node.host_power_idle + \
            (node.host_power_peak - node.host_power_idle) * utilization

    def job_energy(self, nodes: int, seconds: float,
                   utilization: float = 0.85) -> float:
        """Energy [J] (at the meter, incl. PUE) of a job."""
        if nodes < 0 or seconds < 0:
            raise ValueError("nodes and seconds must be non-negative")
        return self.node_power(utilization) * nodes * seconds * self.pue

    def job_energy_kwh(self, nodes: int, seconds: float,
                       utilization: float = 0.85) -> float:
        """Energy [kWh] of a job."""
        return self.job_energy(nodes, seconds, utilization) / 3.6e6

    def lifetime_energy_cost(self, lifetime_years: float,
                             avg_utilization: float = 0.8,
                             eur_per_kwh: float = 0.20) -> float:
        """Projected electricity cost [EUR] over the system lifetime."""
        seconds = lifetime_years * 365.25 * 24 * 3600
        joules = self.job_energy(self.system.nodes, seconds, avg_utilization)
        return joules / 3.6e6 * eur_per_kwh

    def flops_per_joule(self, achieved_flops: float,
                        utilization: float = 0.85) -> float:
        """Energy efficiency (FLOP/J) at a given sustained throughput.

        The paper highlights FLOP/J as the Booster module's design driver.
        """
        power = self.node_power(utilization) * self.system.nodes * self.pue
        return achieved_flops / power
