"""Hardware models of the preparation system and proposal systems.

The JUPITER Benchmark Suite was prepared on JUWELS Booster (Sec. III-A of
the paper): 936 nodes in 39 BullSequana XH2000 racks, 2 racks = one
48-node DragonFly+ *cell*; each node has 4 NVIDIA A100 GPUs (40 GB HBM2e)
with one InfiniBand HDR200 adapter per GPU, and 2x AMD EPYC Rome 7402
CPUs with 512 GB DDR4.

These dataclasses carry exactly the quantities the timing model needs:
peak throughput, memory capacity and bandwidth, link bandwidths, and
node/cell organisation.  ``jupiter_booster_model`` builds a *hypothetical*
future system scaled to 1 EFLOP/s(th), used by the High-Scaling
extrapolation experiments (Sec. II-C).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..units import EXA, GIB, GIGA, TERA, PETA, register_dims

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules
DIMS = register_dims(__name__, {
    "DeviceSpec.peak_flops": "FLOP/s",
    "DeviceSpec.mem_capacity": "B",
    "DeviceSpec.mem_bandwidth": "B/s",
    "compute_seconds.flops": "FLOP",
    "compute_seconds.bytes_moved": "B",
    "compute_seconds.efficiency": "1",
    "compute_seconds.return": "s",
    "NodeSpec.host_mem": "B",
    "NodeSpec.nic_bandwidth": "B/s",
    "NodeSpec.intra_node_bandwidth": "B/s",
    "NodeSpec.intra_node_latency": "s",
    "NodeSpec.inter_node_latency": "s",
    "SystemSpec.cell_uplink_taper": "1",
    "SystemSpec.large_scale_congestion": "1",
    "device_mem_total.return": "B",
    "nodes_for_peak.target_flops": "FLOP/s",
    "preparation_subpartition.target_flops": "FLOP/s",
    "jupiter_booster_model.mem_per_device": "B",
    "jupiter_booster_model.target_flops": "FLOP/s",
})


@dataclass(frozen=True)
class DeviceSpec:
    """A single accelerator (or CPU socket treated as a device).

    ``peak_flops`` is the double-precision peak used for partition sizing
    (the paper sizes sub-partitions in FLOP/s *theoretical peak*);
    per-application efficiencies are applied by the compute-time model.
    """

    name: str
    peak_flops: float           # FP64 peak [FLOP/s]
    mem_capacity: float         # device memory [B]
    mem_bandwidth: float        # device memory bandwidth [B/s]
    kind: str = "gpu"           # "gpu" | "cpu"

    def compute_seconds(self, flops: float, bytes_moved: float = 0.0,
                        efficiency: float = 1.0) -> float:
        """Roofline time estimate: max of compute-limited and bandwidth-limited.

        ``efficiency`` scales the attainable fraction of peak (both compute
        and bandwidth) and encodes per-kernel realism (e.g. sparse LQCD
        kernels sustain far less than dense GEMM).
        """
        if efficiency <= 0.0:
            raise ValueError("efficiency must be positive")
        t_flops = flops / (self.peak_flops * efficiency) if flops else 0.0
        t_bytes = bytes_moved / (self.mem_bandwidth * efficiency) if bytes_moved else 0.0
        return max(t_flops, t_bytes)

    def degraded(self, factor: float) -> "DeviceSpec":
        """This device running ``factor`` x slower (straggler model).

        Scales compute and memory throughput down by the factor;
        capacity is untouched.  Used by fault injection to model
        thermally-throttled or otherwise degraded accelerators.
        """
        if factor < 1.0:
            raise ValueError("degradation factor must be >= 1")
        return replace(self, name=f"{self.name} (x{factor:g} degraded)",
                       peak_flops=self.peak_flops / factor,
                       mem_bandwidth=self.mem_bandwidth / factor)


@dataclass(frozen=True)
class NodeSpec:
    """A compute node: several devices plus host CPU, RAM, and NICs."""

    name: str
    device: DeviceSpec
    devices_per_node: int
    host_mem: float                  # host DRAM [B]
    nic_bandwidth: float             # per-adapter injection bandwidth [B/s]
    nics_per_node: int
    intra_node_bandwidth: float      # NVLink-class device<->device [B/s]
    intra_node_latency: float = 2.0e-6
    inter_node_latency: float = 5.0e-6
    host_power_idle: float = 500.0   # [W]
    host_power_peak: float = 2500.0  # [W], node fully loaded

    @property
    def peak_flops(self) -> float:
        """Aggregate FP64 peak of the node's devices."""
        return self.device.peak_flops * self.devices_per_node

    @property
    def device_mem_total(self) -> float:
        """Aggregate device memory of the node."""
        return self.device.mem_capacity * self.devices_per_node


@dataclass(frozen=True)
class SystemSpec:
    """A full system: homogeneous nodes organised into DragonFly+ cells.

    ``cell_uplink_taper`` is the ratio of a cell's aggregate global-link
    bandwidth to its aggregate injection bandwidth; DragonFly+ systems are
    commonly tapered (< 1), which is what makes large-scale bisection-heavy
    patterns (JUQCS' non-local gates) slower than intra-cell traffic.
    """

    name: str
    node: NodeSpec
    nodes: int
    nodes_per_cell: int = 48
    cell_uplink_taper: float = 0.7
    large_scale_congestion: float = 0.55  # extra efficiency factor once a job
    # spans many cells and adaptive routing starts to collide (empirical; the
    # paper's Fig. 3 shows JUQCS communication dropping again at >=256 nodes).
    large_scale_threshold_nodes: int = 256

    @property
    def cells(self) -> int:
        """Number of (possibly partially filled) cells."""
        return -(-self.nodes // self.nodes_per_cell)

    @property
    def peak_flops(self) -> float:
        """System FP64 theoretical peak."""
        return self.node.peak_flops * self.nodes

    def nodes_for_peak(self, target_flops: float) -> int:
        """Nodes needed to reach ``target_flops`` theoretical peak.

        Used to size the 50 PFLOP/s(th) preparation sub-partition (~640
        JUWELS Booster nodes) and the 1 EFLOP/s(th) proposal sub-partition.
        """
        return -(-int(target_flops) // int(self.node.peak_flops))

    def with_nodes(self, nodes: int) -> "SystemSpec":
        """A sub-partition of this system with the given node count."""
        if nodes < 1:
            raise ValueError("partition needs at least one node")
        return replace(self, nodes=nodes, name=f"{self.name}[{nodes}]")


# ---------------------------------------------------------------------------
# Reference machines
# ---------------------------------------------------------------------------

#: NVIDIA A100-40GB (SXM4): 19.5 TFLOP/s FP64 *tensor-core* peak -- the
#: number the paper's partition sizing uses (936 nodes * 4 GPUs * 19.5 TF
#: = 73 PFLOP/s(th), and 50 PF fills "about 640 nodes") -- with 40 GB
#: HBM2e at 1555 GB/s.  Vector FP64 peak is 9.7 TF; kernels that cannot
#: use tensor cores express that through their efficiency factor.
A100 = DeviceSpec(
    name="NVIDIA A100-40GB",
    peak_flops=19.5 * TERA,
    mem_capacity=40.0 * GIGA,
    mem_bandwidth=1555.0 * GIGA,
    kind="gpu",
)

#: One AMD EPYC Rome 7402 socket (24 cores) as a CPU "device" for the
#: CPU-only benchmarks (NAStJA, DynQCD) and the Cluster module.
EPYC_ROME_7402 = DeviceSpec(
    name="AMD EPYC Rome 7402",
    peak_flops=1.23 * TERA,          # 24 cores * 2.8 GHz * 16 FLOP/cycle (AVX2 FMA)
    mem_capacity=256.0 * GIB,
    mem_bandwidth=190.0 * GIGA,      # 8 channels DDR4-3200, realistic STREAM-level
    kind="cpu",
)


def juwels_booster_node() -> NodeSpec:
    """One JUWELS Booster node: 4x A100, 4x HDR200, 512 GB DDR4."""
    return NodeSpec(
        name="JUWELS Booster node",
        device=A100,
        devices_per_node=4,
        host_mem=512.0 * GIB,
        nic_bandwidth=25.0 * GIGA,     # HDR200 = 200 Gb/s = 25 GB/s per adapter
        nics_per_node=4,
        intra_node_bandwidth=250.0 * GIGA,  # NVLink3 effective pairwise
    )


def juwels_booster() -> SystemSpec:
    """The 936-node JUWELS Booster preparation system (73 PFLOP/s(th))."""
    return SystemSpec(name="JUWELS Booster", node=juwels_booster_node(), nodes=936)


def juwels_cluster() -> SystemSpec:
    """A CPU module standing in for JUWELS Cluster (for MSA benchmarks)."""
    node = NodeSpec(
        name="JUWELS Cluster node",
        device=EPYC_ROME_7402,
        devices_per_node=2,
        host_mem=512.0 * GIB,
        nic_bandwidth=12.5 * GIGA,     # HDR100
        nics_per_node=1,
        intra_node_bandwidth=100.0 * GIGA,
    )
    return SystemSpec(name="JUWELS Cluster", node=node, nodes=1024)


def preparation_subpartition(target_flops: float = 50.0 * PETA) -> SystemSpec:
    """The High-Scaling preparation sub-partition of JUWELS Booster.

    The paper fills a 50 PFLOP/s(th) sub-partition, about 640 nodes
    (some applications with power-of-two constraints use 512).
    """
    booster = juwels_booster()
    return booster.with_nodes(booster.nodes_for_peak(target_flops))


def jupiter_booster_model(gpu_speedup: float = 4.0,
                          mem_per_device: float = 96.0 * GIGA,
                          mem_bw_scale: float = 2.5,
                          nic_bw_scale: float = 2.0,
                          target_flops: float = 1.05 * EXA) -> SystemSpec:
    """A *hypothetical* JUPITER Booster proposal for extrapolation studies.

    The procurement requires committing High-Scaling runtimes on a
    1 EFLOP/s(th) sub-partition of the proposed system; only its rough
    characteristics are known in advance.  Defaults model a plausible
    next-generation accelerator (faster compute than memory -- the growing
    imbalance that motivated the paper's T/S/M/L memory variants).
    """
    dev = DeviceSpec(
        name="NextGen GPU (model)",
        peak_flops=A100.peak_flops * gpu_speedup,
        mem_capacity=mem_per_device,
        mem_bandwidth=A100.mem_bandwidth * mem_bw_scale,
        kind="gpu",
    )
    node = NodeSpec(
        name="JUPITER Booster node (model)",
        device=dev,
        devices_per_node=4,
        host_mem=512.0 * GIB,
        nic_bandwidth=25.0 * GIGA * nic_bw_scale,
        nics_per_node=4,
        intra_node_bandwidth=250.0 * GIGA * nic_bw_scale,
    )
    sys = SystemSpec(name="JUPITER Booster (model)", node=node, nodes=1)
    return replace(sys, nodes=sys.nodes_for_peak(target_flops) * 6 // 5)
