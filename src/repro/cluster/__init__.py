"""Simulated HPC machine substrate (stands in for JUWELS Booster / JUPITER).

Sub-modules:

* :mod:`~repro.cluster.hardware` -- device/node/system specifications,
* :mod:`~repro.cluster.topology` -- DragonFly+ (and fat-tree) path models,
* :mod:`~repro.cluster.network` -- alpha-beta-congestion communication costs,
* :mod:`~repro.cluster.storage` -- flash storage module + in-memory filesystem,
* :mod:`~repro.cluster.scheduler` -- Slurm-like deterministic batch scheduler,
* :mod:`~repro.cluster.energy` -- power/energy model for the TCO scheme.
"""

from .energy import EnergyModel
from .hardware import (
    A100,
    EPYC_ROME_7402,
    DeviceSpec,
    NodeSpec,
    SystemSpec,
    jupiter_booster_model,
    juwels_booster,
    juwels_booster_node,
    juwels_cluster,
    preparation_subpartition,
)
from .network import NetworkModel, booster_network
from .scheduler import Job, JobState, Scheduler
from .storage import (
    IOR_EASY_TRANSFER,
    IOR_HARD_TRANSFER,
    SimFile,
    SimFilesystem,
    StorageModel,
    StorageSpec,
)
from .topology import DragonflyPlus, FatTree, LinkClass, Topology

__all__ = [
    "A100",
    "EPYC_ROME_7402",
    "DeviceSpec",
    "DragonflyPlus",
    "EnergyModel",
    "FatTree",
    "IOR_EASY_TRANSFER",
    "IOR_HARD_TRANSFER",
    "Job",
    "JobState",
    "LinkClass",
    "NetworkModel",
    "NodeSpec",
    "Scheduler",
    "SimFile",
    "SimFilesystem",
    "StorageModel",
    "StorageSpec",
    "SystemSpec",
    "Topology",
    "booster_network",
    "jupiter_booster_model",
    "juwels_booster",
    "juwels_booster_node",
    "juwels_cluster",
    "preparation_subpartition",
]
