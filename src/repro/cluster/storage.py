"""Model of the high-bandwidth flash storage module.

JUPITER couples its compute modules with a module of NVMe-based flash
storage; the suite probes it with IOR in IO500-style *easy* (16 MiB
transfers, file per process) and *hard* (4 KiB transfers, all processes
in one shared file) variants, and ICON stages multi-terabyte input.

The model captures the effects those benchmarks are designed to expose:

* aggregate backend bandwidth that saturates with client count,
* per-client (node) injection limits,
* transfer-size efficiency (small transfers pay per-op overhead),
* shared-file lock contention when multiple writers hit the same
  filesystem block (the IOR-hard design, Sec. IV-B).

A tiny in-memory filesystem (`SimFilesystem`) backs functional tests:
files support parallel writes/reads with block-level lock accounting, so
the IOR benchmark actually moves bytes and the contention it reports is
measured, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..units import GIGA, KIB, MIB, register_dims

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules;
#: the analyzer proves transfer_time reduces to seconds
#: (B / (B/s) + count * s) and bandwidth to B/s
DIMS = register_dims(__name__, {
    "StorageSpec.backend_bandwidth_read": "B/s",
    "StorageSpec.backend_bandwidth_write": "B/s",
    "StorageSpec.per_node_bandwidth": "B/s",
    "StorageSpec.iop_overhead": "s",
    "StorageSpec.fs_block_size": "B",
    "StorageSpec.lock_penalty": "s",
    "StorageSpec.saturation_clients": "1",
    "_aggregate_bw.nclients": "1",
    "_aggregate_bw.return": "B/s",
    "transfer_time.nbytes_total": "B",
    "transfer_time.nclients": "1",
    "transfer_time.transfer_size": "B",
    "transfer_time.return": "s",
    "bandwidth.nbytes_total": "B",
    "bandwidth.nclients": "1",
    "bandwidth.transfer_size": "B",
    "bandwidth.return": "B/s",
})


@dataclass(frozen=True)
class StorageSpec:
    """Capability description of the storage module."""

    name: str = "JUPITER flash module (model)"
    backend_bandwidth_read: float = 2000.0 * GIGA   # aggregate [B/s]
    backend_bandwidth_write: float = 1400.0 * GIGA
    per_node_bandwidth: float = 40.0 * GIGA         # client-side injection
    iop_overhead: float = 25.0e-6                   # per-operation latency [s]
    fs_block_size: float = 4.0 * KIB                # lock granularity
    lock_penalty: float = 80.0e-6                   # shared-block lock round trip
    saturation_clients: int = 64                    # clients to reach backend bw


@dataclass
class StorageModel:
    """Analytic I/O timing for bulk transfers.

    ``shared_file`` enables block-lock contention: when several processes
    write the same filesystem block (IOR hard: 4 KiB transfers into one
    file), each operation serialises on the lock with probability growing
    with process count.
    """

    spec: StorageSpec = field(default_factory=StorageSpec)

    def _aggregate_bw(self, nclients: int, write: bool) -> float:
        back = (self.spec.backend_bandwidth_write if write
                else self.spec.backend_bandwidth_read)
        ramp = min(1.0, nclients / self.spec.saturation_clients)
        return min(back * ramp if ramp < 1.0 else back,
                   self.spec.per_node_bandwidth * nclients)

    def transfer_time(self, nbytes_total: float, nclients: int,
                      transfer_size: float, write: bool = True,
                      shared_file: bool = False) -> float:
        """Seconds to move ``nbytes_total`` across ``nclients`` clients."""
        if nbytes_total < 0 or nclients < 1 or transfer_size <= 0:
            raise ValueError("invalid transfer parameters")
        if nbytes_total == 0:
            return 0.0
        bw = self._aggregate_bw(nclients, write)
        nops = nbytes_total / transfer_size
        t_bw = nbytes_total / bw
        t_ops = nops * self.spec.iop_overhead / nclients
        t = t_bw + t_ops
        if shared_file and write:
            # Writers contending for the same fs block serialise on its
            # lock.  With transfer == block size every op risks a conflict
            # with the neighbouring writer; larger transfers span many
            # blocks and amortise.
            blocks_per_op = max(1.0, transfer_size / self.spec.fs_block_size)
            conflict_rate = min(1.0, 1.0 / blocks_per_op) * (1.0 - 1.0 / nclients)
            t += nops * conflict_rate * self.spec.lock_penalty / max(
                1.0, nclients ** 0.25)
        return t

    def bandwidth(self, nbytes_total: float, nclients: int,
                  transfer_size: float, write: bool = True,
                  shared_file: bool = False) -> float:
        """Achieved bandwidth [B/s] for the transfer described."""
        t = self.transfer_time(nbytes_total, nclients, transfer_size,
                               write=write, shared_file=shared_file)
        return nbytes_total / t if t > 0 else float("inf")


@dataclass
class SimFile:
    """A file in the in-memory filesystem."""

    name: str
    data: bytearray = field(default_factory=bytearray)
    #: count of write ops that landed on a block another writer touched
    lock_conflicts: int = 0
    _block_owner: dict[int, int] = field(default_factory=dict)

    def write_at(self, offset: int, payload: bytes, writer: int,
                 block_size: int = int(64 * KIB)) -> None:
        """Write ``payload`` at ``offset``, recording block-lock conflicts."""
        end = offset + len(payload)
        if len(self.data) < end:
            self.data.extend(b"\0" * (end - len(self.data)))
        self.data[offset:end] = payload
        for block in range(offset // block_size, (max(end - 1, offset)) // block_size + 1):
            prev = self._block_owner.get(block)
            if prev is not None and prev != writer:
                self.lock_conflicts += 1
            self._block_owner[block] = writer

    def read_at(self, offset: int, nbytes: int) -> bytes:
        """Read ``nbytes`` at ``offset`` (zero-filled past EOF)."""
        chunk = bytes(self.data[offset:offset + nbytes])
        return chunk + b"\0" * (nbytes - len(chunk))

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class SimFilesystem:
    """In-memory parallel filesystem used by the functional IOR runs."""

    files: dict[str, SimFile] = field(default_factory=dict)

    def open(self, name: str) -> SimFile:
        """Open (creating if needed) a file."""
        if name not in self.files:
            self.files[name] = SimFile(name=name)
        return self.files[name]

    def unlink(self, name: str) -> None:
        """Remove a file; missing files are ignored (like ``rm -f``)."""
        self.files.pop(name, None)

    @property
    def total_bytes(self) -> int:
        """Total bytes stored across all files."""
        return sum(f.size for f in self.files.values())


#: Default transfer sizes of the two IOR variants (Sec. IV-B).
IOR_EASY_TRANSFER = 16 * MIB
IOR_HARD_TRANSFER = 4 * KIB
