"""OSU micro-benchmarks: point-to-point latency and bandwidth.

The message-size sweep between two ranks -- intra-node (NVLink) and
inter-node (InfiniBand) -- that characterises the fabric's alpha-beta
behaviour.  Real mode moves actual byte payloads and verifies content
integrity; the reported numbers come from the virtual clock.
"""

from __future__ import annotations

import numpy as np

from ..core.benchmark import BenchmarkResult
from ..core.fom import FigureOfMerit, FomKind
from ..core.variants import MemoryVariant
from ..units import GIB, MIB, register_dims
from ..vmpi import Machine, Phantom
from .base import SyntheticBenchmark

#: the classic sweep (powers of two, 8 B .. 16 MiB)
MESSAGE_SIZES = tuple(8 << (2 * i) for i in range(12))
PINGPONGS = 4

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules
DIMS = register_dims(__name__, {
    "pingpong_program.repeats": "1",
    "result.latency_seconds": "s",
})


def pingpong_program(comm, sizes: tuple[int, ...], repeats: int,
                     real_payload: bool):
    """Ping-pong between ranks 0 and 1; others idle at barriers.

    Returns the list of (size, seconds per one-way message).
    """
    results = []
    for size in sizes:
        yield comm.barrier(label="sync")
        if comm.rank == 0:
            payload = (np.full(size // 8, 7.0) if real_payload
                       else Phantom(float(size)))
            err = 0.0
            t_like = 0.0
            for _ in range(repeats):
                yield comm.send(1, payload, tag=1)
                back = yield comm.recv(1, tag=2)
                if real_payload and isinstance(back, np.ndarray):
                    err = max(err, float(np.max(np.abs(back - 7.0))))
            results.append((size, err))
        elif comm.rank == 1:
            for _ in range(repeats):
                got = yield comm.recv(0, tag=1)
                yield comm.send(0, got, tag=2)
    yield comm.barrier(label="done")
    return results


class OsuBenchmark(SyntheticBenchmark):
    """Runnable OSU micro-benchmark suite (latency + bandwidth)."""

    NAME = "OSU"
    fom = FigureOfMerit(name="large-message bandwidth",
                        kind=FomKind.BANDWIDTH, work=float(GIB),
                        unit="B/s")

    def sweep(self, inter_node: bool,
              sizes: tuple[int, ...] = MESSAGE_SIZES) -> list[tuple[int, float]]:
        """(size, one-way seconds) using the virtual clock."""
        machine = Machine.booster(2, ranks_per_node=1) if inter_node \
            else Machine.on(self.system(), 2, ranks_per_node=2)
        out = []
        for size in sizes:
            t = machine.p2p_seconds(0, 1, float(size))
            out.append((size, t))
        return out

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        inter = nodes >= 2
        machine = Machine.booster(2, ranks_per_node=1) if inter \
            else Machine.on(self.system(), 2, ranks_per_node=2)
        sizes = MESSAGE_SIZES[:8] if real else MESSAGE_SIZES
        spmd = self.run_program(machine, pingpong_program,
                                args=(sizes, PINGPONGS, real))
        sweep = self.sweep(inter_node=inter)
        latency = sweep[0][1]
        big = sweep[-1]
        bandwidth = big[0] / big[1]
        verified = None
        verification = ""
        if real:
            errs = [e for (_s, e) in spmd.values[0]]
            verified = max(errs) == 0.0
            verification = f"payload integrity: max error {max(errs):.1e}"
        return self.result(
            nodes, spmd, fom_seconds=self.fom.time_metric(bandwidth),
            verified=verified, verification=verification,
            latency_seconds=latency, bandwidth=bandwidth,
            inter_node=inter, sweep=sweep)
