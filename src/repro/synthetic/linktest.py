"""LinkTest: bisection bandwidth of the interconnect.

Sec. IV-B: the suite uses "LinkTest's bisection test ... a number of
test processes (one per high-speed network adapter) is separated to two
equal halves of the system, and messages are bounced between partnering
processes in parallel (bidirectional mode).  To achieve optimal
bandwidth, the message size is set to 16 MiB.  An assessment is made
mainly based on the minimum bisection bandwidth."
"""

from __future__ import annotations

import numpy as np

from ..core.benchmark import BenchmarkResult
from ..core.fom import FigureOfMerit, FomKind
from ..core.variants import MemoryVariant
from ..units import GIB, MIB, register_dims
from ..vmpi import Phantom
from ..vmpi.machine import Machine
from .base import SyntheticBenchmark

MESSAGE_BYTES = 16 * MIB
ROUNDS = 4

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules;
#: with these the analyzer proves the whole bandwidth extraction chain
#: (volume / elapsed, the bisection cap, per-pair split) is B/s
DIMS = register_dims(__name__, {
    "bisection_program.message_bytes": "B",
    "bisection_program.rounds": "1",
    "result.aggregate_bandwidth": "B/s",
    "result.per_pair_bandwidth": "B/s",
    "result.uncapped_bandwidth": "B/s",
    "result.analytic_bisection": "B/s",
})


def bisection_program(comm, message_bytes: float, rounds: int):
    """Pair rank i of the lower half with rank i of the upper half and
    bounce bidirectional messages (generator; returns per-rank seconds
    of exchange time for bandwidth extraction)."""
    half = comm.size // 2
    if comm.rank >= 2 * half:
        # the odd rank out sits the bounce loop out but must still post
        # the same barrier *sequence* as the paired ranks: barriers
        # match by position on the communicator, so posting only one
        # leaves everyone else's second barrier incomplete (deadlock at
        # odd rank counts -- caught by COMM501 and the step engine)
        yield comm.barrier(label="start")
        yield comm.barrier(label="stop")
        return 0.0
    partner = comm.rank + half if comm.rank < half else comm.rank - half
    yield comm.barrier(label="start")
    for _ in range(rounds):
        yield comm.sendrecv(partner, Phantom(message_bytes), partner, tag=9)
    yield comm.barrier(label="stop")
    return rounds * message_bytes


class LinktestBenchmark(SyntheticBenchmark):
    """Runnable LinkTest benchmark."""

    NAME = "LinkTest"
    fom = FigureOfMerit(name="minimum bisection bandwidth",
                        kind=FomKind.BANDWIDTH, work=float(GIB),
                        unit="B/s")

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        if nodes < 2:
            raise ValueError("bisection needs at least 2 nodes")
        machine = self.machine(nodes)
        spmd = self.run_program(machine, bisection_program,
                                args=(MESSAGE_BYTES, ROUNDS))
        # each pair moved ROUNDS bidirectional messages; the bounce loop
        # dominates the elapsed time
        elapsed = spmd.elapsed
        pairs = machine.nranks // 2
        volume = 2.0 * pairs * ROUNDS * MESSAGE_BYTES  # bidirectional
        raw = volume / elapsed
        analytic = machine.network.topology.bisection_bandwidth(nodes)
        # The per-stream cost model prices each pair independently; with
        # every stream crossing the same cut, the aggregate cannot exceed
        # the topology's bisection capacity -- apply the cap explicitly
        # (this is exactly the quantity LinkTest is designed to expose).
        aggregate = min(raw, analytic)
        per_pair = aggregate / pairs
        return self.result(
            nodes, spmd, fom_seconds=self.fom.time_metric(aggregate),
            verified=None if not real else per_pair > 0,
            verification=f"min bisection bandwidth {aggregate:.3g} B/s "
                         f"({pairs} pairs)" if real else "",
            aggregate_bandwidth=aggregate, per_pair_bandwidth=per_pair,
            uncapped_bandwidth=raw, analytic_bisection=analytic)
