"""IOR: the filesystem benchmark (IO500-style easy and hard variants).

Sec. IV-B: "The Easy variant requires a transfer size of 16 MiB, with
each process writing to its own file.  The Hard variant uses a transfer
size of 4 KiB and a block size of 4 KiB, with all processes writing and
reading a single file.  The setup forces multiple processes to write to
the same file system data block, stressing the filesystem with the lock
processes."

Real mode moves actual bytes through the in-memory filesystem (write,
read back, verify contents, count the measured lock conflicts); the
bandwidth FOM comes from the storage model.
"""

from __future__ import annotations

import numpy as np

from ..cluster.storage import (
    IOR_EASY_TRANSFER,
    IOR_HARD_TRANSFER,
    SimFilesystem,
    StorageModel,
)
from ..core.benchmark import BenchmarkResult
from ..core.fom import FigureOfMerit, FomKind
from ..core.variants import MemoryVariant
from ..units import GIB, register_dims
from ..vmpi.machine import Machine
from .base import SyntheticBenchmark

#: the Hard variant's lower bound on the node count (Table II footnote)
HARD_MIN_NODES = 64

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules
#: (the storage model itself is annotated in cluster/storage.py)
DIMS = register_dims(__name__, {
    "ior_functional_run.ops_per_rank": "1",
    "result.write_bandwidth": "B/s",
    "result.read_bandwidth": "B/s",
    "result.transfer_size": "B",
})


def ior_functional_run(nranks: int, variant: str,
                       ops_per_rank: int = 8) -> dict[str, object]:
    """Write + read-back through the sim filesystem; returns stats."""
    if variant not in ("easy", "hard"):
        raise ValueError("variant must be 'easy' or 'hard'")
    fs = SimFilesystem()
    transfer = int(IOR_EASY_TRANSFER if variant == "easy"
                   else IOR_HARD_TRANSFER)
    transfer = min(transfer, 64 * 1024)  # keep the functional run small
    errors = 0
    if variant == "easy":
        for rank in range(nranks):
            f = fs.open(f"rank{rank:05d}.dat")
            for op in range(ops_per_rank):
                payload = bytes([(rank + op) % 256]) * transfer
                f.write_at(op * transfer, payload, writer=rank)
            for op in range(ops_per_rank):
                back = f.read_at(op * transfer, transfer)
                if back != bytes([(rank + op) % 256]) * transfer:
                    errors += 1
        conflicts = sum(f.lock_conflicts for f in fs.files.values())
    else:
        f = fs.open("shared.dat")
        # interleaved strided writes: rank r writes ops r, r+P, r+2P ...
        for op in range(ops_per_rank):
            for rank in range(nranks):
                index = op * nranks + rank
                payload = bytes([index % 256]) * transfer
                f.write_at(index * transfer, payload, writer=rank)
        total_ops = ops_per_rank * nranks
        for index in range(total_ops):
            if f.read_at(index * transfer, transfer) != \
                    bytes([index % 256]) * transfer:
                errors += 1
        conflicts = f.lock_conflicts
    return {"errors": errors, "lock_conflicts": conflicts,
            "bytes": fs.total_bytes}


class IorBenchmark(SyntheticBenchmark):
    """Runnable IOR benchmark."""

    NAME = "IOR"
    fom = FigureOfMerit(name="aggregate write bandwidth",
                        kind=FomKind.BANDWIDTH, work=float(GIB),
                        unit="B/s")

    def __init__(self, variant: str = "easy") -> None:
        super().__init__()
        if variant not in ("easy", "hard"):
            raise ValueError("IOR variant must be 'easy' or 'hard'")
        self.io_variant = variant

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        if self.io_variant == "hard" and nodes <= HARD_MIN_NODES and \
                not real:
            raise ValueError(
                f"IOR hard requires more than {HARD_MIN_NODES} nodes")
        machine = self.machine(min(nodes, 936))

        def tiny(comm):
            yield comm.barrier()

        spmd = self.run_program(machine, tiny)
        if real:
            stats = ior_functional_run(nranks=max(2, int(8 * scale)),
                                       variant=self.io_variant)
            hard = self.io_variant == "hard"
            ok = stats["errors"] == 0 and \
                ((stats["lock_conflicts"] > 0) == hard)
            return self.result(
                nodes, spmd, fom_seconds=max(spmd.elapsed, 1e-6),
                verified=ok,
                verification=f"read-back exact; {stats['lock_conflicts']} "
                             f"shared-block lock conflicts "
                             f"({'expected' if hard else 'none expected'})",
                **stats)
        model = StorageModel()
        total = 4 * GIB * nodes
        transfer = IOR_EASY_TRANSFER if self.io_variant == "easy" \
            else IOR_HARD_TRANSFER
        write_bw = model.bandwidth(total, nodes, transfer, write=True,
                                   shared_file=self.io_variant == "hard")
        read_bw = model.bandwidth(total, nodes, transfer, write=False)
        return self.result(
            nodes, spmd, fom_seconds=self.fom.time_metric(write_bw),
            io_variant=self.io_variant, write_bandwidth=write_bw,
            read_bandwidth=read_bw, transfer_size=transfer)
