"""HPCG: conjugate gradients with a symmetric Gauss-Seidel smoother.

The "how machines really perform on sparse work" counterpoint to HPL:
CG on a 27-point stencil over a 3D grid, preconditioned with symmetric
Gauss-Seidel.  The real implementation builds the genuine sparse
operator (scipy CSR), runs preconditioned CG, and checks the residual
reduction HPCG requires.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..core.benchmark import BenchmarkResult
from ..core.fom import FigureOfMerit
from ..core.variants import MemoryVariant
from ..units import register_dims
from ..vmpi import Phantom
from ..vmpi.decomposition import CartGrid, halo_exchange, phantom_faces
from ..vmpi.machine import Machine
from .base import SyntheticBenchmark

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules;
#: ITERATIONS is a count, so ``elapsed * (ITERATIONS / measured)``
#: extrapolations stay provably seconds
DIMS = register_dims(__name__, {
    "HpcgBenchmark.ITERATIONS": "1",
})


def build_27pt(n: int) -> sp.csr_matrix:
    """The HPCG operator: 27-point stencil, diagonal 26, off-diagonal
    -1, on an n^3 grid with Dirichlet truncation at the boundary."""
    if n < 2:
        raise ValueError("grid must be at least 2^3")
    idx = np.arange(n ** 3).reshape(n, n, n)
    rows, cols = [], []
    for dz in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                if dz == dy == dx == 0:
                    continue
                src = idx[max(0, -dz):n - max(0, dz),
                          max(0, -dy):n - max(0, dy),
                          max(0, -dx):n - max(0, dx)]
                dst = idx[max(0, dz):n + min(0, dz),
                          max(0, dy):n + min(0, dy),
                          max(0, dx):n + min(0, dx)]
                rows.append(src.ravel())
                cols.append(dst.ravel())
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    data = -np.ones(r.shape[0])
    a = sp.coo_matrix((data, (r, c)), shape=(n ** 3, n ** 3))
    a = a + sp.diags(np.full(n ** 3, 26.0))
    return a.tocsr()


def symgs(a: sp.csr_matrix, r: np.ndarray) -> np.ndarray:
    """One symmetric Gauss-Seidel application M^-1 r (forward sweep then
    backward sweep via triangular solves)."""
    lower = sp.tril(a, 0).tocsr()
    upper = sp.triu(a, 0).tocsr()
    d = a.diagonal()
    y = spla.spsolve_triangular(lower, r, lower=True)
    return spla.spsolve_triangular(upper, d * y, lower=False)


def hpcg_cg(a: sp.csr_matrix, b: np.ndarray, iterations: int = 50
            ) -> tuple[np.ndarray, list[float]]:
    """Preconditioned CG, fixed iteration count (the HPCG structure)."""
    x = np.zeros_like(b)
    r = b.copy()
    z = symgs(a, r)
    p = z.copy()
    rz = float(r @ z)
    b_norm = float(np.linalg.norm(b))
    history = [1.0]
    for _ in range(iterations):
        ap = a @ p
        alpha = rz / float(p @ ap)
        x += alpha * p
        r -= alpha * ap
        history.append(float(np.linalg.norm(r)) / b_norm)
        z = symgs(a, r)
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new
    return x, history


def hpcg_timing_program(comm, local_n: int, iterations: int):
    """Distributed HPCG: per iteration a SpMV + SymGS (both halo-
    exchanging, strictly memory-bound) and two dot reductions."""
    cart = CartGrid.for_ranks(comm.size, 3, periodic=False)
    rows = float(local_n ** 3)
    faces = phantom_faces((local_n, local_n, local_n), itemsize=8)
    for _it in range(iterations):
        for label, passes in (("spmv", 1.0), ("symgs", 2.0)):
            yield from halo_exchange(comm, cart, faces)
            yield comm.compute(flops=passes * 54.0 * rows,
                               bytes_moved=passes * 27.0 * 12.0 * rows,
                               efficiency=0.7, label=label)
        yield comm.allreduce(Phantom(16.0), label="dot")
        yield comm.allreduce(Phantom(16.0), label="dot")
    return rows


class HpcgBenchmark(SyntheticBenchmark):
    """Runnable HPCG benchmark."""

    NAME = "HPCG"
    fom = FigureOfMerit(name="HPCG solve runtime", unit="s")
    ITERATIONS = 50

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        machine = self.machine(nodes)
        if real:
            n = max(8, int(16 * scale))
            a = build_27pt(n)
            rng = np.random.default_rng(2)
            b = rng.normal(size=n ** 3)
            x, history = hpcg_cg(a, b, iterations=25)
            reduction = history[-1]
            ok = reduction < 1e-6 and bool(
                np.all(np.diff(history) <= 1e-12))

            def tiny(comm):
                yield comm.barrier()

            spmd = self.run_program(machine, tiny)
            return self.result(
                nodes, spmd, fom_seconds=max(spmd.elapsed, 1e-6),
                verified=ok,
                verification=f"residual reduced to {reduction:.2e} "
                             "monotonically",
                grid=n, residual_reduction=reduction)
        local_n = 192  # HPCG-typical local block on a 40 GB GPU
        spmd = self.run_program(machine, hpcg_timing_program,
                                args=(local_n, 4))
        fom = spmd.elapsed * (self.ITERATIONS / 4)
        return self.result(nodes, spmd, fom_seconds=fom,
                           local_grid=local_n,
                           compute_seconds=spmd.compute_seconds,
                           comm_seconds=spmd.comm_seconds)
