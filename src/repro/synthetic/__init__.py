"""The 7 synthetic benchmarks of the JUPITER Benchmark Suite."""

from typing import TYPE_CHECKING

from .base import SyntheticBenchmark
from .graph500 import (
    Graph500Benchmark,
    BfsResult,
    bfs,
    build_csr,
    kronecker_edges,
    validate_bfs,
)
from .hpcg import HpcgBenchmark, build_27pt, hpcg_cg, symgs
from .hpl import HplBenchmark, blocked_lu, hpl_flops, hpl_residual, lu_solve
from .ior import IorBenchmark, ior_functional_run
from .linktest import LinktestBenchmark, bisection_program
from .osu import MESSAGE_SIZES, OsuBenchmark, pingpong_program
from .stream import StreamBenchmark, gpu_stream_model, run_stream

if TYPE_CHECKING:  # pragma: no cover
    from ..core.suite import JupiterBenchmarkSuite


def register_all(suite: "JupiterBenchmarkSuite") -> None:
    """Register all 7 synthetic benchmarks with a suite."""
    suite.register("Graph500", Graph500Benchmark)
    suite.register("HPCG", HpcgBenchmark)
    suite.register("HPL", HplBenchmark)
    suite.register("IOR", IorBenchmark)
    suite.register("LinkTest", LinktestBenchmark)
    suite.register("OSU", OsuBenchmark)
    suite.register("STREAM", StreamBenchmark)


__all__ = [
    "BfsResult", "Graph500Benchmark", "HpcgBenchmark", "HplBenchmark",
    "IorBenchmark", "LinktestBenchmark", "MESSAGE_SIZES", "OsuBenchmark",
    "StreamBenchmark", "SyntheticBenchmark", "bfs", "bisection_program",
    "blocked_lu", "build_27pt", "build_csr", "gpu_stream_model",
    "hpcg_cg", "hpl_flops", "hpl_residual", "ior_functional_run",
    "kronecker_edges", "lu_solve", "pingpong_program", "register_all",
    "run_stream", "symgs", "validate_bfs",
]
