"""HPL: the High-Performance Linpack benchmark.

The system-sizing yardstick (JUPITER's requirement is 1 EFLOP/s HPL):
solve a dense system A x = b via blocked LU with partial pivoting.
Real mode runs an actual right-looking blocked LU and checks HPL's
official acceptance residual

    ||A x - b|| / (eps * (||A|| ||x|| + ||b||) * n)  <  16.

Timing mode charges the 2D block-cyclic decomposition: per panel a
factorisation, a row/column broadcast, and the trailing GEMM update.
"""

from __future__ import annotations

import numpy as np

from ..core.benchmark import BenchmarkResult
from ..core.fom import FigureOfMerit, FomKind
from ..core.variants import MemoryVariant
from ..units import GIGA, register_dims
from ..vmpi import Phantom
from ..vmpi.machine import Machine
from .base import SyntheticBenchmark

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules;
#: hpl_flops is the official operation count, so downstream
#: ``hpl_flops(n) / elapsed`` rates check out as FLOP/s
DIMS = register_dims(__name__, {
    "hpl_flops.return": "FLOP",
    "result.flops_rate": "FLOP/s",
    "result.hpl_efficiency": "1",
})


def blocked_lu(a: np.ndarray, nb: int = 32) -> tuple[np.ndarray, np.ndarray]:
    """In-place blocked LU with partial pivoting; returns (LU, piv).

    Right-looking: factor a panel with the unblocked kernel, apply its
    pivots across, triangular-solve the row block, GEMM the trailing
    matrix -- the exact structure HPL distributes.
    """
    a = np.array(a, dtype=float)
    n = a.shape[0]
    if a.shape != (n, n) or nb < 1:
        raise ValueError("need a square matrix and positive block size")
    piv = np.arange(n)
    for k0 in range(0, n, nb):
        k1 = min(k0 + nb, n)
        # unblocked panel factorisation with partial pivoting
        for k in range(k0, k1):
            p = k + int(np.argmax(np.abs(a[k:, k])))
            if a[p, k] == 0.0:
                raise np.linalg.LinAlgError("matrix is singular")
            if p != k:
                a[[k, p], :] = a[[p, k], :]
                piv[[k, p]] = piv[[p, k]]
            a[k + 1:, k] /= a[k, k]
            if k + 1 < k1:
                a[k + 1:, k + 1:k1] -= np.outer(a[k + 1:, k], a[k, k + 1:k1])
        if k1 < n:
            # row block: solve L11 U12 = A12
            l11 = np.tril(a[k0:k1, k0:k1], -1) + np.eye(k1 - k0)
            a[k0:k1, k1:] = np.linalg.solve(l11, a[k0:k1, k1:])
            # trailing update: A22 -= L21 U12
            a[k1:, k1:] -= a[k1:, k0:k1] @ a[k0:k1, k1:]
    return a, piv


def lu_solve(lu: np.ndarray, piv: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve with the packed LU factors."""
    n = lu.shape[0]
    y = b[piv].astype(float)
    for k in range(n):  # forward substitution (unit lower)
        y[k + 1:] -= lu[k + 1:, k] * y[k]
    x = y
    for k in range(n - 1, -1, -1):  # backward substitution
        x[k] /= lu[k, k]
        x[:k] -= lu[:k, k] * x[k]
    return x


def hpl_residual(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """HPL's scaled acceptance residual (must be < 16)."""
    n = a.shape[0]
    eps = np.finfo(float).eps
    num = float(np.linalg.norm(a @ x - b, np.inf))
    den = eps * (np.linalg.norm(a, np.inf) * np.linalg.norm(x, np.inf) +
                 np.linalg.norm(b, np.inf)) * n
    return num / den


def hpl_flops(n: int) -> float:
    """The official operation count 2/3 n^3 + 3/2 n^2."""
    return (2.0 / 3.0) * n ** 3 + 1.5 * n ** 2


def hpl_timing_program(comm, n: int, nb: int):
    """Phantom-cost distributed LU over a 2D block-cyclic grid."""
    panels = n // nb
    cols = max(1, int(np.sqrt(comm.size)))
    for k in range(panels):
        trailing = n - k * nb
        yield comm.compute(flops=trailing * nb * nb / cols,
                           bytes_moved=trailing * nb * 8.0,
                           efficiency=0.5, label="panel")
        yield comm.bcast(Phantom(trailing * nb * 8.0 / cols),
                         label="panel-bcast")
        yield comm.compute(flops=2.0 * trailing * trailing * nb / comm.size,
                           bytes_moved=3.0 * trailing * nb * 8.0 / cols,
                           efficiency=0.85, label="gemm-update")
    yield comm.barrier()
    return panels


class HplBenchmark(SyntheticBenchmark):
    """Runnable HPL benchmark."""

    NAME = "HPL"
    fom = FigureOfMerit(name="HPL performance", kind=FomKind.RATE,
                        work=1.0, unit="FLOP/s")

    def problem_size(self, nodes: int) -> int:
        """Matrix dimension filling ~70 % of the job's GPU memory."""
        mem = nodes * 4 * 40 * GIGA * 0.7
        return int(np.sqrt(mem / 8.0) // 1024 * 1024)

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        machine = self.machine(nodes)
        if real:
            rng = np.random.default_rng(1)
            n = max(64, int(256 * scale))
            a = rng.normal(size=(n, n))
            b = rng.normal(size=n)
            lu, piv = blocked_lu(a, nb=32)
            x = lu_solve(lu, piv, b)
            resid = hpl_residual(a, x, b)

            def tiny(comm):
                yield comm.barrier()

            spmd = self.run_program(machine, tiny)
            return self.result(nodes, spmd,
                               fom_seconds=max(spmd.elapsed, 1e-6),
                               verified=resid < 16.0,
                               verification=f"HPL residual {resid:.3f} < 16",
                               n=n, residual=resid)
        n = self.problem_size(nodes)
        nb = max(1024, n // 256)
        spmd = self.run_program(machine, hpl_timing_program, args=(n, nb))
        gflops = hpl_flops(n) / spmd.elapsed
        peak = machine.system.node.peak_flops * nodes
        return self.result(nodes, spmd, fom_seconds=spmd.elapsed,
                           n=n, flops_rate=gflops,
                           hpl_efficiency=gflops / peak)
