"""Graph500: BFS on Kronecker graphs (the graph-traversal dwarf).

The reference pipeline: generate a scale-s Kronecker graph (edgefactor
16, the official R-MAT probabilities), run breadth-first searches from
random roots, validate the parent arrays with the official checks
(root is its own parent; every parent edge exists; levels differ by
one), and report traversed edges per second (TEPS).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..core.benchmark import BenchmarkResult
from ..core.fom import FigureOfMerit, FomKind
from ..core.variants import MemoryVariant
from ..vmpi import Phantom
from ..vmpi.machine import Machine
from .base import SyntheticBenchmark

#: the official R-MAT block probabilities
KRON_A, KRON_B, KRON_C = 0.57, 0.19, 0.19
EDGEFACTOR = 16


def kronecker_edges(scale: int, edgefactor: int = EDGEFACTOR,
                    seed: int = 1) -> np.ndarray:
    """Generate the (2, m) edge list of a scale-``scale`` Kronecker
    graph -- the Graph500 reference generator, vectorised."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    n_edges = edgefactor << scale
    rng = np.random.default_rng(seed)
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    ab = KRON_A + KRON_B
    c_norm = KRON_C / (1.0 - ab)
    a_norm = KRON_A / ab
    for bit in range(scale):
        r1 = rng.random(n_edges)
        r2 = rng.random(n_edges)
        src_bit = r1 > ab
        dst_bit = (r2 > (c_norm * src_bit + a_norm * ~src_bit))
        src |= src_bit.astype(np.int64) << bit
        dst |= dst_bit.astype(np.int64) << bit
    # permute vertex labels (the reference de-biasing step)
    perm = rng.permutation(1 << scale)
    return np.stack([perm[src], perm[dst]])


def build_csr(edges: np.ndarray, n: int) -> sp.csr_matrix:
    """Symmetrised adjacency matrix without self loops."""
    src, dst = edges
    keep = src != dst
    src, dst = src[keep], dst[keep]
    data = np.ones(2 * src.shape[0], dtype=np.int8)
    a = sp.coo_matrix((data, (np.concatenate([src, dst]),
                              np.concatenate([dst, src]))), shape=(n, n))
    a.sum_duplicates()
    return a.tocsr()


@dataclass
class BfsResult:
    """Parents, levels and the traversal statistics of one BFS."""

    parent: np.ndarray
    level: np.ndarray
    edges_traversed: int
    levels: int


def bfs(adj: sp.csr_matrix, root: int) -> BfsResult:
    """Level-synchronous BFS (frontier expansion on the CSR arrays)."""
    n = adj.shape[0]
    if not 0 <= root < n:
        raise ValueError("root outside the graph")
    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    parent[root] = root
    level[root] = 0
    frontier = np.array([root], dtype=np.int64)
    indptr, indices = adj.indptr, adj.indices
    depth = 0
    traversed = 0
    while frontier.size:
        # gather all neighbours of the frontier
        counts = indptr[frontier + 1] - indptr[frontier]
        traversed += int(counts.sum())
        neighbors = np.concatenate([indices[indptr[v]:indptr[v + 1]]
                                    for v in frontier]) if frontier.size \
            else np.empty(0, dtype=np.int64)
        sources = np.repeat(frontier, counts)
        fresh = parent[neighbors] == -1
        neighbors, sources = neighbors[fresh], sources[fresh]
        # first writer wins deterministically
        order = np.argsort(neighbors, kind="stable")
        neighbors, sources = neighbors[order], sources[order]
        first = np.ones(neighbors.shape[0], dtype=bool)
        first[1:] = neighbors[1:] != neighbors[:-1]
        neighbors, sources = neighbors[first], sources[first]
        parent[neighbors] = sources
        depth += 1
        level[neighbors] = depth
        frontier = neighbors
    return BfsResult(parent=parent, level=level,
                     edges_traversed=traversed // 2,
                     levels=int(level.max()))


def validate_bfs(adj: sp.csr_matrix, root: int, res: BfsResult) -> bool:
    """The Graph500 validation rules."""
    parent, level = res.parent, res.level
    if parent[root] != root or level[root] != 0:
        return False
    reached = np.nonzero(parent >= 0)[0]
    for v in reached:
        if v == root:
            continue
        p = parent[v]
        # the parent edge must exist ...
        row = adj.indices[adj.indptr[v]:adj.indptr[v + 1]]
        if p not in row:
            return False
        # ... and levels must differ by exactly one
        if level[v] != level[p] + 1:
            return False
    # every edge must connect vertices at most one level apart (within
    # the reached component)
    coo = adj.tocoo()
    both = (parent[coo.row] >= 0) & (parent[coo.col] >= 0)
    if np.any(np.abs(level[coo.row[both]] - level[coo.col[both]]) > 1):
        return False
    return True


def graph500_timing_program(comm, scale: int, bfs_runs: int):
    """Distributed BFS cost: per level an alltoall of frontier updates
    plus local edge processing (latency- and bisection-bound)."""
    n_vertices = float(1 << scale)
    n_edges = n_vertices * EDGEFACTOR
    edges_local = n_edges / comm.size
    levels = max(4, scale // 2)
    for _run in range(bfs_runs):
        for _level in range(levels):
            yield comm.compute(flops=10.0 * edges_local / levels,
                               bytes_moved=16.0 * edges_local / levels,
                               efficiency=0.05,  # irregular access
                               label="edge-processing")
            yield comm.alltoall(
                tuple(Phantom(8.0 * n_vertices / comm.size ** 2)
                      for _ in range(comm.size)),
                label="frontier-exchange")
    return edges_local


class Graph500Benchmark(SyntheticBenchmark):
    """Runnable Graph500 benchmark (TEPS FOM)."""

    NAME = "Graph500"
    fom = FigureOfMerit(name="traversed edges per second",
                        kind=FomKind.RATE, work=1e9, unit="TEPS")
    SCALE_FULL = 36

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        machine = self.machine(nodes)
        if real:
            s = max(8, int(12 * scale))
            edges = kronecker_edges(s)
            adj = build_csr(edges, 1 << s)
            rng = np.random.default_rng(7)
            ok = True
            traversed = 0
            for _ in range(3):
                root = int(rng.integers(1 << s))
                res = bfs(adj, root)
                ok = ok and validate_bfs(adj, root, res)
                traversed += res.edges_traversed

            def tiny(comm):
                yield comm.barrier()

            spmd = self.run_program(machine, tiny)
            return self.result(
                nodes, spmd, fom_seconds=max(spmd.elapsed, 1e-6),
                verified=ok,
                verification="official parent/level checks passed" if ok
                else "BFS validation FAILED",
                graph_scale=s, edges_traversed=traversed)
        spmd = self.run_program(machine, graph500_timing_program,
                                args=(self.SCALE_FULL, 2))
        n_edges = EDGEFACTOR * (1 << self.SCALE_FULL)
        teps = 2 * n_edges / spmd.elapsed
        return self.result(nodes, spmd,
                           fom_seconds=self.fom.time_metric(teps),
                           teps=teps, graph_scale=self.SCALE_FULL,
                           comm_seconds=spmd.comm_seconds)
