"""STREAM: sustainable memory bandwidth (copy / scale / add / triad).

The only benchmark in the suite that *measures the host running this
reproduction* as well as modelling the target: real mode times the four
kernels on NumPy arrays (and checks their results), model mode reports
the A100 GPU variant from the device's bandwidth and the kernels' known
bytes-per-element counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.benchmark import BenchmarkResult
from ..core.fom import FigureOfMerit, FomKind
from ..core.variants import MemoryVariant
from ..units import register_dims
from ..vmpi.machine import Machine
from .base import SyntheticBenchmark

#: bytes moved per element: (reads + writes) * 8
KERNEL_BYTES = {"copy": 16, "scale": 16, "add": 24, "triad": 24}

#: dimension annotations consumed by ``repro.check``'s UNIT3xx rules
DIMS = register_dims(__name__, {
    "StreamResult.triad": "B/s",
    "gpu_stream_model.efficiency": "1",
    "_time_once.return": "s",
})


@dataclass
class StreamResult:
    """Measured bandwidths [B/s] and verification flag per kernel."""

    bandwidth: dict[str, float]
    verified: bool

    @property
    def triad(self) -> float:
        return self.bandwidth["triad"]


def run_stream(n: int = 10_000_000, repeats: int = 3) -> StreamResult:
    """Time the four kernels; best-of-``repeats`` (the STREAM rule)."""
    if n < 1000:
        raise ValueError("array too small to time meaningfully")
    a = np.arange(n, dtype=float)
    b = 2.0 * np.ones(n)
    c = np.zeros(n)
    scalar = 3.0
    best: dict[str, float] = {}

    def timed(label: str, fn) -> None:
        dt = min(_time_once(fn) for _ in range(repeats))
        best[label] = KERNEL_BYTES[label] * n / dt

    timed("copy", lambda: np.copyto(c, a))
    timed("scale", lambda: np.multiply(a, scalar, out=b))
    timed("add", lambda: np.add(a, b, out=c))
    timed("triad", lambda: np.add(a, scalar * b, out=c))
    ok = bool(np.allclose(b, scalar * a) and
              np.allclose(c, a + scalar * b))
    return StreamResult(bandwidth=best, verified=ok)


def _time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return max(time.perf_counter() - t0, 1e-9)


def gpu_stream_model(machine: Machine,
                     efficiency: float = 0.87) -> dict[str, float]:
    """Modelled per-GPU STREAM bandwidths (A100 triad sustains ~87 % of
    the HBM peak)."""
    bw = machine.system.node.device.mem_bandwidth * efficiency
    return {k: bw for k in KERNEL_BYTES}


class StreamBenchmark(SyntheticBenchmark):
    """Runnable STREAM benchmark."""

    NAME = "STREAM"
    fom = FigureOfMerit(name="triad bandwidth", kind=FomKind.BANDWIDTH,
                        work=1e12, unit="B/s")

    def _execute(self, nodes: int, *, variant: MemoryVariant | None,
                 scale: float, real: bool) -> BenchmarkResult:
        machine = self.machine(nodes)

        def tiny(comm):
            yield comm.barrier()

        spmd = self.run_program(machine, tiny)
        if real:
            res = run_stream(n=max(100_000, int(4_000_000 * scale)))
            return self.result(
                nodes, spmd,
                fom_seconds=self.fom.time_metric(res.triad),
                verified=res.verified,
                verification="kernel results exact" if res.verified
                else "kernel results WRONG",
                host_bandwidth=res.bandwidth)
        model = gpu_stream_model(machine)
        return self.result(nodes, spmd,
                           fom_seconds=self.fom.time_metric(model["triad"]),
                           gpu_bandwidth=model)
