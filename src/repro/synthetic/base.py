"""Shared base for the synthetic benchmarks."""

from __future__ import annotations

from ..apps.base import AppBenchmark


class SyntheticBenchmark(AppBenchmark):
    """Same plumbing as the application benchmarks; kept as a distinct
    type so the suite can report categories faithfully."""
