"""JUQCS quantitative claims (Sec. IV-A2c text): memory law, variant
sizes, exascale extrapolation targets, and the network model regimes."""

import pytest
from conftest import once

from repro.analysis import JuqcsNetworkModel
from repro.apps.juqcs import (
    BASE_QUBITS,
    EXA_QUBITS,
    HS_QUBITS,
    JuqcsBenchmark,
    state_vector_bytes,
)
from repro.core import MemoryVariant
from repro.units import PIB, TIB


def test_memory_law(benchmark):
    sizes = once(benchmark, lambda: {n: state_vector_bytes(n)
                                     for n in (36, 41, 42, 45, 46)})
    print("\nJUQCS state-vector sizes:")
    for n, b in sizes.items():
        print(f"  n={n}: {b / TIB:8.1f} TiB")
    assert sizes[36] == pytest.approx(TIB)          # Base: 1 TiB
    assert sizes[41] == pytest.approx(32 * TIB)     # HS small
    assert sizes[42] == pytest.approx(64 * TIB)     # HS large
    assert sizes[45] == pytest.approx(0.5 * PIB)    # exascale small


def test_variant_tables():
    assert BASE_QUBITS == 36
    assert HS_QUBITS[MemoryVariant.SMALL] == 41
    assert HS_QUBITS[MemoryVariant.LARGE] == 42
    assert EXA_QUBITS[MemoryVariant.SMALL] == 45
    assert EXA_QUBITS[MemoryVariant.LARGE] == 46


def test_network_model_regimes(benchmark):
    model = JuqcsNetworkModel()
    rows = once(benchmark, lambda: [
        (ranks, model.regime(ranks),
         model.worst_gate_seconds(41, ranks))
        for ranks in (4, 8, 64, 512, 2048)])
    print("\nJUQCS network model (n = 41, worst rank-bit gate):")
    for ranks, regime, sec in rows:
        print(f"  {ranks:>5} ranks  {regime:<12} {sec * 1e3:9.2f} ms")
    regimes = {r: reg for r, reg, _ in rows}
    assert regimes[4] == "intra-node"       # 1 node
    assert regimes[64] == "intra-cell"      # 16 nodes
    assert regimes[512] == "inter-cell"     # 128 nodes
    assert regimes[2048] == "large-scale"   # 512 nodes


def test_half_of_memory_crosses_network(benchmark):
    """Sec. IV-A2c: non-local gates transfer 2^n / 2 amplitudes."""
    bench = JuqcsBenchmark()
    res = once(benchmark, bench.run, 2)
    n = res.details["qubits"]
    total_sent = sum(t.bytes_sent for t in res.spmd.traces)
    expected = res.details["gates"] * state_vector_bytes(n) / 2
    assert total_sent == pytest.approx(expected, rel=0.01)


def test_msa_variant(benchmark, suite):
    """The Cluster+Booster MSA execution, exactly verified."""
    bench = suite.get("JUQCS")
    res = once(benchmark, bench.run_msa, 2, 2)
    print(f"\nMSA run: {res.details['qubits']} qubits across modules -- "
          f"{res.verification}")
    assert res.verified is True
