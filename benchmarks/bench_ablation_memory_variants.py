"""Ablation: the T/S/M/L memory variants (design choice of Sec. II-C).

Demonstrates what the variants are *for*: they shift the per-device
workload, letting a proposal with smaller accelerator memory still run
a valid reference workload, and they change the compute/communication
balance the suite exposes ('the memory variants can be used to study
artificially-limited compute profiles', Sec. V-B).
"""

import pytest
from conftest import once

from repro.cluster.hardware import DeviceSpec
from repro.core import MemoryVariant, VariantSizing
from repro.units import GIGA


def test_juqcs_variant_sizes(benchmark, suite):
    def run():
        return {v: suite.run("JUQCS", 8, variant=v)
                for v in (MemoryVariant.SMALL, MemoryVariant.LARGE)}

    results = once(benchmark, run)
    print("\nJUQCS variants @8 nodes:")
    for v, res in results.items():
        print(f"  {v.value}: {res.details['qubits']} qubits, "
              f"FOM {res.fom_seconds:.2f} s")
    small = results[MemoryVariant.SMALL]
    large = results[MemoryVariant.LARGE]
    assert large.details["qubits"] == small.details["qubits"] + 1
    assert large.fom_seconds > 1.5 * small.fom_seconds  # 2x the data


def test_nekrs_variant_element_counts(suite):
    runs = {v: suite.run("nekRS", 128, variant=v)
            for v in (MemoryVariant.SMALL, MemoryVariant.MEDIUM,
                      MemoryVariant.LARGE)}
    elements = [runs[v].details["elements"]
                for v in (MemoryVariant.SMALL, MemoryVariant.MEDIUM,
                          MemoryVariant.LARGE)]
    assert elements[0] < elements[1] < elements[2]


def test_variant_selection_rule(benchmark):
    """A proposal picks the largest variant fitting its accelerator --
    and loses access to L when memory shrinks below the reference."""
    sizing = VariantSizing()

    def pick(mem_gb):
        dev = DeviceSpec(name=f"gpu-{mem_gb}", peak_flops=1e15,
                         mem_capacity=mem_gb * GIGA, mem_bandwidth=3e12)
        return sizing.best_variant(dev)

    table = once(benchmark, lambda: {m: pick(m)
                                     for m in (24, 32, 48, 96, 144)})
    print("\nvariant choice by accelerator memory:")
    for mem, variant in table.items():
        print(f"  {mem:>4} GB -> {variant.value}")
    assert table[24] is MemoryVariant.SMALL
    assert table[32] is MemoryVariant.MEDIUM
    assert table[48] is MemoryVariant.LARGE
    assert table[96] is MemoryVariant.LARGE


def test_variants_shift_comm_fraction(suite):
    """Smaller variants shrink local work faster than halo traffic, so
    the communication share rises -- the bottleneck-shift study the
    paper describes."""
    small = suite.run("Chroma-QCD", 16, variant=MemoryVariant.SMALL)
    large = suite.run("Chroma-QCD", 16, variant=MemoryVariant.LARGE)

    def comm_fraction(res):
        return res.details["comm_seconds"] / (
            res.details["comm_seconds"] + res.details["compute_seconds"])

    assert comm_fraction(small) > comm_fraction(large)
