"""Reference FOMs of all application benchmarks (the Fig. 2 axis
annotations): each app runs once on its reference node count and the
resulting time metrics are tabulated."""

from conftest import once

from repro.core import Category, get_info
from repro.units import fmt_seconds

APPS = ("Amber", "Arbor", "Chroma-QCD", "GROMACS", "ICON", "JUQCS",
        "nekRS", "ParFlow", "PIConGPU", "Quantum Espresso", "SOMA",
        "MMoCLIP", "Megatron-LM", "ResNet", "DynQCD", "NAStJA")


def test_reference_foms(benchmark, suite):
    def run_all():
        return {name: suite.run(name) for name in APPS}

    results = once(benchmark, run_all)
    print("\nreference executions (Fig. 2 annotations):")
    for name, res in results.items():
        info = get_info(name)
        print(f"  {name:<18} {res.nodes:>4} nodes  "
              f"{fmt_seconds(res.fom_seconds):>10}")
        assert res.fom_seconds > 0
        assert Category.BASE in info.categories


def test_all_apps_verify_in_real_mode(suite):
    """Every application's real mode must pass its verification class."""
    failures = []
    for name in APPS:
        res = suite.run(name, nodes=1 if name != "NAStJA" else 2,
                        real=True, scale=0.4)
        if res.verified is not True:
            failures.append((name, res.verification))
    assert not failures, failures
