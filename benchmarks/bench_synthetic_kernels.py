"""The synthetic kernels timed for real by pytest-benchmark: blocked LU
(HPL), preconditioned CG (HPCG), STREAM triad, and Kronecker BFS
(Graph500) -- the one place the harness measures this host directly."""

import numpy as np
import pytest

from repro.synthetic import (
    bfs,
    blocked_lu,
    build_27pt,
    build_csr,
    hpcg_cg,
    hpl_residual,
    kronecker_edges,
    lu_solve,
    run_stream,
    validate_bfs,
)


def test_hpl_kernel(benchmark):
    rng = np.random.default_rng(0)
    n = 256
    a = rng.normal(size=(n, n))
    b = rng.normal(size=n)

    def solve():
        lu, piv = blocked_lu(a, nb=32)
        return lu_solve(lu, piv, b)

    x = benchmark(solve)
    assert hpl_residual(a, x, b) < 16.0


def test_hpcg_kernel(benchmark):
    a = build_27pt(12)
    rng = np.random.default_rng(1)
    b = rng.normal(size=a.shape[0])

    def solve():
        return hpcg_cg(a, b, iterations=15)

    _, history = benchmark(solve)
    assert history[-1] < 1e-4


def test_stream_triad(benchmark):
    res = benchmark(run_stream, 1_000_000, 2)
    print(f"\nhost STREAM: " + ", ".join(
        f"{k} {v / 1e9:.1f} GB/s" for k, v in res.bandwidth.items()))
    assert res.verified


def test_graph500_bfs(benchmark):
    scale = 12
    adj = build_csr(kronecker_edges(scale), 1 << scale)
    # Kronecker graphs have isolated vertices; the spec searches from
    # sampled roots of nonzero degree -- take the hub for determinism.
    degrees = np.diff(adj.indptr)
    root = int(np.argmax(degrees))

    def search():
        return bfs(adj, root=root)

    res = benchmark(search)
    assert validate_bfs(adj, root, res)
    assert res.edges_traversed > 0
