"""Regenerate Table II: the suite overview (languages, licences, node
counts, memory variants, execution targets)."""

from conftest import once

from repro.analysis import render_table2, table2_records


def test_table2(benchmark):
    text = once(benchmark, render_table2)
    print("\n" + text)
    records = {r.params["benchmark"].rstrip("*"): r.params
               for r in table2_records()}
    # spot-check the paper's rows
    assert records["Arbor"]["highscale"] == "642^{T,S,M,L}"
    assert records["Chroma-QCD"]["highscale"] == "512^{S,M,L}"
    assert records["JUQCS"]["highscale"] == "512^{S,L}"
    assert records["PIConGPU"]["highscale"] == "640^{S,M,L}"
    assert records["GROMACS"]["base_nodes"] == "3/128"
    assert records["ICON"]["base_nodes"] == "120/300"
    assert "C" in records["NAStJA"]["targets"]  # CPU module
