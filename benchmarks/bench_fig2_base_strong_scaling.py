"""Regenerate Figure 2: strong scaling of all Base applications.

Every Base app runs at ~0.5/0.75/1/1.5/2 x its reference node count on
the simulated JUWELS Booster; the reference execution is pinned at
(1, 1).  The assertions encode the paper's *shape*: curves decrease
with nodes (except Amber, which by design does not scale past one
node), and Arbor's published anchor points reproduce within 10 %.
"""

import pytest
from conftest import once

from repro.analysis import figure2


@pytest.fixture(scope="module")
def fig2(suite):
    return figure2(suite)


def test_fig2_regenerate(benchmark, suite):
    data = once(benchmark, figure2, suite)
    print("\n" + data.render())
    assert len(data.curves) == 16


def test_fig2_reference_points_at_unity(fig2):
    for name, curve in fig2.curves.items():
        rel = dict(curve.relative())
        assert rel[1.0] == pytest.approx(1.0), name


def test_fig2_scalable_apps_decrease(fig2):
    flat_by_design = {"Amber"}  # single-node code (Sec. IV)
    for name, curve in fig2.curves.items():
        if name in flat_by_design:
            continue
        pts = sorted(curve.points, key=lambda p: p.nodes)
        assert pts[-1].runtime < pts[0].runtime, name


def test_fig2_amber_flat(fig2):
    pts = sorted(fig2.curves["Amber"].points, key=lambda p: p.nodes)
    assert pts[-1].runtime >= pts[0].runtime * 0.95


def test_fig2_arbor_matches_paper(fig2):
    """The one curve the paper annotates numerically."""
    by_nodes = {p.nodes: p.runtime for p in fig2.curves["Arbor"].points}
    for nodes, expected in ((4, 663.0), (8, 498.0), (12, 332.0),
                            (16, 250.0)):
        assert by_nodes[nodes] == pytest.approx(expected, rel=0.10)


def test_fig2_speedup_sublinear(fig2):
    """No app may scale superlinearly to 2x nodes (sanity of the
    model), excluding memory-clamped reference anomalies."""
    for name, curve in fig2.curves.items():
        pts = sorted(curve.points, key=lambda p: p.nodes)
        ref = curve.reference
        top = pts[-1]
        if top.nodes > ref.nodes:
            speedup = ref.runtime / top.runtime
            assert speedup <= top.nodes / ref.nodes * 1.05, name
