"""Regenerate Figure 2: strong scaling of all Base applications.

Every Base app runs at ~0.5/0.75/1/1.5/2 x its reference node count on
the simulated JUWELS Booster; the reference execution is pinned at
(1, 1).  The assertions encode the paper's *shape*: curves decrease
with nodes (except Amber, which by design does not scale past one
node), and Arbor's published anchor points reproduce within 10 %.
"""

import json
import time

import pytest
from conftest import once, write_bench_record

from repro.analysis import figure2


@pytest.fixture(scope="module")
def fig2(suite):
    return figure2(suite)


def test_fig2_regenerate(benchmark, suite):
    data = once(benchmark, figure2, suite)
    print("\n" + data.render())
    assert len(data.curves) == 16


def test_fig2_reference_points_at_unity(fig2):
    for name, curve in fig2.curves.items():
        rel = dict(curve.relative())
        assert rel[1.0] == pytest.approx(1.0), name


def test_fig2_scalable_apps_decrease(fig2):
    flat_by_design = {"Amber"}  # single-node code (Sec. IV)
    for name, curve in fig2.curves.items():
        if name in flat_by_design:
            continue
        pts = sorted(curve.points, key=lambda p: p.nodes)
        assert pts[-1].runtime < pts[0].runtime, name


def test_fig2_amber_flat(fig2):
    pts = sorted(fig2.curves["Amber"].points, key=lambda p: p.nodes)
    assert pts[-1].runtime >= pts[0].runtime * 0.95


def test_fig2_arbor_matches_paper(fig2):
    """The one curve the paper annotates numerically."""
    by_nodes = {p.nodes: p.runtime for p in fig2.curves["Arbor"].points}
    for nodes, expected in ((4, 663.0), (8, 498.0), (12, 332.0),
                            (16, 250.0)):
        assert by_nodes[nodes] == pytest.approx(expected, rel=0.10)


def test_fig2_speedup_sublinear(fig2):
    """No app may scale superlinearly to 2x nodes (sanity of the
    model), excluding memory-clamped reference anomalies."""
    for name, curve in fig2.curves.items():
        pts = sorted(curve.points, key=lambda p: p.nodes)
        ref = curve.reference
        top = pts[-1]
        if top.nodes > ref.nodes:
            speedup = ref.runtime / top.runtime
            assert speedup <= top.nodes / ref.nodes * 1.05, name


def test_fig2_event_core_speedup_record():
    """Engine-core acceptance at the largest Fig.-2 shape.

    The largest shape of this bench is ICON R02B09 at 2x its reference
    nodes: 960 ranks.  Steady-state forecast stepping (the part that
    grows with the figure's workload; measured as the per-step delta
    between a short and a long run, best of three) must be at least 10x
    faster on the discrete-event core than on the step core, with
    byte-identical results.  Emits the BENCH_fig2.json perf record.
    """
    from repro.apps.icon.benchmark import SUBCASES, icon_timing_program
    from repro.cluster import juwels_booster
    from repro.vmpi import Machine, run_spmd

    case = SUBCASES["R02B09"]
    nodes, ranks = 240, 960
    steps_small, steps_large = 4, 32

    def timed(mode, steps):
        best, res = 1e30, None
        for _ in range(3):
            m = Machine.on(juwels_booster(), ranks)
            t0 = time.perf_counter()
            res = run_spmd(icon_timing_program, machine=m,
                           args=(float(case["cells"]), case["input_bytes"],
                                 steps, 1.0), mode=mode)
            best = min(best, time.perf_counter() - t0)
        return best, res

    records, canon = [], {}
    for mode in ("step", "event"):
        t_small, _ = timed(mode, steps_small)
        t_large, res = timed(mode, steps_large)
        per_step = (t_large - t_small) / (steps_large - steps_small)
        records.append({"mode": mode,
                        "wall_seconds": round(t_large, 4),
                        "seconds_per_step": per_step})
        canon[mode] = json.dumps(res.canonical(), sort_keys=True)

    assert canon["step"] == canon["event"], \
        "engine cores disagree at the largest Fig.-2 shape"
    speedup = records[0]["seconds_per_step"] / records[1]["seconds_per_step"]
    write_bench_record("fig2", {
        "benchmark": "bench_fig2_base_strong_scaling",
        "shape": {"app": "ICON", "subcase": "R02B09", "nodes": nodes,
                  "steps": [steps_small, steps_large]},
        "max_ranks": ranks,
        "records": records,
        "speedup_event_vs_step": round(speedup, 2),
        "identical_results": True,
    })
    assert speedup >= 10.0, \
        f"event core only {speedup:.1f}x the step core (need >= 10x)"
