"""Regenerate Figure 3: weak-scaling efficiency of the five
High-Scaling benchmarks, including the JUQCS computation/communication
split with its two characteristic drops."""

import pytest
from conftest import once

from repro.analysis import figure3

#: paper-range sweep, trimmed at the top for wall-clock sanity
NODES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@pytest.fixture(scope="module")
def fig3(suite):
    return figure3(suite, nodes=NODES)


def test_fig3_regenerate(benchmark, suite):
    data = once(benchmark, figure3, suite, (1, 2, 8, 32, 128, 256))
    print("\n" + data.render())
    assert len(data.curves) == 5


def test_fig3_arbor_and_picongpu_near_ideal(fig3):
    """The paper's best weak scalers stay near 1.0 across the sweep."""
    for name in ("Arbor", "PIConGPU"):
        for nodes, eff in fig3.curves[name].efficiency():
            assert eff > 0.9, (name, nodes, eff)


def test_fig3_chroma_and_nekrs_intermediate(fig3):
    for name in ("Chroma-QCD", "nekRS"):
        effs = dict(fig3.curves[name].efficiency())
        assert effs[512] > 0.6, name
        assert effs[512] <= 1.02, name


def test_fig3_juqcs_drop_at_two_nodes(fig3):
    """First drop: intra-node NVLink -> inter-node InfiniBand."""
    comm = dict(fig3.juqcs_comm)
    assert comm[2] < 0.5 * comm[1]


def test_fig3_juqcs_drop_in_large_scale_regime(fig3):
    """Second drop: the large-scale (>= 256 nodes) congestion regime."""
    comm = dict(fig3.juqcs_comm)
    assert comm[256] < 0.75 * comm[64]


def test_fig3_juqcs_compute_scales_perfectly(fig3):
    """The computation line stays flat -- the deviation is all network,
    exactly the paper's point."""
    comp = dict(fig3.juqcs_compute)
    for nodes, eff in comp.items():
        assert eff == pytest.approx(1.0, abs=0.05), nodes


def test_fig3_juqcs_plateau_between_drops(fig3):
    """Between 2 and 32 nodes the communication efficiency is flat."""
    comm = dict(fig3.juqcs_comm)
    assert comm[32] == pytest.approx(comm[2], rel=0.15)
