"""Regenerate Figure 3: weak-scaling efficiency of the five
High-Scaling benchmarks, including the JUQCS computation/communication
split with its two characteristic drops."""

import os
import time

import pytest
from conftest import once, write_bench_record

from repro.analysis import figure3
from repro.core import load_suite

#: paper-range sweep, trimmed at the top for wall-clock sanity
NODES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@pytest.fixture(scope="module")
def fig3(suite):
    return figure3(suite, nodes=NODES)


def test_fig3_regenerate(benchmark, suite):
    data = once(benchmark, figure3, suite, (1, 2, 8, 32, 128, 256))
    print("\n" + data.render())
    assert len(data.curves) == 5


def test_fig3_arbor_and_picongpu_near_ideal(fig3):
    """The paper's best weak scalers stay near 1.0 across the sweep."""
    for name in ("Arbor", "PIConGPU"):
        for nodes, eff in fig3.curves[name].efficiency():
            assert eff > 0.9, (name, nodes, eff)


def test_fig3_chroma_and_nekrs_intermediate(fig3):
    for name in ("Chroma-QCD", "nekRS"):
        effs = dict(fig3.curves[name].efficiency())
        assert effs[512] > 0.6, name
        assert effs[512] <= 1.02, name


def test_fig3_juqcs_drop_at_two_nodes(fig3):
    """First drop: intra-node NVLink -> inter-node InfiniBand."""
    comm = dict(fig3.juqcs_comm)
    assert comm[2] < 0.5 * comm[1]


def test_fig3_juqcs_drop_in_large_scale_regime(fig3):
    """Second drop: the large-scale (>= 256 nodes) congestion regime."""
    comm = dict(fig3.juqcs_comm)
    assert comm[256] < 0.75 * comm[64]


def test_fig3_juqcs_compute_scales_perfectly(fig3):
    """The computation line stays flat -- the deviation is all network,
    exactly the paper's point."""
    comp = dict(fig3.juqcs_compute)
    for nodes, eff in comp.items():
        assert eff == pytest.approx(1.0, abs=0.05), nodes


def test_fig3_juqcs_plateau_between_drops(fig3):
    """Between 2 and 32 nodes the communication efficiency is flat."""
    comm = dict(fig3.juqcs_comm)
    assert comm[32] == pytest.approx(comm[2], rel=0.15)


def test_fig3_engine_cores_record():
    """Regenerate a reduced Fig.-3 sweep on both engine cores.

    The sweep runs once per core (selection via ``REPRO_VMPI_MODE``,
    the same plumbing ``--vmpi-mode`` uses), the rendered artefacts
    must match exactly, and the per-mode wall clocks are emitted as the
    BENCH_fig3.json perf record.
    """
    nodes_smoke = (1, 2, 8, 32)
    ranks_per_node = 4  # JUWELS Booster: 4 GPUs = 4 ranks per node
    records, renders = [], []
    for mode in ("step", "event"):
        prev = os.environ.get("REPRO_VMPI_MODE")
        os.environ["REPRO_VMPI_MODE"] = mode
        try:
            fresh = load_suite()  # fresh suite: no cross-mode caching
            t0 = time.perf_counter()
            data = figure3(fresh, nodes=nodes_smoke)
            wall = time.perf_counter() - t0
        finally:
            if prev is None:
                del os.environ["REPRO_VMPI_MODE"]
            else:
                os.environ["REPRO_VMPI_MODE"] = prev
        records.append({"mode": mode, "wall_seconds": round(wall, 4)})
        renders.append(data.render())
    assert renders[0] == renders[1], \
        "engine cores disagree on the Fig.-3 artefact"
    write_bench_record("fig3", {
        "benchmark": "bench_fig3_highscaling_weak",
        "shape": {"nodes": list(nodes_smoke)},
        "max_ranks": max(nodes_smoke) * ranks_per_node,
        "records": records,
        "identical_results": True,
    })
