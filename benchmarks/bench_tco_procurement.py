"""The procurement methodology experiments (Sec. II-B/II-C text).

Exercises the TCO value-for-money computation and the High-Scaling
ratio assessment end-to-end with two synthetic proposals, asserting the
decision-relevant properties: faster/cheaper proposals win, rule
violations disqualify, and the 50 PF -> 1 EF scale-up constants hold.
"""

import pytest
from conftest import once

from repro.cluster.hardware import jupiter_booster_model
from repro.core import (
    SCALE_UP,
    HighScalingCase,
    HighScalingCommitment,
    MemoryVariant,
    ProcurementEvaluation,
    SystemProposal,
    WorkloadMix,
    prep_partition_nodes,
)


@pytest.fixture(scope="module")
def references(suite):
    mix = (WorkloadMix().add("GROMACS", 3.0).add("Arbor", 2.0)
           .add("JUQCS", 1.0).add("nekRS", 2.0))
    refs = {e.benchmark: suite.reference_run(e.benchmark)
            for e in mix.entries}
    return mix, refs


def _evaluation(suite, mix, refs):
    cases = {"JUQCS": HighScalingCase(
        "JUQCS", variants=(MemoryVariant.SMALL, MemoryVariant.LARGE),
        power_of_two=True)}
    hs_ref = suite.run("JUQCS", cases["JUQCS"].prep_nodes(),
                       variant=MemoryVariant.LARGE).fom_seconds
    return ProcurementEvaluation(mix=mix, references=refs,
                                 highscaling_cases=cases,
                                 highscaling_references={"JUQCS": hs_ref})


def _proposal(name, refs, speedup, capex=250e6):
    prop = SystemProposal(name=name, system=jupiter_booster_model(),
                          capex_eur=capex)
    for bench, ref in refs.items():
        prop.commit(bench, nodes=max(1, ref.nodes // 2),
                    time_metric=ref.time_metric / speedup)
    return prop


def test_partition_constants():
    assert 600 <= prep_partition_nodes() <= 680
    assert prep_partition_nodes(power_of_two=True) == 512
    assert SCALE_UP == pytest.approx(20.0)


def test_procurement_ranking(benchmark, suite, references):
    mix, refs = references
    evaluation = _evaluation(suite, mix, refs)
    hs_ref = evaluation.hs_references["JUQCS"]
    candidates = [
        (_proposal("evolution", refs, speedup=2.0),
         {"JUQCS": HighScalingCommitment("JUQCS", MemoryVariant.LARGE,
                                         hs_ref / 2.0)}),
        (_proposal("bold", refs, speedup=3.2),
         {"JUQCS": HighScalingCommitment("JUQCS", MemoryVariant.LARGE,
                                         hs_ref / 3.0)}),
    ]
    ranked = once(benchmark, evaluation.select, candidates)
    print("\nprocurement ranking:")
    for score in ranked:
        print(f"  {score.proposal:<12} vfm={score.value_for_money:.1f} "
              f"hs-ratio={score.mean_highscaling_ratio:.3f} "
              f"combined={score.combined_score():.1f}")
    assert [s.proposal for s in ranked] == ["bold", "evolution"]
    assert all(s.valid for s in ranked)


def test_rule_violation_disqualifies(suite, references):
    mix, refs = references
    evaluation = _evaluation(suite, mix, refs)
    cheater = _proposal("cheater", refs, speedup=50.0)
    score = evaluation.score(cheater, {})  # no High-Scaling commitment
    assert not score.valid
    assert score.value_for_money == 0.0


def test_energy_price_changes_ranking(suite, references):
    mix, refs = references
    evaluation = _evaluation(suite, mix, refs)
    hs = {"JUQCS": HighScalingCommitment(
        "JUQCS", MemoryVariant.LARGE, evaluation.hs_references["JUQCS"])}
    frugal = _proposal("frugal", refs, speedup=2.0)
    frugal.eur_per_kwh = 0.05
    pricey = _proposal("pricey", refs, speedup=2.0)
    pricey.eur_per_kwh = 0.45
    scores = {s.proposal: s for s in evaluation.select(
        [(frugal, hs), (pricey, hs)])}
    assert scores["frugal"].value_for_money > \
        scores["pricey"].value_for_money
