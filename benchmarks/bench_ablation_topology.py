"""Ablation: DragonFly+ vs a non-blocking fat tree.

Shows how much of the JUQCS communication signature (Fig. 3's drops)
comes from the DragonFly+ cell taper and the large-scale congestion
regime: on an un-tapered fat tree the inter-cell penalties vanish and
only the NVLink -> IB step remains.
"""

import pytest
from conftest import once
from dataclasses import replace

from repro.cluster.hardware import juwels_booster
from repro.cluster.network import NetworkModel
from repro.cluster.topology import DragonflyPlus, FatTree
from repro.units import MIB


def _gate_time(topology_cls, nodes, nbytes=256 * MIB):
    system = juwels_booster()
    net = NetworkModel(system=system, topology=topology_cls(system))
    # partner half the machine away (the JUQCS top-rank-bit exchange)
    return net.p2p_time(0, nodes // 2, nbytes, job_nodes=nodes)


def test_topology_ablation(benchmark):
    def run():
        rows = []
        for nodes in (2, 32, 128, 512):
            rows.append((nodes,
                         _gate_time(DragonflyPlus, nodes),
                         _gate_time(FatTree, nodes)))
        return rows

    rows = once(benchmark, run)
    print("\nJUQCS-style exchange, DragonFly+ vs fat tree:")
    for nodes, df, ft in rows:
        print(f"  {nodes:>4} nodes: dragonfly {df * 1e3:8.2f} ms | "
              f"fat tree {ft * 1e3:8.2f} ms | penalty x{df / ft:.2f}")
    by_nodes = {n: (df, ft) for n, df, ft in rows}
    # inside a cell the two topologies agree
    df2, ft2 = by_nodes[2]
    assert df2 == pytest.approx(ft2)
    # across cells DragonFly+ pays the taper ...
    df128, ft128 = by_nodes[128]
    assert df128 > 1.2 * ft128
    # ... and the congestion regime on top
    df512, ft512 = by_nodes[512]
    assert df512 > 2.0 * ft512
    # the fat tree is flat at any scale
    assert ft512 == pytest.approx(by_nodes[32][1], rel=1e-6)


def test_taper_parameter_sensitivity():
    """An un-tapered (taper = 1.0) DragonFly+ removes the first
    inter-cell penalty but keeps the congestion regime."""
    system = replace(juwels_booster(), cell_uplink_taper=1.0)
    net = NetworkModel(system=system)
    t128 = net.p2p_time(0, 64, 256 * MIB, job_nodes=128)
    t512 = net.p2p_time(0, 256, 256 * MIB, job_nodes=512)
    assert t512 > 1.5 * t128  # congestion survives without the taper
