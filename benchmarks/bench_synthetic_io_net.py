"""IOR and LinkTest experiments (Sec. IV-B text), plus the OSU sweep."""

import pytest
from conftest import once

from repro.synthetic import IorBenchmark, LinktestBenchmark, OsuBenchmark
from repro.units import GIGA, MIB


def test_ior_easy_vs_hard(benchmark, suite):
    """Easy (16 MiB, file-per-process) must dominate hard (4 KiB shared
    file with lock contention) -- the design intent of the variants."""
    def run():
        easy = IorBenchmark("easy").run(nodes=128)
        hard = IorBenchmark("hard").run(nodes=128)
        return easy, hard

    easy, hard = once(benchmark, run)
    print(f"\nIOR @128 nodes: easy write "
          f"{easy.details['write_bandwidth'] / GIGA:.0f} GB/s, hard write "
          f"{hard.details['write_bandwidth'] / GIGA:.0f} GB/s")
    assert easy.details["transfer_size"] == 16 * MIB
    assert easy.details["write_bandwidth"] > \
        3 * hard.details["write_bandwidth"]
    assert easy.details["read_bandwidth"] >= easy.details["write_bandwidth"]


def test_ior_functional_lock_conflicts(suite):
    easy = IorBenchmark("easy").run(nodes=4, real=True)
    hard = IorBenchmark("hard").run(nodes=4, real=True)
    assert easy.verified and hard.verified
    assert easy.details["lock_conflicts"] == 0
    assert hard.details["lock_conflicts"] > 0


def test_linktest_bisection_sweep(benchmark):
    def run():
        return [(n, LinktestBenchmark().run(nodes=n)
                 .details["aggregate_bandwidth"]) for n in (16, 48, 96,
                                                            192, 384)]

    rows = once(benchmark, run)
    print("\nLinkTest minimum bisection bandwidth:")
    for nodes, bw in rows:
        print(f"  {nodes:>4} nodes: {bw / 1e12:7.2f} TB/s")
    # monotone in job size; tapered beyond one cell
    bws = dict(rows)
    assert bws[96] > bws[48]
    per_node_cell = bws[48] / 24
    per_node_cross = bws[384] / 192
    assert per_node_cross < per_node_cell  # the DragonFly+ taper


def test_osu_latency_bandwidth(benchmark):
    osu = OsuBenchmark()
    sweep = once(benchmark, osu.sweep, True)
    print("\nOSU inter-node sweep (size, one-way time):")
    for size, sec in sweep:
        print(f"  {size:>10} B  {sec * 1e6:10.2f} us")
    small = sweep[0][1]
    big_size, big_t = sweep[-1]
    assert small == pytest.approx(5e-6, rel=0.2)     # HDR latency floor
    assert big_size / big_t > 10 * GIGA              # bandwidth regime
