"""Arbor cost centres and communication hiding (Sec. IV-A2a text):
'Profiling shows two cost centers: 52 % ion channels and 33 % cable
equation; hiding communication completely.'"""

import pytest
from conftest import once


def test_arbor_cost_centres(benchmark, suite):
    res = once(benchmark, suite.run, "Arbor", 8)
    print(f"\nArbor profile @8 nodes: channels "
          f"{res.details['channel_share'] * 100:.0f} %, cable "
          f"{res.details['cable_share'] * 100:.0f} %, comm "
          f"{res.details['comm_seconds']:.2f} s of "
          f"{res.fom_seconds:.0f} s")
    assert res.details["channel_share"] == pytest.approx(0.52, abs=0.02)
    assert res.details["cable_share"] == pytest.approx(0.33, abs=0.02)


def test_arbor_communication_hidden(suite):
    res = suite.run("Arbor", 16)
    assert res.details["comm_seconds"] < \
        0.05 * res.details["compute_seconds"]


def test_arbor_memory_pressure_point(suite):
    """The 4-node Fig. 2 anomaly: the L workload does not fit, so the
    run is clamped and sits *below* the perfect-scaling line."""
    res = suite.run("Arbor", 4)
    assert res.details["workload_clamped"]
    ref = suite.run("Arbor", 8)
    assert res.fom_seconds < 2 * ref.fom_seconds  # below 2x, not above
