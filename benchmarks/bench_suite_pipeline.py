"""The Fig. 1 suite-creation pipeline: workload analysis -> selection ->
preparation (11-point checklist) -> optimisation loop -> packaging --
plus the full-suite execution through the parallel + incremental
engine, reporting its structured run journal."""

from conftest import once

from repro.core import CHECKLIST, creation_pipeline
from repro.exec import ExecutionEngine, MemoryCache

ALLOCATIONS = {
    "Climate": 22.0, "QCD": 18.0, "MD": 16.0, "Neuroscience": 9.0,
    "CFD": 8.0, "Materials Science": 8.0, "AI": 7.0, "Plasma": 5.0,
    "Earth Systems": 4.0, "Biology": 2.0, "Exotic": 0.5,
}
CANDIDATES = {
    "ICON": "Climate", "Chroma-QCD": "QCD", "DynQCD": "QCD",
    "GROMACS": "MD", "Amber": "MD", "Arbor": "Neuroscience",
    "nekRS": "CFD", "Quantum Espresso": "Materials Science",
    "Megatron-LM": "AI", "MMoCLIP": "AI", "PIConGPU": "Plasma",
    "ParFlow": "Earth Systems", "NAStJA": "Biology",
    "HypeCode2000": "Exotic",
}


def test_pipeline(benchmark):
    state = once(benchmark, creation_pipeline, ALLOCATIONS, CANDIDATES)
    print("\nsuite-creation pipeline:")
    for line in state.log:
        print(f"  - {line}")
    assert len(CHECKLIST) == 11
    assert "ICON" in state.packaged
    assert "HypeCode2000" not in state.packaged  # niche domain dropped
    assert state.optimisation_rounds == 2
    assert abs(sum(state.workload_analysis.values()) - 1.0) < 1e-12


def test_engine_full_suite(benchmark, suite):
    """Cold full-suite run through the 8-worker engine, then a warm
    rerun that must execute nothing; prints the run journal."""
    cache = MemoryCache()

    def cold_then_warm():
        suite.engine = ExecutionEngine(workers=8, cache=cache)
        try:
            cold = suite.run_all()
            warm = suite.run_all()
            return cold, warm, suite.engine.journal
        finally:
            suite.engine = None

    cold, warm, journal = once(benchmark, cold_then_warm)
    print("\n" + journal.summary())
    stats = journal.stats()
    assert [r.fom_seconds for r in cold] == [r.fom_seconds for r in warm]
    assert stats.tasks == 2 * len(suite.names())
    assert stats.cache_hits == len(suite.names())  # warm pass: all hits
    assert cache.stats.misses == len(suite.names())
    assert stats.errors == 0
