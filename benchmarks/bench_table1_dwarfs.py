"""Regenerate Table I: benchmarks vs domains vs Berkeley dwarfs."""

from conftest import once

from repro.analysis import render_table1, table1_records
from repro.core import BENCHMARKS


def test_table1(benchmark):
    text = once(benchmark, render_table1)
    print("\n" + text)
    # every benchmark appears with at least one dwarf mark
    records = table1_records()
    assert len(records) == len(BENCHMARKS) == 23
    for rec in records:
        marks = [v for k, v in rec.params.items()
                 if v == "x" or (k == "other" and v)]
        assert marks, f"{rec.params['benchmark']} has no dwarf"
