"""Shared fixtures for the figure/table regeneration benches.

Every bench prints the regenerated artefact (run pytest with ``-s`` to
see it) and times the regeneration via pytest-benchmark.  Node sweeps
are the paper's where tractable; EXPERIMENTS.md records the mapping.
"""

import json
import os
import pathlib

import pytest

from repro.core import load_suite
from repro.history import HistoryStore, RegressionDetector, record, stamp

#: history database the benches append to (override the location with
#: JUBENCH_HISTORY; set it to an empty string to disable appending)
HISTORY_ENV = "JUBENCH_HISTORY"


@pytest.fixture(scope="session")
def suite():
    """The fully registered suite, shared across benches."""
    return load_suite()


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive regeneration exactly once under the timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def _bench_history(root: pathlib.Path) -> HistoryStore | None:
    path = os.environ.get(HISTORY_ENV, str(root / "BENCH_history.jsonl"))
    return HistoryStore.open(path) if path else None


def _append_runs(store: HistoryStore, name: str, payload: dict) -> None:
    """One run record per per-mode wall-clock entry of the payload.

    Bench wall clocks are volatile provenance (kept in the DB, outside
    the canonical form); the record's identity comes from the bench
    name, its shape and the engine-core mode.
    """
    shape = payload.get("shape", {})
    for entry in payload.get("records", []):
        mode = str(entry.get("mode", ""))
        store.append(record(
            f"bench:{name}", params={"shape": shape},
            vmpi_mode=mode or None,
            volatile={k: v for k, v in entry.items() if k != "mode"}))


def _trajectory(store: HistoryStore, name: str) -> dict:
    """Last-10-runs trajectory of this bench's series, with verdicts --
    the per-PR view embedded into every BENCH_*.json record."""
    detector = RegressionDetector()
    out: dict[str, list[dict]] = {}
    for key, records in store.select(f"bench:{name}").items():
        values = [r.value for r in records if r.value is not None]
        verdicts = detector.classify(values)
        points = []
        for rec, verdict in list(zip(
                [r for r in records if r.value is not None],
                verdicts))[-10:]:
            points.append({"seq": rec.seq, "code": rec.code[:12],
                           "value": verdict.value,
                           "status": verdict.status})
        out[key] = points
    return out


def write_bench_record(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable perf record as BENCH_<name>.json.

    Written at the repo root so CI can pick the records up as
    artifacts; the payload schema is whatever the emitting bench
    documents, plus the keys every record carries: ``benchmark``,
    ``max_ranks``, per-``mode`` wall-clock entries, the shared
    ``provenance`` stamp (git commit, history schema version,
    machine-config hash) and the ``trajectory`` section from the
    history database (last runs per series, regression flags).
    """
    root = pathlib.Path(__file__).resolve().parent.parent
    out = root / f"BENCH_{name}.json"
    stamped = stamp(payload)
    store = _bench_history(root)
    if store is not None:
        _append_runs(store, name, payload)
        stamped["trajectory"] = _trajectory(store, name)
    out.write_text(json.dumps(stamped, indent=2, sort_keys=True) + "\n")
    return out
