"""Shared fixtures for the figure/table regeneration benches.

Every bench prints the regenerated artefact (run pytest with ``-s`` to
see it) and times the regeneration via pytest-benchmark.  Node sweeps
are the paper's where tractable; EXPERIMENTS.md records the mapping.
"""

import pytest

from repro.core import load_suite


@pytest.fixture(scope="session")
def suite():
    """The fully registered suite, shared across benches."""
    return load_suite()


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive regeneration exactly once under the timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
