"""Shared fixtures for the figure/table regeneration benches.

Every bench prints the regenerated artefact (run pytest with ``-s`` to
see it) and times the regeneration via pytest-benchmark.  Node sweeps
are the paper's where tractable; EXPERIMENTS.md records the mapping.
"""

import json
import pathlib

import pytest

from repro.core import load_suite


@pytest.fixture(scope="session")
def suite():
    """The fully registered suite, shared across benches."""
    return load_suite()


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive regeneration exactly once under the timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def write_bench_record(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable perf record as BENCH_<name>.json.

    Written at the repo root so CI can pick the records up as
    artifacts; the payload schema is whatever the emitting bench
    documents, plus the keys every record carries: ``benchmark``,
    ``max_ranks`` and per-``mode`` wall-clock entries.
    """
    out = pathlib.Path(__file__).resolve().parent.parent / \
        f"BENCH_{name}.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out
